//! Source-range sharded evaluation over packed adjacency — the
//! out-of-core scale path.
//!
//! The standard pipeline ([`crate::product`] + [`crate::eval`])
//! materializes the graph × NFA product with a hash-interned state
//! table: ~48 bytes per product state plus 16 per transition. At 10⁸
//! edges that table alone dwarfs the graph. This module is the scale
//! alternative for **label-only** path expressions (labels, `ℓ⁻`,
//! concatenation, alternation, star — no node tests, no property or
//! feature tests):
//!
//! * the expression compiles to a tiny [`LabelDfa`] (the minimized
//!   automaton of [`crate::automata`], restricted to label letters and
//!   flattened over its ε-closures);
//! * product states are **implicit** — `state = v · |Q| + q` — so the
//!   only per-sweep allocation is a `|V| · |Q|` bitmask matrix, reused
//!   across batches with touched-list clearing;
//! * adjacency is abstracted by [`LabelAdjacency`], with adapters for
//!   the raw [`LabelIndex`] and the bit-packed [`PackedView`] — the
//!   "slice or iterate" seam: one decode per `(node, label)` expansion
//!   feeds all 64 source lanes of the batch, which is what amortizes
//!   packed-decode cost to ≈ the raw slice walk;
//! * evaluation is sharded by source range into 64-lane batches;
//!   batch results are concatenated in batch order, so output is
//!   byte-identical at any `chunks`/thread count;
//! * governance: the sweep matrix is charged to the governor's memory
//!   budget up front per worker (released after), expansions tick the
//!   step budget, result extraction charges per pair and truncates to
//!   an exact prefix, and scratch growth is charged at its **high-water
//!   mark** (the worklists are reused between batches, so their
//!   footprint is the peak, not the per-batch sum) — a tripped batch is
//!   dropped whole so the returned prefix always ends on a batch
//!   boundary.
//!
//! The wedge-closing triangle count ([`triangle_count`]) reuses the
//! same adjacency seam with the packed skip-table point probes
//! ([`kgq_graph::packed::Run::contains`]) as its galloping
//! intersection primitive.

use crate::automata::{Nfa, Trans};
use crate::expr::{PathExpr, Test};
use crate::govern::{isolate, EvalError, Governed, Governor, Interrupt, Ticker};
use kgq_graph::packed::PackedView;
use kgq_graph::{LabelIndex, NodeId, Sym};
use std::fmt;
use std::ops::Range;

/// Cap on label-DFA states: keeps the implicit-state index `v·|Q| + q`
/// inside `u32` for any `u32` node count and bounds the sweep matrix.
pub const MAX_SCALE_STATES: usize = 64;

/// Sources advanced per sweep (one bitmask lane each).
pub const BATCH: usize = 64;

/// Why an expression cannot take the scale path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScaleError {
    /// The expression uses a feature the scale path does not support
    /// (node tests, property/feature tests, boolean label tests).
    Unsupported(String),
    /// The compiled automaton exceeds [`MAX_SCALE_STATES`].
    TooManyStates(usize),
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::Unsupported(what) => {
                write!(f, "scale path supports label-only expressions: {what}")
            }
            ScaleError::TooManyStates(n) => {
                write!(
                    f,
                    "automaton has {n} states, above the scale cap {MAX_SCALE_STATES}"
                )
            }
        }
    }
}

impl std::error::Error for ScaleError {}

/// A label-only automaton with ε-closures flattened away: `step[q]`
/// lists the consuming transitions `(dense label, forward?, target)`
/// reachable from `q` through structural ε, and `accepting[q]` says
/// whether `q`'s closure touches the accept state.
#[derive(Clone, Debug)]
pub struct LabelDfa {
    nq: u32,
    start: u32,
    step: Vec<Vec<(u32, bool, u32)>>,
    accepting: Vec<bool>,
    uses_inverse: bool,
}

impl LabelDfa {
    /// Compiles `expr` through the minimized automaton, mapping label
    /// symbols to dense graph label ids via `label_of` (`None` = the
    /// label never occurs in the graph, so the transition is dropped).
    pub fn compile(
        expr: &PathExpr,
        label_of: impl Fn(Sym) -> Option<u32>,
    ) -> Result<LabelDfa, ScaleError> {
        let nfa = Nfa::compile_min(expr).nfa;
        let nq = nfa.state_count();
        if nq > MAX_SCALE_STATES {
            return Err(ScaleError::TooManyStates(nq));
        }
        // ε-closure per state (structural Eps only; the minimized
        // automaton usually has none, but the fallback path may).
        let mut closures: Vec<Vec<u32>> = Vec::with_capacity(nq);
        for q0 in 0..nq as u32 {
            let mut seen = vec![false; nq];
            let mut stack = vec![q0];
            seen[q0 as usize] = true;
            while let Some(q) = stack.pop() {
                for &(t, to) in &nfa.edges[q as usize] {
                    if t == Trans::Eps && !seen[to as usize] {
                        seen[to as usize] = true;
                        stack.push(to);
                    }
                }
            }
            closures.push((0..nq as u32).filter(|&q| seen[q as usize]).collect());
        }
        let label_sym = |t: u32| -> Result<Sym, ScaleError> {
            match &nfa.tests[t as usize] {
                Test::Label(l) => Ok(*l),
                other => Err(ScaleError::Unsupported(format!(
                    "edge test {other:?} is not a plain label"
                ))),
            }
        };
        let mut step = Vec::with_capacity(nq);
        let mut accepting = Vec::with_capacity(nq);
        let mut uses_inverse = false;
        for q in 0..nq {
            let mut out: Vec<(u32, bool, u32)> = Vec::new();
            for &qc in &closures[q] {
                for &(t, to) in &nfa.edges[qc as usize] {
                    match t {
                        Trans::Eps => {}
                        Trans::Node(_) => {
                            return Err(ScaleError::Unsupported(
                                "node tests (`?t`) are not label steps".into(),
                            ))
                        }
                        Trans::Fwd(i) => {
                            if let Some(l) = label_of(label_sym(i)?) {
                                out.push((l, true, to));
                            }
                        }
                        Trans::Bwd(i) => {
                            if let Some(l) = label_of(label_sym(i)?) {
                                uses_inverse = true;
                                out.push((l, false, to));
                            }
                        }
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            accepting.push(closures[q].contains(&nfa.accept));
            step.push(out);
        }
        Ok(LabelDfa {
            nq: nq as u32,
            start: nfa.start,
            step,
            accepting,
            uses_inverse,
        })
    }

    /// Number of automaton states `|Q|`.
    pub fn state_count(&self) -> usize {
        self.nq as usize
    }

    /// Whether any transition steps an edge backwards (`ℓ⁻`).
    pub fn uses_inverse(&self) -> bool {
        self.uses_inverse
    }

    /// Bytes one sweep worker allocates for `n` nodes: the visited
    /// bitmask matrix plus the queued bitset. This is what
    /// [`ScaleEvaluator::pairs_governed`] charges per worker.
    pub fn sweep_bytes(&self, n: u32) -> u64 {
        let states = n as u64 * self.nq as u64;
        states * 8 + states.div_ceil(64) * 8
    }
}

/// The adjacency seam the scale sweep steps on: either raw
/// [`LabelIndex`] slices or packed runs decoded into a reused scratch
/// buffer — one decode per `(node, label)` expansion, shared by all 64
/// lanes of the batch.
pub trait LabelAdjacency: Sync {
    /// Number of nodes.
    fn node_count(&self) -> u32;
    /// Appends the out-neighbors of `v` under dense label `l`.
    fn out_into(&self, v: u32, l: u32, buf: &mut Vec<u32>);
    /// Appends the in-neighbors of `v` under dense label `l`.
    fn in_into(&self, v: u32, l: u32, buf: &mut Vec<u32>);
    /// Out-degree restricted to `l` (no decode where avoidable).
    fn out_degree(&self, v: u32, l: u32) -> usize;
    /// Point probe: is `v --l--> x` an edge?
    fn contains_out(&self, v: u32, l: u32, x: u32) -> bool;
    /// Whether `out_into` yields sorted neighbors (packed runs do; raw
    /// label runs are `(label, edge)`-ordered).
    fn out_sorted(&self) -> bool;
}

/// [`LabelAdjacency`] over the raw flat [`LabelIndex`].
pub struct RawAdjacency<'a>(pub &'a LabelIndex);

impl LabelAdjacency for RawAdjacency<'_> {
    fn node_count(&self) -> u32 {
        self.0.node_count() as u32
    }
    #[inline]
    fn out_into(&self, v: u32, l: u32, buf: &mut Vec<u32>) {
        buf.extend(
            self.0
                .out_with_dense(NodeId(v), l)
                .iter()
                .map(|&(_, _, d)| d.0),
        );
    }
    #[inline]
    fn in_into(&self, v: u32, l: u32, buf: &mut Vec<u32>) {
        buf.extend(
            self.0
                .in_with_dense(NodeId(v), l)
                .iter()
                .map(|&(_, _, s)| s.0),
        );
    }
    fn out_degree(&self, v: u32, l: u32) -> usize {
        self.0.out_with_dense(NodeId(v), l).len()
    }
    fn contains_out(&self, v: u32, l: u32, x: u32) -> bool {
        self.0
            .out_with_dense(NodeId(v), l)
            .iter()
            .any(|&(_, _, d)| d.0 == x)
    }
    fn out_sorted(&self) -> bool {
        false
    }
}

/// [`LabelAdjacency`] over a packed blob (owned or mmap'd).
pub struct PackedAdjacency<'a>(pub PackedView<'a>);

impl LabelAdjacency for PackedAdjacency<'_> {
    fn node_count(&self) -> u32 {
        self.0.node_count() as u32
    }
    #[inline]
    fn out_into(&self, v: u32, l: u32, buf: &mut Vec<u32>) {
        self.0.decode_out_into(v, l, buf);
    }
    #[inline]
    fn in_into(&self, v: u32, l: u32, buf: &mut Vec<u32>) {
        self.0.decode_in_into(v, l, buf);
    }
    fn out_degree(&self, v: u32, l: u32) -> usize {
        self.0.out_degree(v, l)
    }
    fn contains_out(&self, v: u32, l: u32, x: u32) -> bool {
        self.0.out_run(v, l).is_some_and(|r| r.contains(x))
    }
    fn out_sorted(&self) -> bool {
        true
    }
}

/// Reusable per-worker sweep state: the full `|V|·|Q|` bitmask matrix
/// plus worklists, cleared between batches via the touched list (so a
/// sparse sweep never pays an O(|V|·|Q|) memset).
struct Sweep {
    nq: u32,
    visited: Vec<u64>,
    queued: Vec<u64>,
    touched: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    buf: Vec<u32>,
}

impl Sweep {
    fn new(n: u32, nq: u32) -> Sweep {
        let states = n as usize * nq as usize;
        Sweep {
            nq,
            visited: vec![0u64; states],
            queued: vec![0u64; states.div_ceil(64)],
            touched: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            buf: Vec::new(),
        }
    }

    #[inline]
    fn enqueue(&mut self, idx: u32) {
        let (w, b) = ((idx / 64) as usize, idx % 64);
        if self.queued[w] & (1 << b) == 0 {
            self.queued[w] |= 1 << b;
            self.next.push(idx);
        }
    }

    fn clear(&mut self) {
        for &idx in &self.touched {
            self.visited[idx as usize] = 0;
        }
        self.touched.clear();
        self.frontier.clear();
        self.next.clear();
    }

    /// Runs one 64-lane sweep from sources `[s0, s1)`. Ticks `ticker`
    /// per expanded edge; a trip aborts the sweep (the caller drops the
    /// batch, keeping results an exact batch-boundary prefix).
    fn run<A: LabelAdjacency>(
        &mut self,
        adj: &A,
        dfa: &LabelDfa,
        s0: u32,
        s1: u32,
        ticker: &mut Ticker<'_>,
    ) -> Result<(), Interrupt> {
        self.clear();
        let nq = self.nq;
        for (lane, v) in (s0..s1).enumerate() {
            let idx = v * nq + dfa.start;
            if self.visited[idx as usize] == 0 {
                self.touched.push(idx);
            }
            self.visited[idx as usize] |= 1u64 << lane;
            self.enqueue(idx);
        }
        while !self.next.is_empty() {
            std::mem::swap(&mut self.frontier, &mut self.next);
            for i in 0..self.frontier.len() {
                let idx = self.frontier[i];
                self.queued[(idx / 64) as usize] &= !(1 << (idx % 64));
            }
            for i in 0..self.frontier.len() {
                let idx = self.frontier[i];
                let mask = self.visited[idx as usize];
                let (v, q) = (idx / nq, idx % nq);
                for t in 0..dfa.step[q as usize].len() {
                    let (l, fwd, q2) = dfa.step[q as usize][t];
                    self.buf.clear();
                    if fwd {
                        adj.out_into(v, l, &mut self.buf);
                    } else {
                        adj.in_into(v, l, &mut self.buf);
                    }
                    ticker.tick_n(self.buf.len() as u32 + 1)?;
                    for k in 0..self.buf.len() {
                        let w = self.buf[k];
                        let j = w * nq + q2;
                        let old = self.visited[j as usize];
                        let new = old | mask;
                        if new != old {
                            if old == 0 {
                                self.touched.push(j);
                            }
                            self.visited[j as usize] = new;
                            self.enqueue(j);
                        }
                    }
                }
            }
            self.frontier.clear();
        }
        Ok(())
    }

    /// Extracts the batch's `(source, target)` pairs in lane-major,
    /// target-ascending order. `limit` bounds how many pairs may still
    /// be emitted (result budget); emission stops exactly there.
    fn extract_pairs(
        &mut self,
        dfa: &LabelDfa,
        s0: u32,
        lanes: u32,
        out: &mut Vec<(u32, u32)>,
        gov: Option<&Governor>,
    ) -> Result<(), Interrupt> {
        self.touched.sort_unstable();
        let nq = self.nq;
        // Per-lane target lists; touched is sorted by v·|Q|+q so each
        // lane's targets come out ascending, deduped across accepting
        // states of the same node.
        let mut per_lane: Vec<Vec<u32>> = vec![Vec::new(); lanes as usize];
        for &idx in &self.touched {
            let (v, q) = (idx / nq, idx % nq);
            if !dfa.accepting[q as usize] {
                continue;
            }
            let mask = self.visited[idx as usize];
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                if lane < lanes as usize {
                    let list = &mut per_lane[lane];
                    if list.last() != Some(&v) {
                        list.push(v);
                    }
                }
            }
        }
        for (lane, targets) in per_lane.into_iter().enumerate() {
            for v in targets {
                if let Some(gov) = gov {
                    gov.charge_results(1)?;
                }
                out.push((s0 + lane as u32, v));
            }
        }
        Ok(())
    }

    /// Lanes (relative to `s0`) whose source matches the expression.
    fn extract_starts(&mut self, dfa: &LabelDfa, lanes: u32) -> u64 {
        let nq = self.nq;
        let mut matched = 0u64;
        for &idx in &self.touched {
            if dfa.accepting[(idx % nq) as usize] {
                matched |= self.visited[idx as usize];
            }
        }
        if lanes < 64 {
            matched &= (1u64 << lanes) - 1;
        }
        matched
    }
}

/// Sharded evaluator: a [`LabelDfa`] over a [`LabelAdjacency`].
pub struct ScaleEvaluator<'a, A: LabelAdjacency> {
    adj: &'a A,
    dfa: LabelDfa,
}

/// Contiguous `i`-th of `chunks` slices of `len` items (same splitting
/// as the LFTJ domain partitioner).
fn chunk_bounds(len: usize, chunks: usize, i: usize) -> Range<usize> {
    let chunks = chunks.max(1);
    let lo = (len as u128 * i as u128 / chunks as u128) as usize;
    let hi = (len as u128 * (i + 1) as u128 / chunks as u128) as usize;
    lo..hi
}

impl<'a, A: LabelAdjacency> ScaleEvaluator<'a, A> {
    /// Pairs an adjacency with a compiled label automaton.
    pub fn new(adj: &'a A, dfa: LabelDfa) -> Self {
        ScaleEvaluator { adj, dfa }
    }

    /// The compiled automaton.
    pub fn dfa(&self) -> &LabelDfa {
        &self.dfa
    }

    /// All `(source, target)` pairs with `source ∈ sources`, evaluated
    /// in 64-lane batches over `chunks` workers. Output is concatenated
    /// in batch order: byte-identical for every `chunks` value.
    pub fn pairs(&self, sources: Range<u32>, chunks: usize) -> Vec<(u32, u32)> {
        match self.pairs_governed(sources, chunks, &Governor::unlimited()) {
            Ok(g) => g.value,
            // Unreachable: an unlimited governor cannot trip, and
            // worker panics surface as Err.
            Err(_) => Vec::new(),
        }
    }

    /// Governed [`ScaleEvaluator::pairs`]: exact-prefix results, with
    /// the sweep matrix charged to the memory budget per worker.
    pub fn pairs_governed(
        &self,
        sources: Range<u32>,
        chunks: usize,
        gov: &Governor,
    ) -> Result<Governed<Vec<(u32, u32)>>, EvalError> {
        let per_batch = self.run_batches(sources, chunks, gov, |sweep, dfa, s0, lanes, gov| {
            let mut out = Vec::new();
            let trip = sweep
                .extract_pairs(dfa, s0, lanes, &mut out, Some(gov))
                .err();
            (out, trip)
        })?;
        let mut all = Vec::new();
        let mut why = None;
        for (pairs, trip) in per_batch {
            if let Some(pairs) = pairs {
                all.extend(pairs);
            }
            if let Some(t) = trip {
                why = Some(t);
                break;
            }
        }
        Ok(match why {
            None => Governed::complete(all),
            Some(t) => Governed::partial(all, t),
        })
    }

    /// Sources in `sources` that start at least one matching path.
    pub fn matching_starts(&self, sources: Range<u32>, chunks: usize) -> Vec<u32> {
        match self.matching_starts_governed(sources, chunks, &Governor::unlimited()) {
            Ok(g) => g.value,
            Err(_) => Vec::new(),
        }
    }

    /// Governed [`ScaleEvaluator::matching_starts`].
    pub fn matching_starts_governed(
        &self,
        sources: Range<u32>,
        chunks: usize,
        gov: &Governor,
    ) -> Result<Governed<Vec<u32>>, EvalError> {
        let per_batch = self.run_batches(sources, chunks, gov, |sweep, dfa, s0, lanes, gov| {
            let matched = sweep.extract_starts(dfa, lanes);
            let mut out = Vec::new();
            let mut trip = None;
            let mut m = matched;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                if let Err(t) = gov.charge_results(1) {
                    trip = Some(t);
                    break;
                }
                out.push(s0 + lane);
            }
            (out, trip)
        })?;
        let mut all = Vec::new();
        let mut why = None;
        for (starts, trip) in per_batch {
            if let Some(starts) = starts {
                all.extend(starts);
            }
            if let Some(t) = trip {
                why = Some(t);
                break;
            }
        }
        Ok(match why {
            None => Governed::complete(all),
            Some(t) => Governed::partial(all, t),
        })
    }

    /// Runs every 64-lane batch of `sources` across `chunks` workers,
    /// applying `extract` to each completed sweep. Returns per-batch
    /// results in batch order; a tripped batch contributes `None` and
    /// its [`Interrupt`] (its sweep output is dropped whole, so the
    /// assembled prefix ends on a batch boundary), while `extract`'s
    /// own trip keeps its partial output so result exhaustion can end
    /// *inside* a batch with an exact pair count.
    #[allow(clippy::type_complexity)]
    fn run_batches<T: Send>(
        &self,
        sources: Range<u32>,
        chunks: usize,
        gov: &Governor,
        extract: impl Fn(&mut Sweep, &LabelDfa, u32, u32, &Governor) -> (T, Option<Interrupt>) + Sync,
    ) -> Result<Vec<(Option<T>, Option<Interrupt>)>, EvalError> {
        let n = self.adj.node_count();
        let sources = sources.start.min(n)..sources.end.min(n);
        let nbatches = (sources.len() as u64).div_ceil(BATCH as u64) as usize;
        let chunks = chunks.max(1).min(nbatches.max(1));
        let worker = |c: usize| -> Result<Vec<(Option<T>, Option<Interrupt>)>, EvalError> {
            isolate(|| {
                let range = chunk_bounds(nbatches, chunks, c);
                if range.is_empty() {
                    return Ok(Vec::new());
                }
                let sweep_bytes = self.dfa.sweep_bytes(n);
                if let Err(t) = gov.charge_memory(sweep_bytes) {
                    return Ok(vec![(None, Some(t))]);
                }
                let mut sweep = Sweep::new(n, self.dfa.nq);
                let mut ticker = Ticker::new(gov);
                // The worklists are reused scratch: their footprint is
                // the high-water mark across batches, not the sum, so
                // only growth beyond the previous peak is charged.
                let mut touched_hw = 0u64;
                let mut results = Vec::with_capacity(range.len());
                for b in range {
                    // Another worker (or an earlier batch) tripped the
                    // shared governor: stop before sweeping.
                    if let Some(t) = gov.trip_state() {
                        results.push((None, Some(t)));
                        break;
                    }
                    let s0 = sources.start + (b * BATCH) as u32;
                    let s1 = sources.end.min(s0 + BATCH as u32);
                    let swept = sweep
                        .run(self.adj, &self.dfa, s0, s1, &mut ticker)
                        .and_then(|()| {
                            let bytes = sweep.touched.len() as u64 * 8;
                            if bytes > touched_hw {
                                // Record the peak before charging: the
                                // ledger counts the bytes even when the
                                // charge trips, and the final release
                                // must match either way.
                                let grown = bytes - touched_hw;
                                touched_hw = bytes;
                                gov.charge_memory(grown)
                            } else {
                                Ok(())
                            }
                        });
                    match swept {
                        Ok(()) => {
                            let (out, trip) = extract(&mut sweep, &self.dfa, s0, s1 - s0, gov);
                            let stop = trip.is_some();
                            results.push((Some(out), trip));
                            if stop {
                                break;
                            }
                        }
                        Err(t) => {
                            // Drop the incomplete batch; record why.
                            results.push((None, Some(t)));
                            break;
                        }
                    }
                }
                gov.release_memory(sweep_bytes + touched_hw);
                Ok(results)
            })
        };
        let per_chunk: Vec<Result<Vec<(Option<T>, Option<Interrupt>)>, EvalError>> = if chunks == 1
        {
            vec![worker(0)]
        } else {
            use rayon::prelude::*;
            (0..chunks).into_par_iter().map(worker).collect()
        };
        let mut flat = Vec::with_capacity(nbatches);
        for r in per_chunk {
            flat.extend(r?);
        }
        Ok(flat)
    }
}

/// Result of [`triangle_count`]: the total plus the first few matches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TriangleCount {
    /// Number of `(a, b, c)` triples matching the wedge pattern.
    pub count: u64,
    /// The first matches in `a`-ascending order, capped by the caller.
    pub sample: Vec<(u32, u32, u32)>,
}

/// Closes wedges for one apex `a`: every `b ∈ out(a, l_ab)` and
/// `c ∈ out(b, l_bc)` with the closing edge `a --l_ac--> c` probed via
/// [`LabelAdjacency::contains_out`] (a skip-table gallop on packed
/// adjacency). Trips mid-apex leave `tc` untouched by the caller's
/// rollback.
#[allow(clippy::too_many_arguments)]
fn close_wedges<A: LabelAdjacency>(
    adj: &A,
    a: u32,
    (l_ab, l_bc, l_ac): (u32, u32, u32),
    bufb: &mut Vec<u32>,
    bufc: &mut Vec<u32>,
    ticker: &mut Ticker<'_>,
    gov: &Governor,
    scratch_hw: &mut u64,
    tc: &mut TriangleCount,
    sample_cap: usize,
) -> Result<(), Interrupt> {
    // The two decode buffers are reused across apexes: charge only
    // growth past the peak so far, mirroring their real footprint.
    let charge_scratch = |bufb: &Vec<u32>, bufc: &Vec<u32>, hw: &mut u64| {
        let cur = (bufb.len() + bufc.len()) as u64 * 4;
        if cur > *hw {
            let grown = cur - *hw;
            *hw = cur;
            gov.charge_memory(grown)
        } else {
            Ok(())
        }
    };
    bufb.clear();
    adj.out_into(a, l_ab, bufb);
    ticker.tick_n(bufb.len() as u32 + 1)?;
    charge_scratch(bufb, bufc, scratch_hw)?;
    for i in 0..bufb.len() {
        let b = bufb[i];
        bufc.clear();
        adj.out_into(b, l_bc, bufc);
        ticker.tick_n(bufc.len() as u32 + 1)?;
        charge_scratch(bufb, bufc, scratch_hw)?;
        for k in 0..bufc.len() {
            let c = bufc[k];
            if adj.contains_out(a, l_ac, c) {
                tc.count += 1;
                if tc.sample.len() < sample_cap {
                    tc.sample.push((a, b, c));
                }
            }
        }
    }
    Ok(())
}

/// Counts the labeled triangle pattern `a --l_ab--> b --l_bc--> c` with
/// closing edge `a --l_ac--> c`, for apexes `a ∈ arange`, sharded into
/// `chunks` contiguous apex ranges. The count and the (capped) sample
/// are identical for every `chunks` value; under a tripping governor
/// the result is an exact prefix ending on an apex boundary.
pub fn triangle_count<A: LabelAdjacency>(
    adj: &A,
    labels: (u32, u32, u32),
    arange: Range<u32>,
    chunks: usize,
    gov: &Governor,
    sample_cap: usize,
) -> Result<Governed<TriangleCount>, EvalError> {
    let n = adj.node_count();
    let arange = arange.start.min(n)..arange.end.min(n);
    let len = arange.len();
    let chunks = chunks.max(1).min(len.max(1));
    let worker = |ci: usize| -> Result<(TriangleCount, Option<Interrupt>), EvalError> {
        isolate(|| {
            let r = chunk_bounds(len, chunks, ci);
            let mut ticker = Ticker::new(gov);
            let mut scratch_hw = 0u64;
            let (mut bufb, mut bufc) = (Vec::new(), Vec::new());
            let mut tc = TriangleCount::default();
            let mut why = None;
            for off in r {
                if let Some(t) = gov.trip_state() {
                    why = Some(t);
                    break;
                }
                let a = arange.start + off as u32;
                let (count0, sample0) = (tc.count, tc.sample.len());
                if let Err(t) = close_wedges(
                    adj,
                    a,
                    labels,
                    &mut bufb,
                    &mut bufc,
                    &mut ticker,
                    gov,
                    &mut scratch_hw,
                    &mut tc,
                    sample_cap,
                ) {
                    // Roll the partial apex back so the prefix ends on
                    // an apex boundary.
                    tc.count = count0;
                    tc.sample.truncate(sample0);
                    why = Some(t);
                    break;
                }
            }
            gov.release_memory(scratch_hw);
            Ok((tc, why))
        })
    };
    let per_chunk: Vec<Result<(TriangleCount, Option<Interrupt>), EvalError>> = if chunks == 1 {
        vec![worker(0)]
    } else {
        use rayon::prelude::*;
        (0..chunks).into_par_iter().map(worker).collect()
    };
    let mut total = TriangleCount::default();
    let mut why = None;
    for r in per_chunk {
        let (tc, trip) = r?;
        total.count += tc.count;
        for t in tc.sample {
            if total.sample.len() < sample_cap {
                total.sample.push(t);
            }
        }
        if let Some(t) = trip {
            why = Some(t);
            break;
        }
    }
    Ok(match why {
        None => Governed::complete(total),
        Some(t) => Governed::partial(total, t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_pairs;
    use crate::govern::Budget;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::generate::gnm_labeled;
    use kgq_graph::{LabeledGraph, PackedLabelIndex};

    fn test_graph(seed: u64) -> LabeledGraph {
        gnm_labeled(60, 240, &["node"], &["a", "b", "c"], seed)
    }

    fn dfa_for(g: &mut LabeledGraph, idx: &LabelIndex, expr_src: &str) -> LabelDfa {
        let expr = parse_expr(expr_src, g.consts_mut()).expect("parse");
        LabelDfa::compile(&expr, |s| idx.dense_id(s)).expect("compile")
    }

    #[test]
    fn label_dfa_rejects_node_tests_and_accepts_label_algebra() {
        let mut g = test_graph(1);
        let idx = LabelIndex::build(&g);
        for src in ["a", "a/b", "(a+b)*/c", "a^-/b", "a*"] {
            let expr = parse_expr(src, g.consts_mut()).expect("parse");
            assert!(
                LabelDfa::compile(&expr, |s| idx.dense_id(s)).is_ok(),
                "{src} should compile"
            );
        }
        let expr = parse_expr("?node/a", g.consts_mut()).expect("parse");
        assert!(matches!(
            LabelDfa::compile(&expr, |s| idx.dense_id(s)),
            Err(ScaleError::Unsupported(_))
        ));
    }

    #[test]
    fn inverse_flag_tracks_backward_steps() {
        let mut g = test_graph(2);
        let idx = LabelIndex::build(&g);
        assert!(!dfa_for(&mut g, &idx, "a/b*").uses_inverse());
        assert!(dfa_for(&mut g, &idx, "a/b^-").uses_inverse());
    }

    /// Oracle pairs via the product-automaton evaluator, as a sorted set.
    fn oracle_pairs(g: &LabeledGraph, expr_src: &str) -> Vec<(u32, u32)> {
        let mut g = g.clone();
        let expr = parse_expr(expr_src, g.consts_mut()).expect("parse");
        let view = LabeledView::new(&g);
        let mut pairs: Vec<(u32, u32)> = eval_pairs(&view, &expr)
            .into_iter()
            .map(|(s, t)| (s.0, t.0))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    #[test]
    fn raw_and_packed_agree_with_the_product_oracle() {
        for seed in [3, 4, 5] {
            let mut g = test_graph(seed);
            let idx = LabelIndex::build(&g);
            let packed = PackedLabelIndex::from_labeled(&g).expect("pack");
            let n = g.node_count() as u32;
            for src in ["a", "a/b", "(a+b)*/c", "a/b^-", "c*"] {
                let dfa = dfa_for(&mut g, &idx, src);
                let raw = RawAdjacency(&idx);
                let pview = packed.view();
                let pk = PackedAdjacency(pview);
                let ev_raw = ScaleEvaluator::new(&raw, dfa.clone());
                let ev_pk = ScaleEvaluator::new(&pk, dfa);
                let pairs_raw = ev_raw.pairs(0..n, 1);
                let pairs_pk = ev_pk.pairs(0..n, 1);
                assert_eq!(pairs_raw, pairs_pk, "raw vs packed on {src} seed {seed}");
                let mut sorted = pairs_raw.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, oracle_pairs(&g, src), "oracle on {src} seed {seed}");
                let starts_raw = ev_raw.matching_starts(0..n, 1);
                let starts_pk = ev_pk.matching_starts(0..n, 1);
                assert_eq!(starts_raw, starts_pk, "starts on {src} seed {seed}");
            }
        }
    }

    #[test]
    fn output_is_byte_identical_across_chunk_counts() {
        let mut g = test_graph(6);
        let idx = LabelIndex::build(&g);
        let packed = PackedLabelIndex::from_labeled(&g).expect("pack");
        let n = g.node_count() as u32;
        let dfa = dfa_for(&mut g, &idx, "(a+b)*/c");
        let pview = packed.view();
        let pk = PackedAdjacency(pview);
        let ev = ScaleEvaluator::new(&pk, dfa);
        let one = ev.pairs(0..n, 1);
        for chunks in [2, 3, 4, 7] {
            assert_eq!(one, ev.pairs(0..n, chunks), "chunks={chunks}");
        }
        let starts = ev.matching_starts(0..n, 1);
        for chunks in [2, 4] {
            assert_eq!(starts, ev.matching_starts(0..n, chunks), "chunks={chunks}");
        }
    }

    #[test]
    fn governed_results_truncate_to_an_exact_prefix() {
        let mut g = test_graph(7);
        let idx = LabelIndex::build(&g);
        let n = g.node_count() as u32;
        let dfa = dfa_for(&mut g, &idx, "(a+b)*/c");
        let raw = RawAdjacency(&idx);
        let ev = ScaleEvaluator::new(&raw, dfa);
        let full = ev.pairs(0..n, 1);
        assert!(full.len() > 8, "need enough answers to truncate");
        let budget = Budget::unlimited().with_max_results(5);
        let got = ev
            .pairs_governed(0..n, 1, &Governor::new(&budget))
            .expect("governed");
        assert!(got.is_partial());
        assert_eq!(got.value, full[..5].to_vec(), "exact 5-pair prefix");
        // A step budget trips mid-sweep: the result is a batch-boundary
        // prefix of the full answer.
        let budget = Budget::unlimited().with_max_steps(40);
        let got = ev
            .pairs_governed(0..n, 1, &Governor::new(&budget))
            .expect("governed");
        assert!(got.is_partial());
        assert!(full.starts_with(&got.value));
    }

    #[test]
    fn sweep_memory_budget_trips_before_allocation() {
        let mut g = test_graph(8);
        let idx = LabelIndex::build(&g);
        let n = g.node_count() as u32;
        let dfa = dfa_for(&mut g, &idx, "a/b");
        let need = dfa.sweep_bytes(n);
        let raw = RawAdjacency(&idx);
        let ev = ScaleEvaluator::new(&raw, dfa);
        let budget = Budget::unlimited().with_max_memory(need / 2);
        let got = ev
            .pairs_governed(0..n, 1, &Governor::new(&budget))
            .expect("governed");
        assert!(got.is_partial());
        assert!(got.value.is_empty());
    }

    /// Brute-force triangle oracle over the raw adjacency.
    fn oracle_triangles(idx: &LabelIndex, labels: (u32, u32, u32), n: u32) -> u64 {
        let raw = RawAdjacency(idx);
        let (mut count, mut bb, mut bc) = (0u64, Vec::new(), Vec::new());
        for a in 0..n {
            bb.clear();
            raw.out_into(a, labels.0, &mut bb);
            for &b in &bb {
                bc.clear();
                raw.out_into(b, labels.1, &mut bc);
                for &c in &bc {
                    if raw.contains_out(a, labels.2, c) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn triangle_count_matches_brute_force_at_any_chunking() {
        let g = test_graph(9);
        let idx = LabelIndex::build(&g);
        let packed = PackedLabelIndex::from_labeled(&g).expect("pack");
        let n = g.node_count() as u32;
        let la = idx.dense_id(g.consts().get("a").expect("a")).expect("a");
        let lb = idx.dense_id(g.consts().get("b").expect("b")).expect("b");
        let lc = idx.dense_id(g.consts().get("c").expect("c")).expect("c");
        let labels = (la, lb, lc);
        let expect = oracle_triangles(&idx, labels, n);
        let pview = packed.view();
        let pk = PackedAdjacency(pview);
        let gov = Governor::unlimited();
        let base = triangle_count(&pk, labels, 0..n, 1, &gov, 8).expect("count");
        assert!(base.completion.is_complete());
        assert_eq!(base.value.count, expect);
        for chunks in [2, 4] {
            let got = triangle_count(&pk, labels, 0..n, chunks, &gov, 8).expect("count");
            assert_eq!(got.value, base.value, "chunks={chunks}");
        }
        // Raw adjacency agrees too.
        let raw = RawAdjacency(&idx);
        let got = triangle_count(&raw, labels, 0..n, 2, &gov, 8).expect("count");
        assert_eq!(got.value, base.value);
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 63, 64, 65, 1000] {
            for chunks in [1usize, 2, 3, 7] {
                let mut covered = 0;
                for i in 0..chunks {
                    let r = chunk_bounds(len, chunks, i);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
