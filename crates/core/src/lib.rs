//! # kgq-core — querying graphs with path regular expressions
//!
//! The primary contribution of the reproduced tutorial (Arenas, Gutierrez
//! & Sequeda, SIGMOD 2021): a unified path-query engine over the three
//! graph data models of `kgq-graph`, implementing Section 4 end to end.
//!
//! * [`expr`] / [`parser`] — the regular-expression grammar (1) with node
//!   tests `?t`, inverse steps `t^-`, boolean tests, property tests
//!   `[p=v]` and feature tests `[#i=v]`.
//! * [`automata`] — Thompson NFAs with guarded ε-transitions, plus
//!   Hopcroft minimization of their determinization (canonical automata
//!   for smaller products and better cache sharing).
//! * [`bitkernel`] — bit-parallel multi-source reachability: 64 BFS
//!   sources advance per pass over the product.
//! * [`model`] — the [`model::PathGraph`] evaluation interface and views
//!   for labeled, property and vector-labeled graphs.
//! * [`product`] — the graph × NFA product over the path-word alphabet,
//!   and its determinization.
//! * [`eval`] — reachability-style evaluation: node extraction, pairs,
//!   shortest witnesses.
//! * [`count`] — exact `Count(G, r, k)` (DP on the determinized product)
//!   and the brute-force baseline.
//! * [`approx`] — FPRAS-style approximate counting and
//!   approximately-uniform generation (ACJR \[9, 10\]).
//! * [`gen`] — exactly-uniform generation with a preprocessing +
//!   generation-phase interface.
//! * [`enumerate`] — polynomial-delay enumeration of answers.
//! * [`path`] — paths as first-class values.
//! * [`simplify`] — semantics-preserving expression rewriting.
//! * [`govern`] — resource governance: budgets, deadlines, cooperative
//!   cancellation, panic isolation, graceful degradation.
//! * [`analyze`] — static query analysis ahead of compilation:
//!   emptiness, test satisfiability, finiteness/blowup, plan advice and
//!   complexity-class tagging with spanned diagnostics.

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod analyze;
pub mod approx;
pub mod automata;
pub mod bitkernel;
pub mod cache;
pub mod count;
pub mod enumerate;
pub mod eval;
pub mod expr;
pub mod gen;
pub mod govern;
pub mod model;
pub mod parallel;
pub mod parser;
pub mod path;
pub mod product;
pub mod scale;
pub mod simplify;

pub use analyze::{
    analyze_expr, ComplexityClass, Diagnostic, LanguageFacts, PlanAdvice, Position, Report,
    Severity, Tri,
};
pub use approx::{
    approx_count, approx_count_amplified, approx_count_governed, ApproxCounter, ApproxParams,
};
pub use automata::{MinimizedNfa, Nfa, NfaSignature};
pub use bitkernel::ReachKernel;
pub use cache::{CacheStats, CompiledQuery, QueryCache};
pub use count::{
    count_paths, count_paths_analyzed, count_paths_governed, count_paths_naive, CountError,
    CountOutcome, ExactCounter,
};
pub use enumerate::{
    enumerate_paths, enumerate_paths_governed, enumerate_paths_resumed, enumerate_paths_upto,
    Cursor, CursorError, EnumerationPage, PathEnumerator,
};
pub use eval::{eval_pairs, matching_starts, paths_between, Evaluator};
pub use expr::{PathExpr, Test};
pub use gen::UniformSampler;
pub use govern::{
    Budget, CancelToken, Completion, EvalError, Governed, Governor, Interrupt, Ticker,
};
pub use model::{LabeledView, PathGraph, PropertyView, VectorView};
pub use parser::{parse_expr, ParseError};
pub use path::Path;
pub use product::{DetProduct, Product};
pub use scale::{
    triangle_count, LabelAdjacency, LabelDfa, PackedAdjacency, RawAdjacency, ScaleError,
    ScaleEvaluator, TriangleCount,
};
pub use simplify::{simplify, simplify_test};
