//! Threading control for the multi-source evaluation scans.
//!
//! The parallel entry points ([`crate::eval::Evaluator::pairs`],
//! [`crate::count::count_paths_naive`],
//! [`crate::approx::approx_count_amplified`]) all follow the same
//! discipline: split work into *units* that are computed independently
//! and combined in unit order (or with an order-insensitive sum).
//! Answers are therefore identical for every thread count, including
//! one.
//!
//! Since the bit-parallel kernel landed ([`crate::bitkernel`]), the unit
//! of parallelism for the reachability scans is a **batch of 64 source
//! nodes**, not a single source: each worker runs one
//! [`crate::bitkernel::ReachKernel`] sweep that advances all 64 BFS
//! frontiers of its batch at once, and batch results are concatenated in
//! batch order. Counting and sampling entry points still split by single
//! source/round.
//!
//! Thread count resolution, highest priority first:
//!
//! 1. the `KGQ_THREADS` environment variable (applied once, on first use);
//! 2. whatever the rayon global pool was configured with
//!    (`RAYON_NUM_THREADS`, or an explicit `ThreadPoolBuilder`);
//! 3. the machine's available parallelism.
//!
//! Setting `KGQ_THREADS=1` forces the sequential paths everywhere.
//!
//! ## Governance across workers
//!
//! Governed scans ([`crate::eval::Evaluator::pairs_governed`] and
//! friends) share one [`crate::govern::Governor`] by reference across
//! all worker threads: each worker charges its own batched
//! [`crate::govern::Ticker`] into the shared atomic counters, observes
//! the *sticky* trip (including cooperative cancellation) at its next
//! batch boundary, and returns its per-source partial state cleanly
//! instead of being torn down. Worker closures also run inside
//! [`crate::govern::isolate`], so a panicking worker is converted into a
//! typed [`crate::govern::EvalError::Panic`] rather than unwinding
//! through the pool — the bundled rayon shim joins every scoped thread
//! before returning, so no thread ever outlives (leaks from) a scan.

use std::sync::Once;

static INIT: Once = Once::new();

/// Applies `KGQ_THREADS` (if set and valid) to the global rayon pool.
/// Idempotent; called automatically by [`effective_threads`]. A value
/// that is set but not a positive integer (`0`, empty, non-numeric) is
/// reported once on stderr — naming the bad value and the fallback —
/// instead of being silently ignored.
pub fn init_threads() {
    INIT.call_once(|| {
        if let Ok(v) = std::env::var("KGQ_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => {
                    let _ = rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build_global();
                }
                Ok(_) => eprintln!(
                    "warning: KGQ_THREADS=0 is not a valid thread count; \
                     using the pool default ({} threads)",
                    rayon::current_num_threads()
                ),
                Err(_) => eprintln!(
                    "warning: KGQ_THREADS=`{v}` is not a positive integer; \
                     using the pool default ({} threads)",
                    rayon::current_num_threads()
                ),
            }
        }
    });
}

/// Number of threads the parallel scans will use (after honoring
/// `KGQ_THREADS`). A return value of 1 routes every scan through its
/// sequential reference implementation.
pub fn effective_threads() -> usize {
    init_threads();
    rayon::current_num_threads()
}

/// Reconfigures the global pool to `n` threads, overriding `KGQ_THREADS`
/// and any earlier configuration (the bundled rayon's `build_global` is
/// repeatable: the last call wins). Intended for benchmarks and tests
/// that measure or verify behavior across thread counts.
pub fn set_threads(n: usize) {
    init_threads();
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n.max(1))
        .build_global();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_is_positive() {
        assert!(effective_threads() >= 1);
    }
}
