//! FPRAS-style approximate counting and approximately-uniform generation
//! of paths (§4.1, results of Arenas–Croquevielle–Jayaram–Riveros \[9, 10\]).
//!
//! The paper presents a randomized algorithm `𝒜(G, r, k, ε)` whose output
//! is, with very high probability, within relative error `ε` of
//! `Count(G, r, k)`, running in time polynomial in `|G|`, `|r|`, `k` and
//! `1/ε` — crucially *without* the exponential determinization that exact
//! counting pays.
//!
//! This module implements the layered sample-pool scheme in the spirit of
//! that construction. Let `L_i(s)` be the set of words (paths) of length
//! `i` whose NFA-product run reaches state `s`. Then
//!
//! ```text
//! L_i(s') = ⋃ { L_{i-1}(s) · e  :  (s, e) a predecessor of s' }
//! ```
//!
//! Each layer's set sizes are estimated with the Karp–Luby union
//! estimator: sample a predecessor `(s, e)` with probability proportional
//! to the estimate `N̂(s, i-1)`, draw a word from the sample *pool* of
//! `(s, i-1)`, extend it with `e`, and accept iff the chosen predecessor
//! is the *canonical* (first) one containing the word — membership being
//! decidable by running the product. Accepted samples are (approximately)
//! uniform over `L_i(s')` and seed the next layer's pools; the acceptance
//! rate converts the sum of predecessor estimates into a union estimate.
//! The final answer applies the same estimator to the union of `L_k` over
//! accepting states.
//!
//! The constants (trial counts, pool sizes) follow practical rather than
//! worst-case theory values; accuracy is validated against the exact
//! counter in the tests and in experiment E4.

use crate::automata::Nfa;
use crate::expr::PathExpr;
use crate::govern::{fault_point, EvalError, Governor, Ticker};
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::{PState, Product};
use kgq_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning parameters for the approximation scheme.
#[derive(Clone, Debug)]
pub struct ApproxParams {
    /// Target relative error `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Karp–Luby trials per (state, layer); default `⌈48 / ε²⌉`, clamped
    /// to `[256, 40_000]`.
    pub trials: Option<usize>,
    /// Maximum number of samples kept per (state, layer) pool.
    pub pool_cap: usize,
    /// RNG seed (the algorithm is deterministic given the seed).
    pub seed: u64,
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams {
            epsilon: 0.2,
            trials: None,
            pool_cap: 192,
            seed: 0xAC78,
        }
    }
}

impl ApproxParams {
    fn effective_trials(&self) -> usize {
        match self.trials {
            Some(t) => t.max(16),
            None => ((48.0 / (self.epsilon * self.epsilon)).ceil() as usize).clamp(256, 40_000),
        }
    }
}

#[derive(Clone, Debug)]
struct Sample {
    word: Path,
    /// δ̂(word): all product states reached by the word, sorted.
    reached: Vec<PState>,
}

/// Preprocessed approximate counter + sampler for `(G, r, k)`.
pub struct ApproxCounter {
    product: Product,
    k: usize,
    /// `est[i][s] ≈ |L_i(s)|`.
    est: Vec<Vec<f64>>,
    /// Sample pools per layer and state.
    pools: Vec<Vec<Vec<Sample>>>,
    estimate: f64,
    trials: usize,
}

fn step_reached(product: &Product, reached: &[PState], e: EdgeId) -> Vec<PState> {
    let mut next: Vec<PState> = Vec::new();
    for &s in reached {
        let list = product.out(s);
        let lo = list.partition_point(|&(ee, _)| ee.0 < e.0);
        for &(ee, s2) in &list[lo..] {
            if ee != e {
                break;
            }
            next.push(s2);
        }
    }
    next.sort_unstable();
    next.dedup();
    next
}

fn weighted_pick<R: Rng>(rng: &mut R, weights: &[f64], total: f64) -> usize {
    let mut t = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

impl ApproxCounter {
    /// Runs the preprocessing phase (the whole layered estimation).
    pub fn build<G: PathGraph>(
        g: &G,
        expr: &PathExpr,
        k: usize,
        params: &ApproxParams,
    ) -> ApproxCounter {
        match ApproxCounter::build_inner(g, expr, k, params, None) {
            Ok(c) => c,
            Err(e) => unreachable!("ungoverned approx build failed: {e}"),
        }
    }

    /// Governed [`ApproxCounter::build`]: each Karp–Luby trial charges a
    /// step and the sample pools charge memory, so the preprocessing
    /// phase respects deadlines and budgets like every other algorithm.
    pub fn build_governed<G: PathGraph>(
        g: &G,
        expr: &PathExpr,
        k: usize,
        params: &ApproxParams,
        gov: &Governor,
    ) -> Result<ApproxCounter, EvalError> {
        ApproxCounter::build_inner(g, expr, k, params, Some(gov))
    }

    fn build_inner<G: PathGraph>(
        g: &G,
        expr: &PathExpr,
        k: usize,
        params: &ApproxParams,
        gov: Option<&Governor>,
    ) -> Result<ApproxCounter, EvalError> {
        assert!(
            params.epsilon > 0.0 && params.epsilon < 1.0,
            "epsilon must be in (0,1)"
        );
        fault_point!("approx::build");
        let mut ticker = Ticker::maybe(gov);
        let nfa = Nfa::compile(expr);
        let product = match gov {
            Some(gov) => Product::build_governed(g, &nfa, gov)?,
            None => Product::build(g, &nfa),
        };
        let m = product.state_count();
        let trials = params.effective_trials();
        let mut rng = StdRng::seed_from_u64(params.seed);

        let mut est: Vec<Vec<f64>> = Vec::with_capacity(k + 1);
        let mut pools: Vec<Vec<Vec<Sample>>> = Vec::with_capacity(k + 1);

        // Layer 0: L_0((n, q)) = {[n]} for initial states.
        let mut e0 = vec![0.0; m];
        let mut p0: Vec<Vec<Sample>> = vec![Vec::new(); m];
        for v in 0..product.node_count() {
            let list = product.initial(NodeId(v as u32));
            if list.is_empty() {
                continue;
            }
            let mut reached = list.to_vec();
            reached.sort_unstable();
            for &s in list {
                e0[s as usize] = 1.0;
                p0[s as usize].push(Sample {
                    word: Path::trivial(NodeId(v as u32)),
                    reached: reached.clone(),
                });
            }
        }
        est.push(e0);
        pools.push(p0);

        for i in 1..=k {
            let prev_est = &est[i - 1];
            let prev_pools = &pools[i - 1];
            let mut cur_est = vec![0.0; m];
            let mut cur_pools: Vec<Vec<Sample>> = vec![Vec::new(); m];
            if let Some(gov) = gov {
                // One estimate row plus pool headers per layer; samples
                // are charged as they are accepted below.
                gov.charge_memory(32 * m as u64)?;
            }
            for s_prime in 0..m {
                let preds = product.preds(s_prime as PState);
                if preds.is_empty() {
                    continue;
                }
                let weights: Vec<f64> = preds.iter().map(|&(s, _)| prev_est[s as usize]).collect();
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    continue;
                }
                let mut accepted = 0usize;
                for _ in 0..trials {
                    ticker.tick()?;
                    let j = weighted_pick(&mut rng, &weights, total);
                    let (s, e) = preds[j];
                    let pool = &prev_pools[s as usize];
                    if pool.is_empty() {
                        continue; // failed trial
                    }
                    let sample = &pool[rng.gen_range(0..pool.len())];
                    // Canonical predecessor: first (s_c, e_c) with
                    // e_c == e and s_c ∈ δ̂(word).
                    let canonical = preds
                        .iter()
                        .position(|&(sc, ec)| ec == e && sample.reached.binary_search(&sc).is_ok());
                    if canonical != Some(j) {
                        continue;
                    }
                    accepted += 1;
                    if cur_pools[s_prime].len() < params.pool_cap {
                        let mut word = sample.word.clone();
                        word.edges.push(e);
                        let reached = step_reached(&product, &sample.reached, e);
                        debug_assert!(reached.binary_search(&(s_prime as PState)).is_ok());
                        if let Some(gov) = gov {
                            gov.charge_memory(32 + 8 * (word.edges.len() + reached.len()) as u64)?;
                        }
                        cur_pools[s_prime].push(Sample { word, reached });
                    }
                }
                cur_est[s_prime] = total * accepted as f64 / trials as f64;
            }
            est.push(cur_est);
            pools.push(cur_pools);
        }

        // Final union over accepting states at layer k.
        let accepting: Vec<usize> = (0..m)
            .filter(|&s| product.is_accepting(s as PState))
            .collect();
        let weights: Vec<f64> = accepting.iter().map(|&s| est[k][s]).collect();
        let total: f64 = weights.iter().sum();
        let estimate = if total <= 0.0 {
            0.0
        } else {
            let mut accepted = 0usize;
            for _ in 0..trials {
                ticker.tick()?;
                let j = weighted_pick(&mut rng, &weights, total);
                let s = accepting[j];
                let pool = &pools[k][s];
                if pool.is_empty() {
                    continue;
                }
                let sample = &pool[rng.gen_range(0..pool.len())];
                let canonical = accepting
                    .iter()
                    .position(|&sc| sample.reached.binary_search(&(sc as PState)).is_ok());
                if canonical == Some(j) {
                    accepted += 1;
                }
            }
            total * accepted as f64 / trials as f64
        };

        ticker.flush()?;
        Ok(ApproxCounter {
            product,
            k,
            est,
            pools,
            estimate,
            trials,
        })
    }

    /// The estimate `𝒜(G, r, k, ε) ≈ Count(G, r, k)`.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Number of Karp–Luby trials used per estimate.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The underlying product automaton.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// Generation phase: draws an approximately-uniform answer of length
    /// `k` from the preprocessed pools. Returns `None` if the answer set
    /// is (estimated) empty or rejection sampling fails repeatedly.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Path> {
        let m = self.product.state_count();
        let accepting: Vec<usize> = (0..m)
            .filter(|&s| self.product.is_accepting(s as PState))
            .collect();
        let weights: Vec<f64> = accepting.iter().map(|&s| self.est[self.k][s]).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for _ in 0..512 {
            let j = weighted_pick(rng, &weights, total);
            let s = accepting[j];
            let pool = &self.pools[self.k][s];
            if pool.is_empty() {
                continue;
            }
            let sample = &pool[rng.gen_range(0..pool.len())];
            let canonical = accepting
                .iter()
                .position(|&sc| sample.reached.binary_search(&(sc as PState)).is_ok());
            if canonical == Some(j) {
                return Some(sample.word.clone());
            }
        }
        None
    }
}

/// One-shot `𝒜(G, r, k, ε)` — see [`ApproxCounter`].
pub fn approx_count<G: PathGraph>(g: &G, expr: &PathExpr, k: usize, params: &ApproxParams) -> f64 {
    ApproxCounter::build(g, expr, k, params).estimate()
}

/// Governed one-shot estimate with default parameters — the fallback
/// rung used by [`crate::count::count_paths_governed`].
pub fn approx_count_governed<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    gov: &Governor,
) -> Result<f64, EvalError> {
    approx_count_governed_with(g, expr, k, &ApproxParams::default(), gov)
}

/// [`approx_count_governed`] with explicit estimator parameters.
pub fn approx_count_governed_with<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    params: &ApproxParams,
    gov: &Governor,
) -> Result<f64, EvalError> {
    Ok(ApproxCounter::build_governed(g, expr, k, params, gov)?.estimate())
}

/// Median-of-`rounds` amplification of [`approx_count`].
///
/// The paper states the estimate is within `ε` "with probability at
/// least `1 − (1/2)^100`" — that confidence comes from repeating a
/// constant-confidence estimator independently and taking the median:
/// if each round lands within `ε` with probability `> 1/2 + δ`, the
/// median fails only when half the rounds fail, which decays
/// exponentially in `rounds` (Chernoff). Rounds use seeds
/// `params.seed, params.seed + 1, …` and are therefore independent: they
/// run in parallel when threads are available, and since each round is
/// deterministic in its seed the median never depends on thread count.
pub fn approx_count_amplified<G: PathGraph + Sync>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    params: &ApproxParams,
    rounds: usize,
) -> f64 {
    assert!(rounds >= 1);
    let one_round = |i: usize| {
        let p = ApproxParams {
            seed: params.seed.wrapping_add(i as u64),
            ..params.clone()
        };
        ApproxCounter::build(g, expr, k, &p).estimate()
    };
    let mut estimates: Vec<f64> = if crate::parallel::effective_threads() > 1 && rounds >= 2 {
        use rayon::prelude::*;
        (0..rounds).into_par_iter().map(one_round).collect()
    } else {
        (0..rounds).map(one_round).collect()
    };
    estimates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let mid = estimates.len() / 2;
    if estimates.len() % 2 == 1 {
        estimates[mid]
    } else {
        (estimates[mid - 1] + estimates[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_paths;
    use crate::enumerate::enumerate_paths;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{gnm_labeled, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn relative_error(est: f64, exact: u128) -> f64 {
        if exact == 0 {
            est.abs()
        } else {
            (est - exact as f64).abs() / exact as f64
        }
    }

    #[test]
    fn estimate_tracks_exact_count_on_random_graphs() {
        let params = ApproxParams {
            epsilon: 0.2,
            seed: 11,
            ..ApproxParams::default()
        };
        for seed in [1u64, 2, 3] {
            let mut g = gnm_labeled(10, 24, &["a", "b"], &["p", "q"], seed);
            let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
            let view = LabeledView::new(&g);
            for k in [1usize, 3, 5] {
                let exact = count_paths(&view, &e, k).unwrap();
                let est = approx_count(&view, &e, k, &params);
                let err = relative_error(est, exact);
                assert!(
                    err < 0.5,
                    "seed={seed} k={k}: est={est:.1} exact={exact} err={err:.2}"
                );
            }
        }
    }

    #[test]
    fn exact_zero_is_estimated_zero() {
        let mut g = figure2_labeled();
        let e = parse_expr("ghost", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let est = approx_count(&view, &e, 3, &ApproxParams::default());
        assert_eq!(est, 0.0);
    }

    #[test]
    fn unambiguous_case_is_near_exact() {
        // On a simple path with (next)*, every union has a single
        // predecessor, so the estimator is exact up to sampling noise of
        // the acceptance rate (which is 1).
        let mut g = path_graph(8, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        for k in 0..=5 {
            let exact = count_paths(&view, &e, k).unwrap() as f64;
            let est = approx_count(&view, &e, k, &ApproxParams::default());
            assert!((est - exact).abs() < 1e-9, "k={k}: est={est} exact={exact}");
        }
    }

    #[test]
    fn ambiguous_expression_not_overcounted() {
        // (a + a)* is maximally ambiguous; the run-counting estimate
        // would be off by 2^k, the union estimator must not be.
        let mut g = path_graph(6, "v", "a");
        let e = parse_expr("(a + a)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let k = 3;
        let exact = count_paths(&view, &e, k).unwrap();
        assert_eq!(exact, 3); // three length-3 subpaths of a 5-edge path
        let est = approx_count(&view, &e, k, &ApproxParams::default());
        assert!(relative_error(est, exact) < 0.35, "est={est}");
    }

    #[test]
    fn samples_are_valid_length_k_answers() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ApproxCounter::build(&view, &e, 2, &ApproxParams::default());
        let answers = enumerate_paths(&view, &e, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            let p = counter.sample(&mut rng).expect("non-empty answer set");
            assert!(answers.contains(&p));
            seen.insert(p);
        }
        // Both answers should show up across 60 draws.
        assert_eq!(seen.len(), answers.len());
    }

    #[test]
    fn amplification_beats_worst_single_round() {
        let mut g = path_graph(6, "v", "a");
        let e = parse_expr("(a + a/a)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let k = 4;
        let exact = count_paths(&view, &e, k).unwrap();
        let params = ApproxParams {
            trials: Some(128), // deliberately noisy single rounds
            seed: 100,
            ..ApproxParams::default()
        };
        let singles: Vec<f64> = (0..9u64)
            .map(|i| {
                let p = ApproxParams {
                    seed: params.seed + i,
                    ..params.clone()
                };
                approx_count(&view, &e, k, &p)
            })
            .collect();
        let worst_single = singles
            .iter()
            .map(|est| relative_error(*est, exact))
            .fold(0.0, f64::max);
        let amplified = approx_count_amplified(&view, &e, k, &params, 9);
        let amp_err = relative_error(amplified, exact);
        assert!(
            amp_err <= worst_single + 1e-12,
            "median {amp_err} worse than worst single {worst_single}"
        );
        // Median of 9 equals the middle sorted estimate.
        let mut sorted = singles.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((amplified - sorted[4]).abs() < 1e-12);
    }

    #[test]
    fn more_trials_reduce_error() {
        let mut g = gnm_labeled(10, 26, &["a"], &["p", "q"], 4);
        let e = parse_expr("(p+q/q^-)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let k = 4;
        let exact = count_paths(&view, &e, k).unwrap();
        let mut errs = Vec::new();
        for trials in [64usize, 4096] {
            // Average error over a few seeds for stability.
            let mut total_err = 0.0;
            for seed in 0..5u64 {
                let params = ApproxParams {
                    trials: Some(trials),
                    seed,
                    ..ApproxParams::default()
                };
                total_err += relative_error(approx_count(&view, &e, k, &params), exact);
            }
            errs.push(total_err / 5.0);
        }
        assert!(errs[1] <= errs[0] + 0.05, "error did not shrink: {errs:?}");
    }
}
