//! Execution governance: budgets, deadlines, cooperative cancellation,
//! panic isolation, and (feature-gated) deterministic fault injection.
//!
//! The querying functionalities of the paper are provably expensive in
//! the worst case — exact counting is SpanL-complete (§4.1), and even
//! plain RPQ evaluation is super-linear in the product size — so an
//! engine that serves untrusted queries must bound every evaluation.
//! This module provides the shared vocabulary:
//!
//! * [`Budget`] — declarative limits: wall-clock deadline, step budget,
//!   memory budget, result budget.
//! * [`CancelToken`] — a shared cooperative cancellation flag; flipping
//!   it from any thread interrupts every governed evaluation holding a
//!   clone.
//! * [`Governor`] — one evaluation's live accounting against a budget:
//!   worker threads charge steps / memory / results and observe a
//!   *sticky* trip, so the first limit crossed is the one every thread
//!   reports.
//! * [`Ticker`] — a per-worker batching handle: hot loops tick once per
//!   unit of work, and only every [`Ticker::BATCH`] ticks is the shared
//!   governor (atomics + clock) consulted, keeping the governed path
//!   within a few percent of the ungoverned one.
//! * [`Interrupt`] / [`EvalError`] — the typed taxonomy every governed
//!   entry point returns instead of panicking or running forever.
//! * [`Governed`] / [`Completion`] — a result wrapper that distinguishes
//!   complete answers from partial ones (with the reason), and flags
//!   degraded answers (e.g. exact count replaced by an FPRAS estimate).
//! * [`isolate`] — `catch_unwind`-based panic isolation converting
//!   worker panics into [`EvalError::Panic`].
//!
//! The degradation ladder implemented across the evaluation modules is
//! **exact → approximate → partial**: exact counting that exhausts its
//! budget falls back to the FPRAS counter (`degraded: true`), truncated
//! enumeration returns a prefix plus a continuation cursor, and
//! reachability scans return the per-source prefix computed so far.
//!
//! With the `fault-injection` cargo feature, the [`fault`] submodule
//! adds deterministic, seed-addressable fault points (forced panics,
//! artificial delays, budget starvation) that the robustness test suite
//! uses to prove the engine never poisons the query cache, never leaks
//! a worker thread, and always returns a typed error.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative resource limits for one query evaluation.
///
/// `None` everywhere (the [`Budget::unlimited`] default) means the
/// governed code paths run to completion, byte-identical to their
/// ungoverned counterparts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Governor`] construction.
    pub deadline: Option<Duration>,
    /// Abstract work units (product transitions, BFS expansions, DP
    /// cell updates, match candidates…).
    pub max_steps: Option<u64>,
    /// Coarse allocation budget in bytes (major data structures only:
    /// products, DP tables, sample pools, visited sets).
    pub max_memory_bytes: Option<u64>,
    /// Maximum number of answers materialized (pairs, paths, rows).
    pub max_results: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(d);
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, n: u64) -> Budget {
        self.max_steps = Some(n);
        self
    }

    /// Sets the memory budget.
    pub fn with_max_memory(mut self, bytes: u64) -> Budget {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Sets the result budget.
    pub fn with_max_results(mut self, n: u64) -> Budget {
        self.max_results = Some(n);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// Shared cooperative cancellation flag.
///
/// Cheap to clone (an `Arc<AtomicBool>`); every governed evaluation
/// holding a clone observes [`CancelToken::cancel`] at its next batch
/// boundary and unwinds cleanly with [`Interrupt::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a governed evaluation stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The step budget was exhausted.
    StepBudget,
    /// The memory budget was exhausted.
    MemoryBudget,
    /// The result budget was reached.
    ResultBudget,
    /// The [`CancelToken`] was flipped.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Interrupt::DeadlineExceeded => "deadline exceeded",
            Interrupt::StepBudget => "step budget exhausted",
            Interrupt::MemoryBudget => "memory budget exhausted",
            Interrupt::ResultBudget => "result budget reached",
            Interrupt::Cancelled => "cancelled",
        })
    }
}

/// Typed error taxonomy for governed evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The evaluation was stopped by its governor before any partial
    /// answer could be salvaged.
    Interrupted(Interrupt),
    /// An exact count does not fit in `u128`.
    Overflow,
    /// A worker thread panicked; the panic was isolated and converted
    /// (payload message preserved).
    Panic(String),
    /// User-supplied input (e.g. a continuation cursor) failed
    /// validation.
    InvalidInput(String),
    /// A query plan failed independent soundness verification before
    /// execution; running it could have produced wrong answers.
    PlanUnsound(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Interrupted(i) => write!(f, "evaluation interrupted: {i}"),
            EvalError::Overflow => f.write_str("path count overflows u128"),
            EvalError::Panic(msg) => write!(f, "worker panicked: {msg}"),
            EvalError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            EvalError::PlanUnsound(msg) => {
                write!(f, "plan failed soundness verification: {msg}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<Interrupt> for EvalError {
    fn from(i: Interrupt) -> EvalError {
        EvalError::Interrupted(i)
    }
}

impl From<crate::count::CountError> for EvalError {
    fn from(_: crate::count::CountError) -> EvalError {
        EvalError::Overflow
    }
}

/// Whether a governed answer is the full answer or a clean prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The full answer set.
    Complete,
    /// A prefix of the answer set; the reason evaluation stopped.
    Partial(Interrupt),
}

impl Completion {
    /// True for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }
}

/// A governed answer: the value, whether it is complete, and whether it
/// was produced by a degraded (approximate) algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct Governed<T> {
    /// The (possibly partial) answer.
    pub value: T,
    /// Complete, or partial with the interrupt reason.
    pub completion: Completion,
    /// True when a cheaper algorithm substituted for the requested one
    /// (e.g. FPRAS estimate instead of an exact count).
    pub degraded: bool,
}

impl<T> Governed<T> {
    /// Wraps a complete, non-degraded answer.
    pub fn complete(value: T) -> Governed<T> {
        Governed {
            value,
            completion: Completion::Complete,
            degraded: false,
        }
    }

    /// Wraps a partial answer with its interrupt reason.
    pub fn partial(value: T, why: Interrupt) -> Governed<T> {
        Governed {
            value,
            completion: Completion::Partial(why),
            degraded: false,
        }
    }

    /// True when the answer is a partial prefix.
    pub fn is_partial(&self) -> bool {
        !self.completion.is_complete()
    }
}

/// Packed sticky-trip encoding: 0 = not tripped, else `Interrupt` + 1.
fn encode_trip(i: Interrupt) -> u8 {
    match i {
        Interrupt::DeadlineExceeded => 1,
        Interrupt::StepBudget => 2,
        Interrupt::MemoryBudget => 3,
        Interrupt::ResultBudget => 4,
        Interrupt::Cancelled => 5,
    }
}

fn decode_trip(v: u8) -> Option<Interrupt> {
    Some(match v {
        1 => Interrupt::DeadlineExceeded,
        2 => Interrupt::StepBudget,
        3 => Interrupt::MemoryBudget,
        4 => Interrupt::ResultBudget,
        5 => Interrupt::Cancelled,
        _ => return None,
    })
}

/// Live accounting of one evaluation against a [`Budget`].
///
/// Shared by reference across worker threads; all counters are atomic.
/// The trip state is *sticky*: the first limit crossed is recorded and
/// every subsequent check returns the same [`Interrupt`], so partial
/// results assembled by different workers agree on the reason.
#[derive(Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    max_steps: u64,
    max_memory: u64,
    max_results: u64,
    cancel: CancelToken,
    steps: AtomicU64,
    memory: AtomicU64,
    results: AtomicU64,
    tripped: AtomicU8,
}

impl Default for Governor {
    fn default() -> Governor {
        Governor::new(&Budget::unlimited())
    }
}

impl Governor {
    /// Starts governing against `budget` (deadline measured from now)
    /// with a private cancel token.
    pub fn new(budget: &Budget) -> Governor {
        Governor::with_cancel(budget, CancelToken::new())
    }

    /// Starts governing against `budget`, observing `cancel`.
    pub fn with_cancel(budget: &Budget, cancel: CancelToken) -> Governor {
        Governor {
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_steps: budget.max_steps.unwrap_or(u64::MAX),
            max_memory: budget.max_memory_bytes.unwrap_or(u64::MAX),
            max_results: budget.max_results.unwrap_or(u64::MAX),
            cancel,
            steps: AtomicU64::new(0),
            memory: AtomicU64::new(0),
            results: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
        }
    }

    /// An unlimited governor (useful as a default argument).
    pub fn unlimited() -> Governor {
        Governor::default()
    }

    /// A follow-up governor for a later rung of the degradation ladder:
    /// same deadline instant and cancel token, fresh counters, and a
    /// step budget of whatever this governor has not yet spent.
    pub fn successor(&self) -> Governor {
        self.successor_with_steps(
            self.max_steps
                .saturating_sub(self.steps.load(Ordering::Relaxed)),
        )
    }

    /// [`Governor::successor`] with an explicit step budget — used when
    /// the first rung ran under a deliberately smaller cap than the
    /// caller's total budget.
    pub fn successor_with_steps(&self, max_steps: u64) -> Governor {
        Governor {
            deadline: self.deadline,
            max_steps,
            max_memory: self.max_memory,
            max_results: self.max_results,
            cancel: self.cancel.clone(),
            steps: AtomicU64::new(0),
            memory: AtomicU64::new(0),
            results: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
        }
    }

    /// The cancel token this governor observes.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Steps charged so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Bytes of tracked allocations currently charged.
    pub fn memory_used(&self) -> u64 {
        self.memory.load(Ordering::Relaxed)
    }

    /// Results charged so far.
    pub fn results_used(&self) -> u64 {
        self.results.load(Ordering::Relaxed)
    }

    /// The sticky interrupt, if the governor has tripped.
    pub fn trip_state(&self) -> Option<Interrupt> {
        decode_trip(self.tripped.load(Ordering::Relaxed))
    }

    fn trip(&self, why: Interrupt) -> Interrupt {
        // First writer wins; later trips observe the original reason.
        let _ = self.tripped.compare_exchange(
            0,
            encode_trip(why),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.trip_state().unwrap_or(why)
    }

    fn check_ambient(&self) -> Result<(), Interrupt> {
        if let Some(t) = self.trip_state() {
            return Err(t);
        }
        #[cfg(feature = "fault-injection")]
        if fault::starved("govern::tick") {
            return Err(self.trip(Interrupt::StepBudget));
        }
        if self.cancel.is_cancelled() {
            return Err(self.trip(Interrupt::Cancelled));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(self.trip(Interrupt::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Charges `n` work units and checks every limit. Called at batch
    /// granularity — use a [`Ticker`] in hot loops rather than calling
    /// this per unit.
    pub fn charge_steps(&self, n: u64) -> Result<(), Interrupt> {
        let total = self.steps.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if total > self.max_steps {
            return Err(self.trip(Interrupt::StepBudget));
        }
        self.check_ambient()
    }

    /// Charges `bytes` of tracked allocation.
    pub fn charge_memory(&self, bytes: u64) -> Result<(), Interrupt> {
        let total = self
            .memory
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if total > self.max_memory {
            return Err(self.trip(Interrupt::MemoryBudget));
        }
        if let Some(t) = self.trip_state() {
            return Err(t);
        }
        Ok(())
    }

    /// Releases `bytes` charged earlier (transient allocations).
    pub fn release_memory(&self, bytes: u64) {
        let _ = self
            .memory
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |m| {
                Some(m.saturating_sub(bytes))
            });
    }

    /// Charges `n` materialized answers.
    pub fn charge_results(&self, n: u64) -> Result<(), Interrupt> {
        let total = self
            .results
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if total >= self.max_results.saturating_add(1) {
            return Err(self.trip(Interrupt::ResultBudget));
        }
        if let Some(t) = self.trip_state() {
            return Err(t);
        }
        Ok(())
    }
}

/// Per-worker batching handle over an optional [`Governor`].
///
/// Hot loops call [`Ticker::tick`] once per unit of work; the shared
/// governor (atomic counters, cancel flag, clock) is only consulted
/// every [`Ticker::BATCH`] ticks, so the ungoverned configuration
/// (`Ticker::none()`) costs a single branch and increment per unit.
pub struct Ticker<'g> {
    gov: Option<&'g Governor>,
    pending: u32,
}

impl<'g> Ticker<'g> {
    /// Units of work batched between governor consultations.
    pub const BATCH: u32 = 1024;

    /// A ticker charging `gov`.
    pub fn new(gov: &'g Governor) -> Ticker<'g> {
        Ticker {
            gov: Some(gov),
            pending: 0,
        }
    }

    /// A ticker over an optional governor.
    pub fn maybe(gov: Option<&'g Governor>) -> Ticker<'g> {
        Ticker { gov, pending: 0 }
    }

    /// A no-op ticker (ungoverned execution).
    pub fn none() -> Ticker<'static> {
        Ticker {
            gov: None,
            pending: 0,
        }
    }

    /// The governor this ticker charges, if any.
    pub fn governor(&self) -> Option<&'g Governor> {
        self.gov
    }

    /// Records one unit of work; consults the governor at batch
    /// boundaries.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Interrupt> {
        if let Some(gov) = self.gov {
            self.pending += 1;
            if self.pending >= Self::BATCH {
                let n = u64::from(self.pending);
                self.pending = 0;
                gov.charge_steps(n)?;
            }
        }
        Ok(())
    }

    /// Records `n` units of work at once — equivalent to `n`
    /// [`Ticker::tick`] calls with a single branch, for hot loops that
    /// know a block's size up front (e.g. one product state's out-degree).
    #[inline]
    pub fn tick_n(&mut self, n: u32) -> Result<(), Interrupt> {
        if let Some(gov) = self.gov {
            self.pending = self.pending.saturating_add(n);
            if self.pending >= Self::BATCH {
                let t = u64::from(self.pending);
                self.pending = 0;
                gov.charge_steps(t)?;
            }
        }
        Ok(())
    }

    /// Flushes the pending batch and checks limits immediately.
    pub fn flush(&mut self) -> Result<(), Interrupt> {
        if let Some(gov) = self.gov {
            let n = u64::from(self.pending);
            self.pending = 0;
            gov.charge_steps(n)?;
        }
        Ok(())
    }
}

/// [`Ticker`]'s sibling for memory accounting: accumulates byte charges
/// locally and consults the shared governor once per
/// [`MemMeter::BATCH`] bytes, so per-item charges in construction loops
/// stay off the atomic counters. The trip point moves by at most one
/// batch; totals are exact once [`MemMeter::flush`] runs.
pub struct MemMeter<'g> {
    gov: Option<&'g Governor>,
    pending: u64,
}

impl<'g> MemMeter<'g> {
    /// Bytes batched between governor consultations.
    pub const BATCH: u64 = 64 * 1024;

    /// A meter over an optional governor.
    pub fn maybe(gov: Option<&'g Governor>) -> MemMeter<'g> {
        MemMeter { gov, pending: 0 }
    }

    /// Records `bytes` of tracked allocation; consults the governor at
    /// batch boundaries.
    #[inline]
    pub fn charge(&mut self, bytes: u64) -> Result<(), Interrupt> {
        if let Some(gov) = self.gov {
            self.pending += bytes;
            if self.pending >= Self::BATCH {
                let n = self.pending;
                self.pending = 0;
                gov.charge_memory(n)?;
            }
        }
        Ok(())
    }

    /// Flushes the pending bytes and checks limits immediately.
    pub fn flush(&mut self) -> Result<(), Interrupt> {
        if let Some(gov) = self.gov {
            let n = self.pending;
            self.pending = 0;
            gov.charge_memory(n)?;
        }
        Ok(())
    }
}

/// Runs `f`, converting a panic into [`EvalError::Panic`] and an
/// [`Interrupt`] into [`EvalError::Interrupted`].
///
/// Worker closures in the parallel scans run under this guard, so a
/// panicking worker surfaces as a typed error instead of tearing down
/// the thread pool (and the process).
pub fn isolate<T>(f: impl FnOnce() -> Result<T, Interrupt>) -> Result<T, EvalError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(i)) => Err(EvalError::Interrupted(i)),
        Err(payload) => Err(EvalError::Panic(panic_message(&*payload))),
    }
}

/// [`isolate`] for closures that already speak [`EvalError`] — used to
/// wrap whole governed entry points (build + evaluate) so a panic
/// anywhere inside surfaces as [`EvalError::Panic`].
pub fn isolate_eval<T>(f: impl FnOnce() -> Result<T, EvalError>) -> Result<T, EvalError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(EvalError::Panic(panic_message(&*payload))),
    }
}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// Compile-in fault point. Expands to a call into [`fault`] under the
/// `fault-injection` feature and to nothing otherwise, so release
/// builds carry zero overhead.
macro_rules! fault_point {
    ($site:expr) => {{
        #[cfg(feature = "fault-injection")]
        $crate::govern::fault::hit($site);
    }};
}
pub(crate) use fault_point;

/// Deterministic fault injection (only with `--features fault-injection`).
///
/// A global plan arms named fault *sites* (e.g. `"product::build"`)
/// with an [`fault::Action`] that fires on the n-th hit of that site.
/// Hit counting is deterministic for deterministic workloads, and
/// [`fault::arm_seeded`] derives the firing hit from a seed via
/// splitmix64, so a whole randomized campaign is reproducible from one
/// integer. Intended strictly for tests; the plan is process-global, so
/// tests arming faults must serialize on a lock.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// What an armed fault site does when it fires.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Action {
        /// Panic with a recognizable `"injected fault at <site>"` payload.
        Panic,
        /// Sleep for the given number of milliseconds (models a stall).
        DelayMs(u64),
        /// Starve the budget: the governor treats its step budget as
        /// exhausted at the next check (only meaningful at the
        /// `"govern::tick"` site).
        Starve,
        /// I/O fault: a write persists only its first `n` bytes and then
        /// reports failure (models a torn write / full disk mid-record).
        /// Only meaningful at sites consulted via [`io`].
        TornWrite(u64),
        /// I/O fault: a read returns only its first `n` bytes (models a
        /// short read of a truncated or still-in-flight file).
        ShortRead(u64),
        /// I/O fault: `fsync` reports failure; the durability layer must
        /// treat the batch as uncommitted.
        FsyncFail,
        /// I/O fault: the process "crashes" (panics with a recognizable
        /// payload) after the first `n` bytes of the write have reached
        /// the file — the torn-tail shape a power loss leaves behind.
        CrashAfter(u64),
    }

    struct Arm {
        action: Action,
        fire_on_hit: u64,
        once: bool,
        hits: AtomicU64,
    }

    fn plan() -> &'static Mutex<HashMap<String, Arm>> {
        static PLAN: OnceLock<Mutex<HashMap<String, Arm>>> = OnceLock::new();
        PLAN.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `site` to fire `action` once, on its `fire_on_hit`-th hit
    /// (0-based).
    pub fn arm(site: &str, action: Action, fire_on_hit: u64) {
        plan().lock().unwrap().insert(
            site.to_owned(),
            Arm {
                action,
                fire_on_hit,
                once: true,
                hits: AtomicU64::new(0),
            },
        );
    }

    /// Arms `site` to fire `action` on *every* hit from `fire_on_hit`
    /// onwards (e.g. persistent starvation).
    pub fn arm_persistent(site: &str, action: Action, fire_on_hit: u64) {
        plan().lock().unwrap().insert(
            site.to_owned(),
            Arm {
                action,
                fire_on_hit,
                once: false,
                hits: AtomicU64::new(0),
            },
        );
    }

    /// splitmix64 — the standard 64-bit finalizer, deterministic.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// Arms each site with `action`, firing on a hit index derived
    /// deterministically from `seed` and the site name (uniform in
    /// `0..max_hit`).
    pub fn arm_seeded(seed: u64, sites: &[&str], action: Action, max_hit: u64) {
        for site in sites {
            let mut h = seed;
            for b in site.bytes() {
                h = splitmix64(h ^ u64::from(b));
            }
            arm(site, action, h % max_hit.max(1));
        }
    }

    /// Disarms every site and resets hit counters.
    pub fn clear() {
        plan().lock().unwrap().clear();
    }

    /// Number of times `site` has been hit since it was armed.
    pub fn hits(site: &str) -> u64 {
        plan()
            .lock()
            .unwrap()
            .get(site)
            .map_or(0, |a| a.hits.load(Ordering::Relaxed))
    }

    fn firing(site: &str) -> Option<Action> {
        let guard = plan().lock().unwrap();
        let arm = guard.get(site)?;
        let hit = arm.hits.fetch_add(1, Ordering::Relaxed);
        let fires = if arm.once {
            hit == arm.fire_on_hit
        } else {
            hit >= arm.fire_on_hit
        };
        fires.then_some(arm.action)
    }

    /// Executes `site`'s armed action if it fires on this hit. Called
    /// from `fault_point!` sites; panics / sleeps in the caller's
    /// context. [`Action::Starve`] is handled by [`starved`] instead,
    /// and the I/O actions by [`io`].
    pub fn hit(site: &str) {
        match firing(site) {
            Some(Action::Panic) => panic!("injected fault at {site}"),
            Some(Action::DelayMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
    }

    /// Consults `site` for an I/O fault. Returns the fired action —
    /// [`Action::TornWrite`], [`Action::ShortRead`], [`Action::FsyncFail`]
    /// or [`Action::CrashAfter`] — for the I/O layer to interpret
    /// (truncate the write, clip the read, fail the fsync, panic after
    /// N bytes). Non-I/O actions armed at an `io`-consulted site keep
    /// their usual semantics: `Panic` panics here, `DelayMs` sleeps,
    /// `Starve` is ignored.
    pub fn io(site: &str) -> Option<Action> {
        match firing(site) {
            Some(Action::Panic) => panic!("injected fault at {site}"),
            Some(Action::DelayMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Some(Action::Starve) | None => None,
            fired => fired,
        }
    }

    /// True when `site` is armed with [`Action::Starve`] and fires on
    /// this hit; consulted by the governor's ambient check.
    pub fn starved(site: &str) -> bool {
        matches!(firing(site), Some(Action::Starve))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let gov = Governor::unlimited();
        for _ in 0..10 {
            assert!(gov.charge_steps(1_000_000).is_ok());
            assert!(gov.charge_memory(1 << 30).is_ok());
            assert!(gov.charge_results(1 << 20).is_ok());
        }
        assert_eq!(gov.trip_state(), None);
    }

    #[test]
    fn step_budget_trips_sticky() {
        let gov = Governor::new(&Budget::unlimited().with_max_steps(100));
        assert!(gov.charge_steps(100).is_ok());
        assert_eq!(gov.charge_steps(1), Err(Interrupt::StepBudget));
        // Sticky: later charges of any kind report the original reason.
        assert_eq!(gov.charge_memory(1), Err(Interrupt::StepBudget));
        assert_eq!(gov.charge_results(1), Err(Interrupt::StepBudget));
        assert_eq!(gov.trip_state(), Some(Interrupt::StepBudget));
    }

    #[test]
    fn deadline_trips() {
        let gov = Governor::new(&Budget::unlimited().with_deadline(Duration::from_millis(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(gov.charge_steps(1), Err(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn cancellation_is_observed_across_clones() {
        let token = CancelToken::new();
        let gov = Governor::with_cancel(&Budget::unlimited(), token.clone());
        assert!(gov.charge_steps(1).is_ok());
        token.cancel();
        assert_eq!(gov.charge_steps(1), Err(Interrupt::Cancelled));
        assert_eq!(gov.trip_state(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn memory_charges_and_releases() {
        let gov = Governor::new(&Budget::unlimited().with_max_memory(1000));
        assert!(gov.charge_memory(900).is_ok());
        gov.release_memory(800);
        assert!(gov.charge_memory(800).is_ok());
        assert_eq!(gov.charge_memory(200), Err(Interrupt::MemoryBudget));
    }

    #[test]
    fn result_budget_allows_exactly_max() {
        let gov = Governor::new(&Budget::unlimited().with_max_results(3));
        assert!(gov.charge_results(1).is_ok());
        assert!(gov.charge_results(1).is_ok());
        assert!(gov.charge_results(1).is_ok());
        assert_eq!(gov.charge_results(1), Err(Interrupt::ResultBudget));
    }

    #[test]
    fn ticker_batches_and_flushes() {
        let gov = Governor::new(&Budget::unlimited().with_max_steps(Ticker::BATCH as u64 / 2));
        let mut t = Ticker::new(&gov);
        // Under one batch: no consultation yet, so no trip observed.
        for _ in 0..(Ticker::BATCH - 1) {
            assert!(t.tick().is_ok());
        }
        // Flush pushes the batch through and trips the step budget.
        assert_eq!(t.flush(), Err(Interrupt::StepBudget));
    }

    #[test]
    fn successor_inherits_deadline_and_remaining_steps() {
        let gov = Governor::new(&Budget::unlimited().with_max_steps(1000));
        gov.charge_steps(400).unwrap();
        let next = gov.successor();
        assert!(next.charge_steps(600).is_ok());
        assert_eq!(next.charge_steps(1), Err(Interrupt::StepBudget));
    }

    #[test]
    fn isolate_converts_panics_and_interrupts() {
        let ok: Result<u32, EvalError> = isolate(|| Ok(7));
        assert_eq!(ok, Ok(7));
        let interrupted: Result<(), EvalError> = isolate(|| Err(Interrupt::Cancelled));
        assert_eq!(
            interrupted,
            Err(EvalError::Interrupted(Interrupt::Cancelled))
        );
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let panicked: Result<(), EvalError> = isolate(|| panic!("boom {}", 3));
        std::panic::set_hook(prev);
        assert_eq!(panicked, Err(EvalError::Panic("boom 3".to_owned())));
    }

    #[test]
    fn display_taxonomy_is_stable() {
        assert_eq!(Interrupt::DeadlineExceeded.to_string(), "deadline exceeded");
        assert_eq!(
            EvalError::Interrupted(Interrupt::StepBudget).to_string(),
            "evaluation interrupted: step budget exhausted"
        );
        assert_eq!(
            EvalError::Panic("x".into()).to_string(),
            "worker panicked: x"
        );
        assert_eq!(EvalError::Overflow.to_string(), "path count overflows u128");
    }
}
