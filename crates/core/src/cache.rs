//! Compiled-query cache.
//!
//! Building the graph × NFA [`Product`] dominates the cost of evaluating
//! a path expression; the same expression is typically issued many times
//! against the same (or an unchanged) graph. [`QueryCache`] memoizes the
//! compiled form — NFA plus product — keyed by the [`NfaSignature`] of
//! the *minimized* automaton ([`Nfa::compile_min`], applied after
//! [`crate::simplify::simplify`]) together with a **generation stamp** of
//! the graph. Minimal DFAs are canonical per language, so not just
//! rewrite-equal spellings like `(r*)*` and `r*` but any two expressions
//! denoting the same path language — `a/(b+c)` and `a/b + a/c`, say —
//! share one entry; and any mutation of the graph (which bumps its
//! generation) invalidates every entry compiled against the old contents.
//!
//! Eviction is LRU over a logical tick counter; capacity is configurable
//! (`QueryCache::with_capacity`, default 64; `QueryCache::from_env` reads
//! the `KGQ_CACHE_CAP` environment variable — values that do not parse
//! as a positive integer fall back with a one-time warning, and `0` is
//! clamped to 1, the smallest capacity the LRU supports). A cache is
//! meant to be bound to one graph's history: generation stamps are
//! strictly increasing per mutation *within one graph*, not globally
//! unique across graphs.
//!
//! ## Sharing across threads
//!
//! Every method takes `&self`: the mutable state (map, LRU ticks,
//! counters) lives behind an internal mutex, so one cache can be shared
//! by reference — or inside an `Arc` — across concurrent clients (the
//! `kgq serve` server holds exactly one per store snapshot). The lock is
//! held only for lookups and inserts, **never during compilation**: a
//! miss releases the lock, compiles, then re-locks to insert, so a slow
//! (or budget-tripping) compile cannot stall other clients' cache hits.
//! Two threads racing on the same miss may both compile; the first
//! insert wins and the loser adopts the winner's entry, so hits after
//! the race share one product. Generation stamps make the snapshot
//! contract hold under concurrency too: entries compiled against
//! generation `g` are unreachable from any lookup at `g' ≠ g`, so a
//! store mutation (which bumps the generation) can never leak a stale
//! product to a reader of the new snapshot.

use crate::analyze::Report;
use crate::automata::{MinimizedNfa, Nfa, NfaSignature};
use crate::eval::Evaluator;
use crate::expr::PathExpr;
use crate::govern::{fault_point, isolate, EvalError, Governor, Interrupt};
use crate::model::PathGraph;
use crate::product::Product;
use crate::simplify::simplify;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, Once};

/// Default number of compiled queries retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Environment variable overriding the cache capacity.
pub const CACHE_CAP_ENV: &str = "KGQ_CACHE_CAP";

/// A query compiled against a specific graph generation: the canonical
/// expression, its NFA, and the (shared) graph × NFA product.
pub struct CompiledQuery {
    expr: PathExpr,
    nfa: Nfa,
    product: Arc<Product>,
}

impl std::fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("expr", &self.expr)
            .field("product_states", &self.product.state_count())
            .finish_non_exhaustive()
    }
}

impl CompiledQuery {
    fn compile<G: PathGraph>(g: &G, expr: PathExpr, min: MinimizedNfa) -> CompiledQuery {
        let nfa = min.nfa;
        let product = Arc::new(Product::build(g, &nfa));
        CompiledQuery { expr, nfa, product }
    }

    fn compile_governed<G: PathGraph>(
        g: &G,
        expr: PathExpr,
        min: MinimizedNfa,
        gov: &Governor,
    ) -> Result<CompiledQuery, Interrupt> {
        let nfa = min.nfa;
        let product = Arc::new(Product::build_governed(g, &nfa, gov)?);
        Ok(CompiledQuery { expr, nfa, product })
    }

    /// The canonicalized expression this entry was compiled from.
    pub fn expr(&self) -> &PathExpr {
        &self.expr
    }

    /// The minimized automaton of the canonical expression.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The shared graph × NFA product.
    pub fn product(&self) -> &Arc<Product> {
        &self.product
    }

    /// An evaluator over the cached product (no rebuild).
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::from_product(Arc::clone(&self.product))
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    generation: u64,
    sig: NfaSignature,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Lookups the static analyzer resolved without a cache slot: a
    /// provably-empty query answered with no compilation at all, a
    /// `Deny`-flagged query compiled but deliberately not inserted, or a
    /// detached compile requested by the caller (see
    /// [`QueryCache::compile_detached`]).
    pub short_circuits: u64,
    /// Compiled queries currently held.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} short_circuits={} entries={}/{}",
            self.hits, self.misses, self.evictions, self.short_circuits, self.len, self.capacity
        )
    }
}

struct Entry {
    compiled: Arc<CompiledQuery>,
    last_used: u64,
}

/// The lock-protected mutable state: map, LRU clock, counters.
struct Inner {
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    short_circuits: u64,
}

/// LRU cache of [`CompiledQuery`] entries keyed by
/// `(graph generation, canonicalized expression)`.
///
/// Share-safe: all methods take `&self` (see the module docs for the
/// locking discipline), so a `QueryCache` can back one CLI invocation
/// and a multi-client server with the same code.
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// A cache retaining [`DEFAULT_CACHE_CAPACITY`] compiled queries.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// A cache retaining at most `capacity` compiled queries
    /// (`capacity` is clamped to at least 1 — an LRU of capacity 0
    /// could never answer a hit).
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                tick: 0,
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
                short_circuits: 0,
            }),
        }
    }

    /// A cache sized by the `KGQ_CACHE_CAP` environment variable, falling
    /// back to [`DEFAULT_CACHE_CAPACITY`] when unset or unparseable and
    /// clamping `0` to 1 (the smallest capacity the LRU supports). A
    /// value that is set but not a usable positive integer is reported
    /// once per process on stderr, naming the bad value and the
    /// fallback, instead of being silently ignored.
    pub fn from_env() -> QueryCache {
        static WARN: Once = Once::new();
        let capacity = match std::env::var(CACHE_CAP_ENV) {
            Err(_) => DEFAULT_CACHE_CAPACITY,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => {
                    WARN.call_once(|| {
                        eprintln!(
                            "warning: {CACHE_CAP_ENV}=0 is not a usable capacity; \
                             clamping to 1 (the smallest LRU capacity)"
                        );
                    });
                    0 // with_capacity clamps to 1
                }
                Ok(n) => n,
                Err(_) => {
                    WARN.call_once(|| {
                        eprintln!(
                            "warning: {CACHE_CAP_ENV}=`{v}` is not a positive integer; \
                             using the default capacity of {DEFAULT_CACHE_CAPACITY}"
                        );
                    });
                    DEFAULT_CACHE_CAPACITY
                }
            },
        };
        QueryCache::with_capacity(capacity)
    }

    /// Acquires the internal lock. A poisoned mutex is recovered rather
    /// than propagated: compilation runs *outside* the lock (and under
    /// [`isolate`] on the governed paths), so the map is structurally
    /// consistent at every unlock point even if a holder panicked.
    fn inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the compiled form of `expr` against `g` at `generation`,
    /// compiling (and caching) it on a miss. The expression is
    /// canonicalized with [`simplify`] and then keyed by its minimal
    /// automaton's signature, so every spelling of one path language
    /// shares one entry. Compilation happens outside the internal lock;
    /// concurrent misses on one key may compile twice, but only one
    /// entry survives and all callers share it from then on.
    pub fn get_or_compile<G: PathGraph>(
        &self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
    ) -> Arc<CompiledQuery> {
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        let key = CacheKey {
            generation,
            sig: min.signature.clone(),
        };
        if let Some(compiled) = self.lookup(&key) {
            return compiled;
        }
        let compiled = Arc::new(CompiledQuery::compile(g, expr, min));
        self.insert_if_absent(key, compiled)
    }

    /// Governed [`QueryCache::get_or_compile`]: compilation runs under
    /// `gov`'s budget with panics isolated, and is **panic- and
    /// cancel-safe with respect to the cache** — compilation completes
    /// *before* anything is inserted, so an interrupted, cancelled, or
    /// panicking compile leaves the map untouched (no partial entry to
    /// poison later hits); only the hit/miss counters record the attempt.
    pub fn get_or_compile_governed<G: PathGraph>(
        &self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
        gov: &Governor,
    ) -> Result<Arc<CompiledQuery>, EvalError> {
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        let key = CacheKey {
            generation,
            sig: min.signature.clone(),
        };
        if let Some(compiled) = self.lookup(&key) {
            return Ok(compiled);
        }
        let compiled = Arc::new(isolate(|| {
            fault_point!("cache::compile");
            CompiledQuery::compile_governed(g, expr, min, gov)
        })?);
        Ok(self.insert_if_absent(key, compiled))
    }

    /// Analyzer-aware [`QueryCache::get_or_compile`]: consults a static
    /// analysis [`Report`] first so doomed queries never occupy a slot.
    ///
    /// * Provably-empty queries return `None` without compiling anything
    ///   (the caller answers with an empty result instantly).
    /// * `Deny`-flagged queries (e.g. determinization blowup) compile but
    ///   are **not** inserted — an oversized product must not evict
    ///   healthy entries.
    /// * Everything else goes through [`QueryCache::get_or_compile`].
    ///
    /// The first two paths increment the `short_circuits` statistic
    /// reported by [`QueryCache::stats`] (and by the CLI under
    /// `--verbose`).
    pub fn get_or_compile_checked<G: PathGraph>(
        &self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
        report: &Report,
    ) -> Option<Arc<CompiledQuery>> {
        if report.is_provably_empty() {
            self.inner().short_circuits += 1;
            return None;
        }
        if report.denied() {
            return Some(self.compile_detached(g, expr));
        }
        Some(self.get_or_compile(g, generation, expr))
    }

    /// Compiles `expr` without consulting or populating the map. Used
    /// when an entry must not occupy a slot: analyzer-denied blowups,
    /// and server queries whose constants were interned *after* the
    /// shared snapshot was frozen (their symbol ids are request-local,
    /// so a cache keyed on them could collide across requests). Counted
    /// under `short_circuits`.
    pub fn compile_detached<G: PathGraph>(&self, g: &G, expr: &PathExpr) -> Arc<CompiledQuery> {
        self.inner().short_circuits += 1;
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        Arc::new(CompiledQuery::compile(g, expr, min))
    }

    /// Governed [`QueryCache::compile_detached`]: same no-slot contract,
    /// with compilation under `gov` and panics isolated.
    pub fn compile_detached_governed<G: PathGraph>(
        &self,
        g: &G,
        expr: &PathExpr,
        gov: &Governor,
    ) -> Result<Arc<CompiledQuery>, EvalError> {
        self.inner().short_circuits += 1;
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        Ok(Arc::new(isolate(|| {
            fault_point!("cache::compile");
            CompiledQuery::compile_governed(g, expr, min, gov)
        })?))
    }

    /// The lookup half: under the lock, touch + count a hit, or count a
    /// miss and return `None` (the caller compiles outside the lock).
    fn lookup(&self, key: &CacheKey) -> Option<Arc<CompiledQuery>> {
        let mut inner = self.inner();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.compiled)
        });
        match found {
            Some(compiled) => {
                inner.hits += 1;
                Some(compiled)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// The insert half: under the lock, adopt a racing thread's entry if
    /// one appeared since [`QueryCache::lookup`], otherwise evict to
    /// capacity and insert `compiled`. Returns the entry that won.
    fn insert_if_absent(&self, key: CacheKey, compiled: Arc<CompiledQuery>) -> Arc<CompiledQuery> {
        let mut inner = self.inner();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            // A racing compile of the same key landed first; share it so
            // every caller holds the same product from here on. The race
            // was already counted as two misses — honest, since both
            // threads did compile.
            entry.last_used = tick;
            return Arc::clone(&entry.compiled);
        }
        if inner.map.len() >= self.capacity {
            if let Some(key) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&key);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                compiled: Arc::clone(&compiled),
                last_used: tick,
            },
        );
        compiled
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.inner().map.clear();
    }

    /// Number of compiled queries currently held.
    pub fn len(&self) -> usize {
        self.inner().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner().map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner().hits
    }

    /// Lookups that required compilation.
    pub fn misses(&self) -> u64 {
        self.inner().misses
    }

    /// Entries dropped to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.inner().evictions
    }

    /// Lookups resolved without occupying a cache slot (see
    /// [`QueryCache::get_or_compile_checked`] and
    /// [`QueryCache::compile_detached`]).
    pub fn short_circuits(&self) -> u64 {
        self.inner().short_circuits
    }

    /// Records an analyzer short-circuit that happened outside the cache
    /// (e.g. a Cypher query proven empty before any pattern compiled), so
    /// `--verbose` statistics account for it.
    pub fn note_short_circuit(&self) {
        self.inner().short_circuits += 1;
    }

    /// Snapshot of the effectiveness counters (printed by the CLI under
    /// `--verbose` and served by the `STATS` endpoint).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            short_circuits: inner.short_circuits,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::generate::gnm_labeled;

    fn setup() -> (kgq_graph::LabeledGraph, PathExpr, PathExpr) {
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let e1 = parse_expr("(p+q)*", g.consts_mut()).unwrap();
        // A syntactic variant canonicalizing to the same expression.
        let e2 = parse_expr("((p+q)*)*", g.consts_mut()).unwrap();
        (g, e1, e2)
    }

    #[test]
    fn hit_skips_recompilation_and_shares_the_product() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let c2 = cache.get_or_compile(&view, 0, &e1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same Arc: the product was not rebuilt.
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn canonicalization_merges_equivalent_spellings() {
        let (g, e1, e2) = setup();
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        let c2 = cache.get_or_compile(&view, 0, &e2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn signature_keying_merges_beyond_rewrites() {
        // `a/(p+q)` vs `a/p + a/q`: no rewrite rule relates them, but
        // their minimal DFAs — and hence signatures — coincide.
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let d1 = parse_expr("a/(p+q)", g.consts_mut()).unwrap();
        let d2 = parse_expr("a/p + a/q", g.consts_mut()).unwrap();
        assert_ne!(simplify(&d1), simplify(&d2), "rewrites must not merge");
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &d1);
        let c2 = cache.get_or_compile(&view, 0, &d2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn from_env_reads_the_capacity_override() {
        // Temporarily set the env var; tests in this binary run in one
        // process, so restore it before returning.
        std::env::set_var(CACHE_CAP_ENV, "7");
        let cache = QueryCache::from_env();
        std::env::remove_var(CACHE_CAP_ENV);
        assert_eq!(cache.capacity(), 7);
        assert_eq!(QueryCache::from_env().capacity(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn from_env_clamps_zero_and_rejects_garbage() {
        // `0` is clamped to the smallest usable capacity…
        std::env::set_var(CACHE_CAP_ENV, "0");
        let cache = QueryCache::from_env();
        assert_eq!(cache.capacity(), 1);
        // …and garbage falls back to the default. Both paths emit a
        // one-time stderr warning (not capturable here; the CLI test
        // suite asserts the message text).
        std::env::set_var(CACHE_CAP_ENV, "lots");
        let cache = QueryCache::from_env();
        std::env::remove_var(CACHE_CAP_ENV);
        assert_eq!(cache.capacity(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn warm_results_are_identical_to_cold_evaluation() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let cold = Evaluator::new(&view, &e1).pairs();
        let cache = QueryCache::new();
        cache.get_or_compile(&view, 0, &e1);
        let warm = cache.get_or_compile(&view, 0, &e1).evaluator().pairs();
        assert_eq!(cold, warm);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn generation_bump_invalidates() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        let c2 = cache.get_or_compile(&view, 1, &e1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(!Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn cancelled_compile_then_retry_matches_cold_run() {
        use crate::govern::{Budget, CancelToken};
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        // Cold reference: a plain compile on an untouched cache.
        let cold = Evaluator::new(&view, &e1).pairs();
        let cache = QueryCache::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        let gov = Governor::with_cancel(&Budget::default(), cancel);
        let err = cache
            .get_or_compile_governed(&view, 0, &e1, &gov)
            .unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::Cancelled)));
        // The cancelled compile inserted nothing — no partial entry can
        // poison a later hit.
        assert!(cache.is_empty());
        // Retrying on the same cache is byte-identical to the cold run.
        let retry = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert_eq!(retry.evaluator().pairs(), cold);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // And the entry now behaves as a normal cached hit.
        let again = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert!(Arc::ptr_eq(again.product(), retry.product()));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn step_exhausted_compile_leaves_the_cache_clean() {
        use crate::govern::Budget;
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let gov = Governor::new(&Budget::default().with_max_steps(1));
        let cache = QueryCache::new();
        let err = cache
            .get_or_compile_governed(&view, 0, &e1, &gov)
            .unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::StepBudget)));
        assert!(cache.is_empty());
        let ok = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert_eq!(ok.evaluator().pairs(), Evaluator::new(&view, &e1).pairs());
    }

    #[test]
    fn analyzer_short_circuits_keep_slots_free() {
        use crate::analyze::analyze_expr;
        use kgq_graph::SchemaSummary;
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let dead = parse_expr("ghost/p", g.consts_mut()).unwrap();
        let live = parse_expr("p/q", g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();

        let dead_report = analyze_expr(&dead, &schema, None);
        assert!(dead_report.is_provably_empty());
        assert!(cache
            .get_or_compile_checked(&view, 0, &dead, &dead_report)
            .is_none());
        // Nothing compiled, nothing cached, the short-circuit counted.
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.short_circuits(), 1);

        let live_report = analyze_expr(&live, &schema, None);
        assert!(!live_report.denied());
        let c = cache
            .get_or_compile_checked(&view, 0, &live, &live_report)
            .expect("live query compiles");
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // The live entry behaves as a normal cached hit afterwards.
        let again = cache
            .get_or_compile_checked(&view, 0, &live, &live_report)
            .expect("cached");
        assert!(Arc::ptr_eq(c.product(), again.product()));
        assert_eq!(cache.hits(), 1);
        let stats = cache.stats();
        assert_eq!(stats.short_circuits, 1);
        assert!(stats.to_string().contains("short_circuits=1"));
    }

    #[test]
    fn deny_flagged_queries_compile_but_are_not_cached() {
        use crate::analyze::analyze_expr;
        use kgq_graph::SchemaSummary;
        let mut g = gnm_labeled(20, 80, &["v"], &["p", "q"], 3);
        let text = "(p+q)*/p".to_string() + &"/(p+q)".repeat(13);
        let blowup = parse_expr(&text, g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&blowup, &schema, None);
        assert!(report.denied() && !report.is_provably_empty());
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let compiled = cache
            .get_or_compile_checked(&view, 0, &blowup, &report)
            .expect("denied queries still compile");
        // Compiled and usable, but no slot occupied.
        assert!(!compiled.evaluator().pairs().is_empty());
        assert!(cache.is_empty());
        assert_eq!(cache.short_circuits(), 1);
    }

    #[test]
    fn detached_compiles_never_occupy_a_slot() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let cache = QueryCache::new();
        let detached = cache.compile_detached(&view, &e1);
        assert!(cache.is_empty());
        assert_eq!(cache.short_circuits(), 1);
        let governed = cache
            .compile_detached_governed(&view, &e1, &Governor::unlimited())
            .unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.short_circuits(), 2);
        // Both produce working, agreeing evaluators.
        assert_eq!(detached.evaluator().pairs(), governed.evaluator().pairs());
        // And a later cached compile is unaffected by the detached ones.
        let cached = cache.get_or_compile(&view, 0, &e1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cached.evaluator().pairs(), detached.evaluator().pairs());
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let (g, _, _) = setup();
        let mut g = g;
        let ea = parse_expr("p", g.consts_mut()).unwrap();
        let eb = parse_expr("q", g.consts_mut()).unwrap();
        let ec = parse_expr("p/q", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let cache = QueryCache::with_capacity(2);
        cache.get_or_compile(&view, 0, &ea);
        cache.get_or_compile(&view, 0, &eb);
        // Touch `ea` so `eb` becomes LRU, then insert a third entry.
        cache.get_or_compile(&view, 0, &ea);
        cache.get_or_compile(&view, 0, &ec);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // `ea` survived (hit), `eb` was evicted (miss).
        cache.get_or_compile(&view, 0, &ea);
        assert_eq!(cache.hits(), 2);
        cache.get_or_compile(&view, 0, &eb);
        assert_eq!(cache.misses(), 4);
    }

    /// The shared-cache concurrency contract (ISSUE 6 satellite):
    /// N threads hammering one cache across a generation bump never see
    /// a stale entry (no product compiled at generation 0 is ever
    /// returned for a generation-1 lookup), racing misses converge on a
    /// single shared entry, and every thread's results are byte-identical
    /// to a solo evaluation.
    #[test]
    fn concurrent_lookups_share_entries_and_respect_generation_bumps() {
        use std::collections::HashSet;
        let mut g = gnm_labeled(24, 90, &["a", "b"], &["p", "q"], 5);
        let exprs: Vec<PathExpr> = ["p", "q", "(p+q)*", "p/q", "q/p*"]
            .iter()
            .map(|t| parse_expr(t, g.consts_mut()).unwrap())
            .collect();
        let view = LabeledView::new(&g);
        let solo: Vec<_> = exprs
            .iter()
            .map(|e| Evaluator::new(&view, e).pairs())
            .collect();
        let cache = QueryCache::new();
        const THREADS: usize = 8;
        const ROUNDS: usize = 20;

        let run_generation = |generation: u64| -> HashSet<usize> {
            let mut ptrs = HashSet::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let cache = &cache;
                        let view = &view;
                        let exprs = &exprs;
                        let solo = &solo;
                        s.spawn(move || {
                            let mut seen = Vec::new();
                            for round in 0..ROUNDS {
                                let i = (t + round) % exprs.len();
                                let c = cache.get_or_compile(view, generation, &exprs[i]);
                                assert_eq!(
                                    c.evaluator().pairs(),
                                    solo[i],
                                    "thread {t} expr {i} diverged from the solo run"
                                );
                                seen.push(Arc::as_ptr(c.product()) as usize);
                            }
                            seen
                        })
                    })
                    .collect();
                for h in handles {
                    ptrs.extend(h.join().expect("no worker panic"));
                }
            });
            ptrs
        };

        let gen0 = run_generation(0);
        // Racing misses converged: one product per expression survives
        // as the shared entry (transient race losers may appear in the
        // observed pointer set, but the *cache* holds exactly one entry
        // per signature).
        assert_eq!(cache.len(), exprs.len());

        // "Bump": all clients move to generation 1, as after a store
        // mutation. No generation-0 product may ever be served again.
        let gen1 = run_generation(1);
        let survivors: HashSet<usize> = gen1.intersection(&gen0).copied().collect();
        assert!(
            survivors.is_empty(),
            "stale products served after the generation bump: {survivors:?}"
        );
        assert_eq!(cache.len(), 2 * exprs.len());
    }

    /// Concurrent governed compiles where some clients' budgets trip:
    /// tripped compiles leave the map untouched and other clients still
    /// converge on healthy shared entries.
    #[test]
    fn concurrent_governed_misses_with_trips_leave_healthy_entries() {
        use crate::govern::Budget;
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let solo = Evaluator::new(&view, &e1).pairs();
        let cache = QueryCache::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                let view = &view;
                let e1 = &e1;
                let solo = &solo;
                s.spawn(move || {
                    let budget = if t % 2 == 0 {
                        Budget::default().with_max_steps(1) // trips during compile
                    } else {
                        Budget::default()
                    };
                    let gov = Governor::new(&budget);
                    match cache.get_or_compile_governed(view, 0, e1, &gov) {
                        Ok(c) => assert_eq!(&c.evaluator().pairs(), solo),
                        Err(EvalError::Interrupted(Interrupt::StepBudget)) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                });
            }
        });
        // The tripped compiles never inserted; the successful ones share
        // one healthy entry.
        assert_eq!(cache.len(), 1);
        let c = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert_eq!(c.evaluator().pairs(), solo);
    }
}
