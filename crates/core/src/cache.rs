//! Compiled-query cache.
//!
//! Building the graph × NFA [`Product`] dominates the cost of evaluating
//! a path expression; the same expression is typically issued many times
//! against the same (or an unchanged) graph. [`QueryCache`] memoizes the
//! compiled form — NFA plus product — keyed by the [`NfaSignature`] of
//! the *minimized* automaton ([`Nfa::compile_min`], applied after
//! [`crate::simplify::simplify`]) together with a **generation stamp** of
//! the graph. Minimal DFAs are canonical per language, so not just
//! rewrite-equal spellings like `(r*)*` and `r*` but any two expressions
//! denoting the same path language — `a/(b+c)` and `a/b + a/c`, say —
//! share one entry; and any mutation of the graph (which bumps its
//! generation) invalidates every entry compiled against the old contents.
//!
//! Eviction is LRU over a logical tick counter; capacity is configurable
//! (`QueryCache::with_capacity`, default 64; `QueryCache::from_env` reads
//! the `KGQ_CACHE_CAP` environment variable). A cache is meant to be
//! bound to one graph's history: generation stamps are strictly
//! increasing per mutation *within one graph*, not globally unique across
//! graphs.

use crate::analyze::Report;
use crate::automata::{MinimizedNfa, Nfa, NfaSignature};
use crate::eval::Evaluator;
use crate::expr::PathExpr;
use crate::govern::{fault_point, isolate, EvalError, Governor, Interrupt};
use crate::model::PathGraph;
use crate::product::Product;
use crate::simplify::simplify;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of compiled queries retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Environment variable overriding the cache capacity.
pub const CACHE_CAP_ENV: &str = "KGQ_CACHE_CAP";

/// A query compiled against a specific graph generation: the canonical
/// expression, its NFA, and the (shared) graph × NFA product.
pub struct CompiledQuery {
    expr: PathExpr,
    nfa: Nfa,
    product: Arc<Product>,
}

impl std::fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("expr", &self.expr)
            .field("product_states", &self.product.state_count())
            .finish_non_exhaustive()
    }
}

impl CompiledQuery {
    fn compile<G: PathGraph>(g: &G, expr: PathExpr, min: MinimizedNfa) -> CompiledQuery {
        let nfa = min.nfa;
        let product = Arc::new(Product::build(g, &nfa));
        CompiledQuery { expr, nfa, product }
    }

    fn compile_governed<G: PathGraph>(
        g: &G,
        expr: PathExpr,
        min: MinimizedNfa,
        gov: &Governor,
    ) -> Result<CompiledQuery, Interrupt> {
        let nfa = min.nfa;
        let product = Arc::new(Product::build_governed(g, &nfa, gov)?);
        Ok(CompiledQuery { expr, nfa, product })
    }

    /// The canonicalized expression this entry was compiled from.
    pub fn expr(&self) -> &PathExpr {
        &self.expr
    }

    /// The minimized automaton of the canonical expression.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The shared graph × NFA product.
    pub fn product(&self) -> &Arc<Product> {
        &self.product
    }

    /// An evaluator over the cached product (no rebuild).
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::from_product(Arc::clone(&self.product))
    }
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CacheKey {
    generation: u64,
    sig: NfaSignature,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Lookups the static analyzer resolved without a cache slot: a
    /// provably-empty query answered with no compilation at all, or a
    /// `Deny`-flagged query compiled but deliberately not inserted.
    pub short_circuits: u64,
    /// Compiled queries currently held.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} short_circuits={} entries={}/{}",
            self.hits, self.misses, self.evictions, self.short_circuits, self.len, self.capacity
        )
    }
}

struct Entry {
    compiled: Arc<CompiledQuery>,
    last_used: u64,
}

/// LRU cache of [`CompiledQuery`] entries keyed by
/// `(graph generation, canonicalized expression)`.
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    short_circuits: u64,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl QueryCache {
    /// A cache retaining [`DEFAULT_CACHE_CAPACITY`] compiled queries.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// A cache retaining at most `capacity` compiled queries
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            short_circuits: 0,
        }
    }

    /// A cache sized by the `KGQ_CACHE_CAP` environment variable, falling
    /// back to [`DEFAULT_CACHE_CAPACITY`] when unset or unparseable.
    pub fn from_env() -> QueryCache {
        let capacity = std::env::var(CACHE_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CACHE_CAPACITY);
        QueryCache::with_capacity(capacity)
    }

    /// Returns the compiled form of `expr` against `g` at `generation`,
    /// compiling (and caching) it on a miss. The expression is
    /// canonicalized with [`simplify`] and then keyed by its minimal
    /// automaton's signature, so every spelling of one path language
    /// shares one entry.
    pub fn get_or_compile<G: PathGraph>(
        &mut self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
    ) -> Arc<CompiledQuery> {
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        let key = CacheKey {
            generation,
            sig: min.signature.clone(),
        };
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = tick;
            self.hits += 1;
            return Arc::clone(&entry.compiled);
        }
        self.misses += 1;
        let compiled = Arc::new(CompiledQuery::compile(g, expr, min));
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        self.map.insert(
            key,
            Entry {
                compiled: Arc::clone(&compiled),
                last_used: tick,
            },
        );
        compiled
    }

    /// Governed [`QueryCache::get_or_compile`]: compilation runs under
    /// `gov`'s budget with panics isolated, and is **panic- and
    /// cancel-safe with respect to the cache** — compilation completes
    /// *before* anything is inserted, so an interrupted, cancelled, or
    /// panicking compile leaves the map untouched (no partial entry to
    /// poison later hits); only the hit/miss counters record the attempt.
    pub fn get_or_compile_governed<G: PathGraph>(
        &mut self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
        gov: &Governor,
    ) -> Result<Arc<CompiledQuery>, EvalError> {
        let expr = simplify(expr);
        let min = Nfa::compile_min(&expr);
        let key = CacheKey {
            generation,
            sig: min.signature.clone(),
        };
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = tick;
            self.hits += 1;
            return Ok(Arc::clone(&entry.compiled));
        }
        self.misses += 1;
        let compiled = Arc::new(isolate(|| {
            fault_point!("cache::compile");
            CompiledQuery::compile_governed(g, expr, min, gov)
        })?);
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        self.map.insert(
            key,
            Entry {
                compiled: Arc::clone(&compiled),
                last_used: tick,
            },
        );
        Ok(compiled)
    }

    /// Analyzer-aware [`QueryCache::get_or_compile`]: consults a static
    /// analysis [`Report`] first so doomed queries never occupy a slot.
    ///
    /// * Provably-empty queries return `None` without compiling anything
    ///   (the caller answers with an empty result instantly).
    /// * `Deny`-flagged queries (e.g. determinization blowup) compile but
    ///   are **not** inserted — an oversized product must not evict
    ///   healthy entries.
    /// * Everything else goes through [`QueryCache::get_or_compile`].
    ///
    /// The first two paths increment the `short_circuits` statistic
    /// reported by [`QueryCache::stats`] (and by the CLI under
    /// `--verbose`).
    pub fn get_or_compile_checked<G: PathGraph>(
        &mut self,
        g: &G,
        generation: u64,
        expr: &PathExpr,
        report: &Report,
    ) -> Option<Arc<CompiledQuery>> {
        if report.is_provably_empty() {
            self.short_circuits += 1;
            return None;
        }
        if report.denied() {
            self.short_circuits += 1;
            let expr = simplify(expr);
            let min = Nfa::compile_min(&expr);
            return Some(Arc::new(CompiledQuery::compile(g, expr, min)));
        }
        Some(self.get_or_compile(g, generation, expr))
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            self.map.remove(&key);
            self.evictions += 1;
        }
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of compiled queries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required compilation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lookups resolved by the static analyzer without occupying a cache
    /// slot (see [`QueryCache::get_or_compile_checked`]).
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits
    }

    /// Records an analyzer short-circuit that happened outside the cache
    /// (e.g. a Cypher query proven empty before any pattern compiled), so
    /// `--verbose` statistics account for it.
    pub fn note_short_circuit(&mut self) {
        self.short_circuits += 1;
    }

    /// Snapshot of the effectiveness counters (printed by the CLI under
    /// `--verbose`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            short_circuits: self.short_circuits,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::generate::gnm_labeled;

    fn setup() -> (kgq_graph::LabeledGraph, PathExpr, PathExpr) {
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let e1 = parse_expr("(p+q)*", g.consts_mut()).unwrap();
        // A syntactic variant canonicalizing to the same expression.
        let e2 = parse_expr("((p+q)*)*", g.consts_mut()).unwrap();
        (g, e1, e2)
    }

    #[test]
    fn hit_skips_recompilation_and_shares_the_product() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let c2 = cache.get_or_compile(&view, 0, &e1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same Arc: the product was not rebuilt.
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn canonicalization_merges_equivalent_spellings() {
        let (g, e1, e2) = setup();
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        let c2 = cache.get_or_compile(&view, 0, &e2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn signature_keying_merges_beyond_rewrites() {
        // `a/(p+q)` vs `a/p + a/q`: no rewrite rule relates them, but
        // their minimal DFAs — and hence signatures — coincide.
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let d1 = parse_expr("a/(p+q)", g.consts_mut()).unwrap();
        let d2 = parse_expr("a/p + a/q", g.consts_mut()).unwrap();
        assert_ne!(simplify(&d1), simplify(&d2), "rewrites must not merge");
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &d1);
        let c2 = cache.get_or_compile(&view, 0, &d2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(c1.product(), c2.product()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
    }

    #[test]
    fn from_env_reads_the_capacity_override() {
        // Temporarily set the env var; tests in this binary run in one
        // process, so restore it before returning.
        std::env::set_var(CACHE_CAP_ENV, "7");
        let cache = QueryCache::from_env();
        std::env::remove_var(CACHE_CAP_ENV);
        assert_eq!(cache.capacity(), 7);
        assert_eq!(QueryCache::from_env().capacity(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn warm_results_are_identical_to_cold_evaluation() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let cold = Evaluator::new(&view, &e1).pairs();
        let mut cache = QueryCache::new();
        cache.get_or_compile(&view, 0, &e1);
        let warm = cache.get_or_compile(&view, 0, &e1).evaluator().pairs();
        assert_eq!(cold, warm);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn generation_bump_invalidates() {
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();
        let c1 = cache.get_or_compile(&view, 0, &e1);
        let c2 = cache.get_or_compile(&view, 1, &e1);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(!Arc::ptr_eq(c1.product(), c2.product()));
    }

    #[test]
    fn cancelled_compile_then_retry_matches_cold_run() {
        use crate::govern::{Budget, CancelToken};
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        // Cold reference: a plain compile on an untouched cache.
        let cold = Evaluator::new(&view, &e1).pairs();
        let mut cache = QueryCache::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        let gov = Governor::with_cancel(&Budget::default(), cancel);
        let err = cache
            .get_or_compile_governed(&view, 0, &e1, &gov)
            .unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::Cancelled)));
        // The cancelled compile inserted nothing — no partial entry can
        // poison a later hit.
        assert!(cache.is_empty());
        // Retrying on the same cache is byte-identical to the cold run.
        let retry = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert_eq!(retry.evaluator().pairs(), cold);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // And the entry now behaves as a normal cached hit.
        let again = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert!(Arc::ptr_eq(again.product(), retry.product()));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn step_exhausted_compile_leaves_the_cache_clean() {
        use crate::govern::Budget;
        let (g, e1, _) = setup();
        let view = LabeledView::new(&g);
        let gov = Governor::new(&Budget::default().with_max_steps(1));
        let mut cache = QueryCache::new();
        let err = cache
            .get_or_compile_governed(&view, 0, &e1, &gov)
            .unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::StepBudget)));
        assert!(cache.is_empty());
        let ok = cache
            .get_or_compile_governed(&view, 0, &e1, &Governor::unlimited())
            .unwrap();
        assert_eq!(ok.evaluator().pairs(), Evaluator::new(&view, &e1).pairs());
    }

    #[test]
    fn analyzer_short_circuits_keep_slots_free() {
        use crate::analyze::analyze_expr;
        use kgq_graph::SchemaSummary;
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 3);
        let dead = parse_expr("ghost/p", g.consts_mut()).unwrap();
        let live = parse_expr("p/q", g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();

        let dead_report = analyze_expr(&dead, &schema, None);
        assert!(dead_report.is_provably_empty());
        assert!(cache
            .get_or_compile_checked(&view, 0, &dead, &dead_report)
            .is_none());
        // Nothing compiled, nothing cached, the short-circuit counted.
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.short_circuits(), 1);

        let live_report = analyze_expr(&live, &schema, None);
        assert!(!live_report.denied());
        let c = cache
            .get_or_compile_checked(&view, 0, &live, &live_report)
            .expect("live query compiles");
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // The live entry behaves as a normal cached hit afterwards.
        let again = cache
            .get_or_compile_checked(&view, 0, &live, &live_report)
            .expect("cached");
        assert!(Arc::ptr_eq(c.product(), again.product()));
        assert_eq!(cache.hits(), 1);
        let stats = cache.stats();
        assert_eq!(stats.short_circuits, 1);
        assert!(stats.to_string().contains("short_circuits=1"));
    }

    #[test]
    fn deny_flagged_queries_compile_but_are_not_cached() {
        use crate::analyze::analyze_expr;
        use kgq_graph::SchemaSummary;
        let mut g = gnm_labeled(20, 80, &["v"], &["p", "q"], 3);
        let text = "(p+q)*/p".to_string() + &"/(p+q)".repeat(13);
        let blowup = parse_expr(&text, g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&blowup, &schema, None);
        assert!(report.denied() && !report.is_provably_empty());
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::new();
        let compiled = cache
            .get_or_compile_checked(&view, 0, &blowup, &report)
            .expect("denied queries still compile");
        // Compiled and usable, but no slot occupied.
        assert!(!compiled.evaluator().pairs().is_empty());
        assert!(cache.is_empty());
        assert_eq!(cache.short_circuits(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let (g, _, _) = setup();
        let mut g = g;
        let ea = parse_expr("p", g.consts_mut()).unwrap();
        let eb = parse_expr("q", g.consts_mut()).unwrap();
        let ec = parse_expr("p/q", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let mut cache = QueryCache::with_capacity(2);
        cache.get_or_compile(&view, 0, &ea);
        cache.get_or_compile(&view, 0, &eb);
        // Touch `ea` so `eb` becomes LRU, then insert a third entry.
        cache.get_or_compile(&view, 0, &ea);
        cache.get_or_compile(&view, 0, &ec);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // `ea` survived (hit), `eb` was evicted (miss).
        cache.get_or_compile(&view, 0, &ea);
        assert_eq!(cache.hits(), 2);
        cache.get_or_compile(&view, 0, &eb);
        assert_eq!(cache.misses(), 4);
    }
}
