//! Polynomial-delay enumeration of paths (§4.1).
//!
//! "The computation of the answers is divided into a preprocessing phase,
//! where a data structure is built to accelerate the process of computing
//! answers, and then in an enumeration phase, the answers are produced
//! with a polynomial-time delay between them."
//!
//! Preprocessing builds the deterministic product and a *viability table*
//! `viable[j][s]` — can an accepting state be reached from det state `s`
//! in exactly `j` edge symbols? The enumeration phase is a lexicographic
//! DFS that only ever branches into viable subtrees, so every internal
//! step makes progress toward the next answer: the delay between
//! consecutive answers is `O(k · b)` where `b` bounds the branching work
//! at a det state — polynomial, independent of the number of answers
//! already produced. Determinism of the product guarantees each *path* is
//! produced exactly once.

//!
//! Under a [`crate::govern::Governor`], enumeration degrades gracefully:
//! [`enumerate_paths_governed`] returns a truncated lexicographic prefix
//! plus an opaque continuation [`Cursor`] that
//! [`enumerate_paths_resumed`] replays from — repeated resumption yields
//! exactly the full result set, each answer exactly once.

use crate::automata::Nfa;
use crate::expr::PathExpr;
use crate::govern::{fault_point, EvalError, Governed, Governor, Interrupt, Ticker};
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::DetProduct;
use kgq_graph::{EdgeId, NodeId};
use std::fmt;
use std::str::FromStr;

/// Iterator over all paths in `⟦r⟧` of length exactly `k`, in
/// lexicographic `(start node, edge sequence)` order.
pub struct PathEnumerator {
    det: DetProduct,
    k: usize,
    /// `viable[j][s]`: accepting state reachable from `s` in exactly `j`
    /// symbols.
    viable: Vec<Vec<bool>>,
    /// DFS stack: (det state, next transition index to try).
    stack: Vec<(u32, usize)>,
    /// Edges chosen so far (parallel to stack minus the root entry).
    word: Vec<EdgeId>,
    /// Remaining source nodes to process (in increasing order).
    sources: std::vec::IntoIter<NodeId>,
    current_start: Option<NodeId>,
    /// Set when a fresh root has been pushed and, for k = 0, may itself
    /// be an answer.
    emit_root: bool,
    /// Number of graph nodes (source universe), kept for [`Self::seek_after`].
    node_count: usize,
}

impl PathEnumerator {
    /// Preprocessing: builds the det product and viability table.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> PathEnumerator {
        let nfa = Nfa::compile(expr);
        let det = DetProduct::build(g, &nfa);
        Self::from_det(det, k, g.node_count())
    }

    /// Preprocessing from an existing det product.
    pub fn from_det(det: DetProduct, k: usize, node_count: usize) -> PathEnumerator {
        let m = det.state_count();
        let mut viable = vec![vec![false; m]; k + 1];
        for s in 0..m {
            viable[0][s] = det.is_accepting(s as u32);
        }
        for j in 1..=k {
            for s in 0..m {
                viable[j][s] = det
                    .out(s as u32)
                    .iter()
                    .any(|&(_, s2)| viable[j - 1][s2 as usize]);
            }
        }
        let sources: Vec<NodeId> = (0..node_count as u32).map(NodeId).collect();
        PathEnumerator {
            det,
            k,
            viable,
            stack: Vec::new(),
            word: Vec::new(),
            sources: sources.into_iter(),
            current_start: None,
            emit_root: false,
            node_count,
        }
    }

    /// Repositions the enumerator to the state it had immediately after
    /// emitting `last`, so the next answer is `last`'s lexicographic
    /// successor. This is how a continuation [`Cursor`] resumes: the DFS
    /// stack is reconstructed by replaying `last`'s unique run through
    /// the deterministic product (`O(k log b)`), not by re-enumerating
    /// the prefix.
    pub fn seek_after(&mut self, last: &Path) -> Result<(), CursorError> {
        if last.start.index() >= self.node_count {
            return Err(CursorError::InvalidStart);
        }
        self.stack.clear();
        self.word.clear();
        self.emit_root = false;
        // Sources after `last.start` remain to be visited.
        let rest: Vec<NodeId> = (last.start.0 + 1..self.node_count as u32)
            .map(NodeId)
            .collect();
        self.sources = rest.into_iter();
        if self.k == 0 {
            // A k = 0 emission clears the stack; nothing to rebuild.
            if !last.edges.is_empty() {
                return Err(CursorError::LengthMismatch);
            }
            self.current_start = None;
            return Ok(());
        }
        if last.edges.len() != self.k {
            return Err(CursorError::LengthMismatch);
        }
        let mut s = match self.det.initial(last.start) {
            Some(s) => s,
            None => return Err(CursorError::InvalidStart),
        };
        // Post-emission invariant of `advance`: one stack level per
        // consumed edge, each storing the index *after* the transition
        // taken (the emission already popped the final level), and the
        // word holding all but the last edge.
        for &e in &last.edges {
            let list = self.det.out(s);
            let i = list
                .binary_search_by_key(&e.0, |&(ee, _)| ee.0)
                .map_err(|_| CursorError::InvalidEdge)?;
            self.stack.push((s, i + 1));
            s = list[i].1;
        }
        self.word.extend_from_slice(&last.edges[..self.k - 1]);
        self.current_start = Some(last.start);
        Ok(())
    }

    fn push_root(&mut self) -> bool {
        loop {
            let src = match self.sources.next() {
                Some(s) => s,
                None => return false,
            };
            if let Some(s0) = self.det.initial(src) {
                if self.viable[self.k][s0 as usize] {
                    self.current_start = Some(src);
                    self.stack.clear();
                    self.word.clear();
                    self.stack.push((s0, 0));
                    self.emit_root = true;
                    return true;
                }
            }
        }
    }
}

impl PathEnumerator {
    /// One enumeration step under a [`Ticker`]: produces the next
    /// answer, `None` when exhausted, or the interrupt that stopped it.
    /// The enumerator state stays consistent on interrupt, so a resumed
    /// call continues exactly where this one left off.
    fn advance(&mut self, ticker: &mut Ticker<'_>) -> Result<Option<Path>, Interrupt> {
        loop {
            ticker.tick()?;
            if self.stack.is_empty() && !self.push_root() {
                return Ok(None);
            }
            // Emit the k = 0 answer at a fresh root.
            if self.emit_root {
                self.emit_root = false;
                if self.k == 0 {
                    let start = self.current_start.expect("root set");
                    self.stack.clear();
                    return Ok(Some(Path::trivial(start)));
                }
            }
            let depth = self.stack.len() - 1; // edges consumed so far
            let (state, next_idx) = *self.stack.last().expect("non-empty");
            let remaining = self.k - depth;
            debug_assert!(remaining >= 1);
            let mut idx = next_idx;
            let transitions = self.det.out(state);
            let mut advanced = false;
            while idx < transitions.len() {
                let (e, s2) = transitions[idx];
                idx += 1;
                if self.viable[remaining - 1][s2 as usize] {
                    self.stack.last_mut().expect("non-empty").1 = idx;
                    self.word.push(e);
                    self.stack.push((s2, 0));
                    if remaining == 1 {
                        // Full-length answer reached.
                        let path = Path {
                            start: self.current_start.expect("root set"),
                            edges: self.word.clone(),
                        };
                        // Backtrack one level so the next call continues.
                        self.stack.pop();
                        self.word.pop();
                        return Ok(Some(path));
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.stack.last_mut().expect("non-empty").1 = idx;
                if idx >= transitions.len() {
                    self.stack.pop();
                    self.word.pop();
                }
            }
        }
    }
}

impl Iterator for PathEnumerator {
    type Item = Path;

    fn next(&mut self) -> Option<Path> {
        // A no-op ticker never interrupts.
        match self.advance(&mut Ticker::none()) {
            Ok(p) => p,
            Err(i) => unreachable!("ungoverned enumeration interrupted: {i}"),
        }
    }
}

/// Opaque continuation token for a truncated enumeration.
///
/// Internally it is the last answer emitted (enumeration order is
/// deterministic, so "everything after this path" is well defined), or
/// the very beginning when truncation happened before the first answer.
/// The string form (`Display`/`FromStr`) round-trips for CLI use; treat
/// it as opaque — it is validated, not trusted, on resume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cursor {
    /// The enumeration length `k` this cursor belongs to.
    pub k: usize,
    /// The last emitted answer, or `None` for "start from the top".
    pub after: Option<Path>,
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.after {
            None => write!(f, "{}:-", self.k),
            Some(p) => {
                write!(f, "{}:{}", self.k, p.start.0)?;
                for e in &p.edges {
                    write!(f, ".{}", e.0)?;
                }
                Ok(())
            }
        }
    }
}

/// Errors from decoding or replaying a [`Cursor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CursorError {
    /// The cursor string is not in the `k:start.e1.e2…` form.
    BadFormat,
    /// The start node does not exist or starts no matching path.
    InvalidStart,
    /// An edge in the cursor does not continue the unique det-product run.
    InvalidEdge,
    /// The edge sequence length does not match the cursor's `k`.
    LengthMismatch,
}

impl fmt::Display for CursorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CursorError::BadFormat => "malformed cursor string",
            CursorError::InvalidStart => "cursor start node is not valid for this query",
            CursorError::InvalidEdge => "cursor edges do not trace a matching path",
            CursorError::LengthMismatch => "cursor length does not match the query length",
        })
    }
}

impl std::error::Error for CursorError {}

impl FromStr for Cursor {
    type Err = CursorError;

    fn from_str(s: &str) -> Result<Cursor, CursorError> {
        let (k_str, rest) = s.split_once(':').ok_or(CursorError::BadFormat)?;
        let k: usize = k_str.parse().map_err(|_| CursorError::BadFormat)?;
        if rest == "-" {
            return Ok(Cursor { k, after: None });
        }
        let mut parts = rest.split('.');
        let start: u32 = parts
            .next()
            .ok_or(CursorError::BadFormat)?
            .parse()
            .map_err(|_| CursorError::BadFormat)?;
        let mut edges = Vec::new();
        for part in parts {
            edges.push(EdgeId(part.parse().map_err(|_| CursorError::BadFormat)?));
        }
        Ok(Cursor {
            k,
            after: Some(Path {
                start: NodeId(start),
                edges,
            }),
        })
    }
}

/// One page of a governed enumeration: a lexicographic prefix of the
/// answer set, plus a continuation cursor when truncated.
#[derive(Clone, Debug, PartialEq)]
pub struct EnumerationPage {
    /// The answers produced before the budget ran out (all of them when
    /// the surrounding [`Governed`] is complete).
    pub paths: Vec<Path>,
    /// Present exactly when truncated: resume from here to continue.
    pub cursor: Option<Cursor>,
}

/// Convenience: materializes all paths of length exactly `k`.
pub fn enumerate_paths<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Vec<Path> {
    PathEnumerator::new(g, expr, k).collect()
}

/// Governed enumeration: produces answers until done or the budget runs
/// out, in which case the page carries the prefix produced so far and a
/// [`Cursor`] that [`enumerate_paths_resumed`] continues from.
pub fn enumerate_paths_governed<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    gov: &Governor,
) -> Result<Governed<EnumerationPage>, EvalError> {
    crate::govern::isolate_eval(|| {
        let mut it = build_enumerator_governed(g, expr, k, gov)?;
        drain_governed(&mut it, k, gov)
    })
}

/// Continues a truncated enumeration from `cursor`. The page produced by
/// chaining [`enumerate_paths_governed`] and repeated resumption is
/// exactly the full answer set, each answer once, in order.
pub fn enumerate_paths_resumed<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    cursor: &Cursor,
    gov: &Governor,
) -> Result<Governed<EnumerationPage>, EvalError> {
    crate::govern::isolate_eval(|| {
        let mut it = build_enumerator_governed(g, expr, cursor.k, gov)?;
        if let Some(last) = &cursor.after {
            it.seek_after(last)
                .map_err(|e| EvalError::InvalidInput(format!("continuation cursor: {e}")))?;
        }
        drain_governed(&mut it, cursor.k, gov)
    })
}

/// Governed preprocessing: det product build plus the viability table,
/// both charged against the budget.
fn build_enumerator_governed<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    gov: &Governor,
) -> Result<PathEnumerator, EvalError> {
    fault_point!("enumerate::build");
    let nfa = Nfa::compile(expr);
    let det = DetProduct::build_governed(g, &nfa, gov)?;
    gov.charge_memory(((k + 1) * det.state_count()) as u64)
        .map_err(EvalError::Interrupted)?;
    Ok(PathEnumerator::from_det(det, k, g.node_count()))
}

fn drain_governed(
    it: &mut PathEnumerator,
    k: usize,
    gov: &Governor,
) -> Result<Governed<EnumerationPage>, EvalError> {
    let mut ticker = Ticker::new(gov);
    let mut paths: Vec<Path> = Vec::new();
    loop {
        match it.advance(&mut ticker) {
            Ok(Some(p)) => {
                if let Err(why) = gov.charge_results(1) {
                    // `p` is *not* included, so the cursor points at the
                    // last included answer and resumption replays `p`.
                    return Ok(truncated(paths, k, why));
                }
                paths.push(p);
            }
            Ok(None) => {
                return Ok(Governed::complete(EnumerationPage {
                    paths,
                    cursor: None,
                }))
            }
            Err(why) => return Ok(truncated(paths, k, why)),
        }
    }
}

fn truncated(paths: Vec<Path>, k: usize, why: Interrupt) -> Governed<EnumerationPage> {
    let cursor = Cursor {
        k,
        after: paths.last().cloned(),
    };
    Governed::partial(
        EnumerationPage {
            paths,
            cursor: Some(cursor),
        },
        why,
    )
}

/// Convenience: all paths of length `0..=k` (concatenated enumerations).
pub fn enumerate_paths_upto<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Vec<Path> {
    let nfa = Nfa::compile(expr);
    let det = DetProduct::build(g, &nfa);
    let mut all = Vec::new();
    for j in 0..=k {
        all.extend(PathEnumerator::from_det(det.clone(), j, g.node_count()));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_paths;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use crate::product::Product;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{gnm_labeled, path_graph};
    use std::collections::HashSet;

    #[test]
    fn enumeration_matches_exact_count() {
        for seed in 0..3 {
            let mut g = gnm_labeled(10, 25, &["a", "b"], &["p", "q"], seed);
            for expr_text in ["(p+q)*", "p/q^-", "?a/(p)*"] {
                let e = parse_expr(expr_text, g.consts_mut()).unwrap();
                let view = LabeledView::new(&g);
                for k in 0..=4 {
                    let paths = enumerate_paths(&view, &e, k);
                    let count = count_paths(&view, &e, k).unwrap();
                    assert_eq!(paths.len() as u128, count, "{expr_text} k={k}");
                    // All distinct.
                    let set: HashSet<_> = paths.iter().cloned().collect();
                    assert_eq!(set.len(), paths.len());
                }
            }
        }
    }

    #[test]
    fn all_enumerated_paths_are_answers() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let nfa = crate::automata::Nfa::compile(&e);
        let prod = Product::build(&view, &nfa);
        let paths = enumerate_paths(&view, &e, 2);
        assert_eq!(paths.len(), 2); // n1 and n4 each share bus n3 with n2
        for p in &paths {
            assert!(prod.accepts(p.start, &p.edges));
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn lexicographic_order() {
        let mut g = gnm_labeled(8, 20, &["a"], &["p"], 3);
        let e = parse_expr("(p)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let paths = enumerate_paths(&view, &e, 3);
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn zero_length_enumeration() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let paths = enumerate_paths(&view, &e, 0);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn upto_concatenates_lengths() {
        let mut g = path_graph(5, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let all = enumerate_paths_upto(&view, &e, 4);
        // 5 + 4 + 3 + 2 + 1
        assert_eq!(all.len(), 15);
    }

    #[test]
    fn empty_answer_set_terminates_immediately() {
        let mut g = path_graph(3, "v", "next");
        let e = parse_expr("ghost", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let mut it = PathEnumerator::new(&view, &e, 2);
        assert!(it.next().is_none());
    }
}
