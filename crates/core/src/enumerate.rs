//! Polynomial-delay enumeration of paths (§4.1).
//!
//! "The computation of the answers is divided into a preprocessing phase,
//! where a data structure is built to accelerate the process of computing
//! answers, and then in an enumeration phase, the answers are produced
//! with a polynomial-time delay between them."
//!
//! Preprocessing builds the deterministic product and a *viability table*
//! `viable[j][s]` — can an accepting state be reached from det state `s`
//! in exactly `j` edge symbols? The enumeration phase is a lexicographic
//! DFS that only ever branches into viable subtrees, so every internal
//! step makes progress toward the next answer: the delay between
//! consecutive answers is `O(k · b)` where `b` bounds the branching work
//! at a det state — polynomial, independent of the number of answers
//! already produced. Determinism of the product guarantees each *path* is
//! produced exactly once.

use crate::automata::Nfa;
use crate::expr::PathExpr;
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::DetProduct;
use kgq_graph::{EdgeId, NodeId};

/// Iterator over all paths in `⟦r⟧` of length exactly `k`, in
/// lexicographic `(start node, edge sequence)` order.
pub struct PathEnumerator {
    det: DetProduct,
    k: usize,
    /// `viable[j][s]`: accepting state reachable from `s` in exactly `j`
    /// symbols.
    viable: Vec<Vec<bool>>,
    /// DFS stack: (det state, next transition index to try).
    stack: Vec<(u32, usize)>,
    /// Edges chosen so far (parallel to stack minus the root entry).
    word: Vec<EdgeId>,
    /// Remaining source nodes to process (in increasing order).
    sources: std::vec::IntoIter<NodeId>,
    current_start: Option<NodeId>,
    /// Set when a fresh root has been pushed and, for k = 0, may itself
    /// be an answer.
    emit_root: bool,
}

impl PathEnumerator {
    /// Preprocessing: builds the det product and viability table.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> PathEnumerator {
        let nfa = Nfa::compile(expr);
        let det = DetProduct::build(g, &nfa);
        Self::from_det(det, k, g.node_count())
    }

    /// Preprocessing from an existing det product.
    pub fn from_det(det: DetProduct, k: usize, node_count: usize) -> PathEnumerator {
        let m = det.state_count();
        let mut viable = vec![vec![false; m]; k + 1];
        for s in 0..m {
            viable[0][s] = det.is_accepting(s as u32);
        }
        for j in 1..=k {
            for s in 0..m {
                viable[j][s] = det
                    .out(s as u32)
                    .iter()
                    .any(|&(_, s2)| viable[j - 1][s2 as usize]);
            }
        }
        let sources: Vec<NodeId> = (0..node_count as u32).map(NodeId).collect();
        PathEnumerator {
            det,
            k,
            viable,
            stack: Vec::new(),
            word: Vec::new(),
            sources: sources.into_iter(),
            current_start: None,
            emit_root: false,
        }
    }

    fn push_root(&mut self) -> bool {
        loop {
            let src = match self.sources.next() {
                Some(s) => s,
                None => return false,
            };
            if let Some(s0) = self.det.initial(src) {
                if self.viable[self.k][s0 as usize] {
                    self.current_start = Some(src);
                    self.stack.clear();
                    self.word.clear();
                    self.stack.push((s0, 0));
                    self.emit_root = true;
                    return true;
                }
            }
        }
    }
}

impl Iterator for PathEnumerator {
    type Item = Path;

    fn next(&mut self) -> Option<Path> {
        loop {
            if self.stack.is_empty() && !self.push_root() {
                return None;
            }
            // Emit the k = 0 answer at a fresh root.
            if self.emit_root {
                self.emit_root = false;
                if self.k == 0 {
                    let start = self.current_start.expect("root set");
                    self.stack.clear();
                    return Some(Path::trivial(start));
                }
            }
            let depth = self.stack.len() - 1; // edges consumed so far
            let (state, next_idx) = *self.stack.last().expect("non-empty");
            let remaining = self.k - depth;
            debug_assert!(remaining >= 1);
            let mut idx = next_idx;
            let transitions = self.det.out(state);
            let mut advanced = false;
            while idx < transitions.len() {
                let (e, s2) = transitions[idx];
                idx += 1;
                if self.viable[remaining - 1][s2 as usize] {
                    self.stack.last_mut().expect("non-empty").1 = idx;
                    self.word.push(e);
                    self.stack.push((s2, 0));
                    if remaining == 1 {
                        // Full-length answer reached.
                        let path = Path {
                            start: self.current_start.expect("root set"),
                            edges: self.word.clone(),
                        };
                        // Backtrack one level so the next call continues.
                        self.stack.pop();
                        self.word.pop();
                        return Some(path);
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                self.stack.last_mut().expect("non-empty").1 = idx;
                if idx >= transitions.len() {
                    self.stack.pop();
                    self.word.pop();
                }
            }
        }
    }
}

/// Convenience: materializes all paths of length exactly `k`.
pub fn enumerate_paths<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Vec<Path> {
    PathEnumerator::new(g, expr, k).collect()
}

/// Convenience: all paths of length `0..=k` (concatenated enumerations).
pub fn enumerate_paths_upto<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Vec<Path> {
    let nfa = Nfa::compile(expr);
    let det = DetProduct::build(g, &nfa);
    let mut all = Vec::new();
    for j in 0..=k {
        all.extend(PathEnumerator::from_det(det.clone(), j, g.node_count()));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_paths;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use crate::product::Product;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{gnm_labeled, path_graph};
    use std::collections::HashSet;

    #[test]
    fn enumeration_matches_exact_count() {
        for seed in 0..3 {
            let mut g = gnm_labeled(10, 25, &["a", "b"], &["p", "q"], seed);
            for expr_text in ["(p+q)*", "p/q^-", "?a/(p)*"] {
                let e = parse_expr(expr_text, g.consts_mut()).unwrap();
                let view = LabeledView::new(&g);
                for k in 0..=4 {
                    let paths = enumerate_paths(&view, &e, k);
                    let count = count_paths(&view, &e, k).unwrap();
                    assert_eq!(paths.len() as u128, count, "{expr_text} k={k}");
                    // All distinct.
                    let set: HashSet<_> = paths.iter().cloned().collect();
                    assert_eq!(set.len(), paths.len());
                }
            }
        }
    }

    #[test]
    fn all_enumerated_paths_are_answers() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let nfa = crate::automata::Nfa::compile(&e);
        let prod = Product::build(&view, &nfa);
        let paths = enumerate_paths(&view, &e, 2);
        assert_eq!(paths.len(), 2); // n1 and n4 each share bus n3 with n2
        for p in &paths {
            assert!(prod.accepts(p.start, &p.edges));
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn lexicographic_order() {
        let mut g = gnm_labeled(8, 20, &["a"], &["p"], 3);
        let e = parse_expr("(p)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let paths = enumerate_paths(&view, &e, 3);
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn zero_length_enumeration() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let paths = enumerate_paths(&view, &e, 0);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn upto_concatenates_lengths() {
        let mut g = path_graph(5, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let all = enumerate_paths_upto(&view, &e, 4);
        // 5 + 4 + 3 + 2 + 1
        assert_eq!(all.len(), 15);
    }

    #[test]
    fn empty_answer_set_terminates_immediately() {
        let mut g = path_graph(3, "v", "next");
        let e = parse_expr("ghost", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let mut it = PathEnumerator::new(&view, &e, 2);
        assert!(it.next().is_none());
    }
}
