//! Paths as first-class answers.
//!
//! The paper defines an answer to a regular expression as a *path*
//! `p = n₀ e₁ n₁ e₂ … e_k n_k` with `start(p) = n₀`, `end(p) = n_k` and
//! `|p| = k`. Because every edge of a multigraph has fixed endpoints
//! `ρ(e) = (a, b)`, the node sequence of a path is fully determined by its
//! start node and edge sequence; [`Path`] therefore stores exactly
//! `(n₀, [e₁ … e_k])`, which doubles as the canonical *word* encoding used
//! by the counting and generation algorithms (distinct paths ↔ distinct
//! words).

use crate::model::PathGraph;
use kgq_graph::{EdgeId, LabeledGraph, NodeId};

/// A path `n₀ e₁ n₁ … e_k n_k`, stored as start node plus edge sequence.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Path {
    /// `start(p)`.
    pub start: NodeId,
    /// `e₁ … e_k` in order.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// The length-0 path sitting on `n`.
    pub fn trivial(n: NodeId) -> Path {
        Path {
            start: n,
            edges: Vec::new(),
        }
    }

    /// `|p|` — the number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for length-0 paths.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Reconstructs the node sequence `n₀ … n_k` against `g`.
    ///
    /// Returns `None` if the edge sequence is not actually traversable
    /// from the start node (an ill-formed path for this graph).
    pub fn nodes<G: PathGraph>(&self, g: &G) -> Option<Vec<NodeId>> {
        let mut nodes = Vec::with_capacity(self.edges.len() + 1);
        let mut cur = self.start;
        nodes.push(cur);
        for &e in &self.edges {
            let (a, b) = g.endpoints(e);
            cur = if a == cur {
                b
            } else if b == cur {
                a
            } else {
                return None;
            };
            nodes.push(cur);
        }
        Some(nodes)
    }

    /// `end(p)` — the last node, reconstructed against `g`.
    pub fn end<G: PathGraph>(&self, g: &G) -> Option<NodeId> {
        self.nodes(g).map(|ns| *ns.last().expect("non-empty"))
    }

    /// `cat(p, p')` — concatenation; requires `end(p) = start(p')`.
    pub fn cat<G: PathGraph>(&self, other: &Path, g: &G) -> Option<Path> {
        if self.end(g)? != other.start {
            return None;
        }
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Some(Path {
            start: self.start,
            edges,
        })
    }

    /// Pretty-prints the path with node/edge names from a labeled graph.
    pub fn render(&self, g: &LabeledGraph) -> String {
        let view = crate::model::LabeledView::new(g);
        match self.nodes(&view) {
            Some(ns) => {
                let mut s = String::new();
                s.push_str(g.node_name(ns[0]));
                for (i, &e) in self.edges.iter().enumerate() {
                    s.push_str(&format!(
                        " -[{}]- {}",
                        g.edge_name(e),
                        g.node_name(ns[i + 1])
                    ));
                }
                s
            }
            None => "<invalid path>".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LabeledView;
    use kgq_graph::figures::figure2_labeled;

    #[test]
    fn node_reconstruction_follows_edges_both_ways() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let e1 = g.edge_named("e1").unwrap(); // n1 -rides-> n3
        let e2 = g.edge_named("e2").unwrap(); // n2 -rides-> n3
                                              // n1 --e1--> n3 --e2 (backwards)--> n2
        let p = Path {
            start: n1,
            edges: vec![e1, e2],
        };
        let ns = p.nodes(&view).unwrap();
        let names: Vec<_> = ns.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["n1", "n3", "n2"]);
        assert_eq!(p.len(), 2);
        assert_eq!(g.node_name(p.end(&view).unwrap()), "n2");
    }

    #[test]
    fn disconnected_edge_sequence_is_invalid() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let e5 = g.edge_named("e5").unwrap(); // n4 -contact-> n6, not incident to n1
        let p = Path {
            start: n1,
            edges: vec![e5],
        };
        assert!(p.nodes(&view).is_none());
    }

    #[test]
    fn trivial_path_has_length_zero() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let p = Path::trivial(n1);
        assert!(p.is_empty());
        assert_eq!(p.end(&view), Some(n1));
        assert_eq!(p.nodes(&view).unwrap(), vec![n1]);
    }

    #[test]
    fn cat_matches_paper_definition() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let n3 = g.node_named("n3").unwrap();
        let e1 = g.edge_named("e1").unwrap();
        let e2 = g.edge_named("e2").unwrap();
        let p1 = Path {
            start: n1,
            edges: vec![e1],
        };
        let p2 = Path {
            start: n3,
            edges: vec![e2],
        };
        let cat = p1.cat(&p2, &view).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(g.node_name(cat.end(&view).unwrap()), "n2");
        // cat requires end(p) = start(p').
        assert!(p2.cat(&p2, &view).is_none());
    }

    #[test]
    fn render_is_readable() {
        let g = figure2_labeled();
        let n1 = g.node_named("n1").unwrap();
        let e1 = g.edge_named("e1").unwrap();
        let p = Path {
            start: n1,
            edges: vec![e1],
        };
        assert_eq!(p.render(&g), "n1 -[e1]- n3");
    }
}
