//! Exact counting of paths — the problem `Count(G, r, k)` of §4.1.
//!
//! `Count` takes a graph, an expression and a length `k`, and returns the
//! number of distinct paths `p ∈ ⟦r⟧` with `|p| = k`. The paper notes the
//! problem is SpanL-complete, so no polynomial exact algorithm is expected.
//! Two exact algorithms are provided:
//!
//! * [`count_paths`] — determinize the product (worst-case exponential,
//!   where the hardness lives), then count by dynamic programming over the
//!   deterministic automaton in `O(k · |det|)` — the standard "exponential
//!   preprocessing, fast per-k" tradeoff.
//! * [`count_paths_naive`] — enumerate every length-`k` walk of the graph
//!   and test acceptance, in `Θ(Σ_paths)` time: the brute-force baseline
//!   the experiments contrast against.
//!
//! Counts use `u128` with overflow checking ([`CountError::Overflow`]).

use crate::automata::Nfa;
use crate::expr::PathExpr;
use crate::govern::{
    fault_point, Budget, CancelToken, EvalError, Governed, Governor, Interrupt, Ticker,
};
use crate::model::PathGraph;
use crate::product::{DetProduct, Product};
use kgq_graph::{EdgeId, NodeId};
use std::fmt;

/// Errors from exact counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountError {
    /// The count does not fit in `u128`.
    Overflow,
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Overflow => write!(f, "path count overflows u128"),
        }
    }
}

impl std::error::Error for CountError {}

/// A reusable exact counter: pays determinization once, then answers
/// `Count(G, r, k)` for any `k` by dynamic programming.
pub struct ExactCounter {
    det: DetProduct,
}

impl ExactCounter {
    /// Builds the deterministic product for `(g, expr)`.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr) -> ExactCounter {
        let nfa = Nfa::compile_min(expr).nfa;
        ExactCounter {
            det: DetProduct::build(g, &nfa),
        }
    }

    /// Wraps an already-built deterministic product.
    pub fn from_det(det: DetProduct) -> ExactCounter {
        ExactCounter { det }
    }

    /// The deterministic product automaton.
    pub fn det(&self) -> &DetProduct {
        &self.det
    }

    /// `Count(G, r, k)` — distinct paths of length exactly `k`.
    pub fn count(&self, k: usize) -> Result<u128, CountError> {
        // `count_by_length` always returns k+1 entries, so `last` is
        // present; avoid unwrapping on the hot path regardless.
        Ok(self.count_by_length(k)?.pop().unwrap_or(0))
    }

    /// Governed `Count(G, r, k)`: the DP charges one step per cell
    /// update and two transient `u128` rows of memory, so a runaway
    /// determinized product cannot pin the CPU past its budget.
    pub fn count_governed(&self, k: usize, gov: &Governor) -> Result<u128, EvalError> {
        fault_point!("count::dp");
        let m = self.det.state_count();
        let row_bytes = 16 * m as u64;
        gov.charge_memory(2 * row_bytes)
            .map_err(EvalError::Interrupted)?;
        let mut ticker = Ticker::new(gov);
        let result = (|| -> Result<u128, EvalError> {
            let mut cur = vec![0u128; m];
            for s in self.det.initial_slots().iter().flatten() {
                ticker.tick()?;
                cur[*s as usize] = cur[*s as usize].checked_add(1).ok_or(EvalError::Overflow)?;
            }
            for _ in 0..k {
                let mut next = vec![0u128; m];
                for (s, &c) in cur.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    for &(_, s2) in self.det.out(s as u32) {
                        ticker.tick()?;
                        next[s2 as usize] = next[s2 as usize]
                            .checked_add(c)
                            .ok_or(EvalError::Overflow)?;
                    }
                }
                cur = next;
            }
            ticker.flush()?;
            self.accepting_total(&cur).map_err(EvalError::from)
        })();
        gov.release_memory(2 * row_bytes);
        result
    }

    /// Counts for every length `0..=k` in one DP pass.
    pub fn count_by_length(&self, k: usize) -> Result<Vec<u128>, CountError> {
        let m = self.det.state_count();
        let mut cur = vec![0u128; m];
        for s in self.det.initial_slots().iter().flatten() {
            cur[*s as usize] = cur[*s as usize]
                .checked_add(1)
                .ok_or(CountError::Overflow)?;
        }
        let mut totals = Vec::with_capacity(k + 1);
        totals.push(self.accepting_total(&cur)?);
        for _ in 0..k {
            let mut next = vec![0u128; m];
            for (s, &c) in cur.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for &(_, s2) in self.det.out(s as u32) {
                    next[s2 as usize] = next[s2 as usize]
                        .checked_add(c)
                        .ok_or(CountError::Overflow)?;
                }
            }
            cur = next;
            totals.push(self.accepting_total(&cur)?);
        }
        Ok(totals)
    }

    /// Count of paths of length `k` starting at a specific node.
    pub fn count_from(&self, start: NodeId, k: usize) -> Result<u128, CountError> {
        let m = self.det.state_count();
        let mut cur = vec![0u128; m];
        match self.det.initial(start) {
            Some(s) => cur[s as usize] = 1,
            None => return Ok(0),
        }
        for _ in 0..k {
            let mut next = vec![0u128; m];
            for (s, &c) in cur.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for &(_, s2) in self.det.out(s as u32) {
                    next[s2 as usize] = next[s2 as usize]
                        .checked_add(c)
                        .ok_or(CountError::Overflow)?;
                }
            }
            cur = next;
        }
        self.accepting_total(&cur)
    }

    /// Count of length-`k` paths from `start` to `end`.
    pub fn count_between(&self, start: NodeId, end: NodeId, k: usize) -> Result<u128, CountError> {
        let m = self.det.state_count();
        let mut cur = vec![0u128; m];
        match self.det.initial(start) {
            Some(s) => cur[s as usize] = 1,
            None => return Ok(0),
        }
        for _ in 0..k {
            let mut next = vec![0u128; m];
            for (s, &c) in cur.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for &(_, s2) in self.det.out(s as u32) {
                    next[s2 as usize] = next[s2 as usize]
                        .checked_add(c)
                        .ok_or(CountError::Overflow)?;
                }
            }
            cur = next;
        }
        let mut total: u128 = 0;
        for (s, &c) in cur.iter().enumerate() {
            if self.det.is_accepting(s as u32) && self.det.node_of(s as u32) == end {
                total = total.checked_add(c).ok_or(CountError::Overflow)?;
            }
        }
        Ok(total)
    }

    fn accepting_total(&self, dist: &[u128]) -> Result<u128, CountError> {
        let mut total: u128 = 0;
        for (s, &c) in dist.iter().enumerate() {
            if self.det.is_accepting(s as u32) {
                total = total.checked_add(c).ok_or(CountError::Overflow)?;
            }
        }
        Ok(total)
    }
}

/// `Count(G, r, k)` via determinization + DP. See [`ExactCounter`].
pub fn count_paths<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Result<u128, CountError> {
    ExactCounter::new(g, expr).count(k)
}

/// A governed count: exact when the budget allowed it, or an FPRAS
/// estimate when exact counting was cut short (the `degraded` flag on
/// the surrounding [`Governed`] is set in that case).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CountOutcome {
    /// The exact number of length-`k` matching paths.
    Exact(u128),
    /// An approximate count from the FPRAS fallback.
    Approximate(f64),
}

impl fmt::Display for CountOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountOutcome::Exact(c) => write!(f, "{c}"),
            CountOutcome::Approximate(e) => write!(f, "~{e:.1}"),
        }
    }
}

/// The counting rung of the degradation ladder (exact → approximate):
/// try the exact count under half the step budget; if that trips on
/// anything except explicit cancellation, rerun as the FPRAS
/// approximation under whatever budget is left (same wall-clock
/// deadline) and mark the answer `degraded`.
///
/// Exact counting is SpanL-complete (§4.1) — determinization can blow
/// up exponentially — while the FPRAS stays polynomial, so the fallback
/// usually completes comfortably inside the remaining budget.
pub fn count_paths_governed<G: PathGraph + Sync>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    budget: &Budget,
    cancel: CancelToken,
) -> Result<Governed<CountOutcome>, EvalError> {
    count_paths_governed_with(
        g,
        expr,
        k,
        budget,
        cancel,
        &crate::approx::ApproxParams::default(),
    )
}

/// [`count_paths_governed`] with explicit FPRAS parameters for the
/// fallback rung (fewer trials trade accuracy for a smaller footprint,
/// letting the approximation fit tighter leftover budgets).
pub fn count_paths_governed_with<G: PathGraph + Sync>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    budget: &Budget,
    cancel: CancelToken,
    params: &crate::approx::ApproxParams,
) -> Result<Governed<CountOutcome>, EvalError> {
    let stage1 = Budget {
        max_steps: budget.max_steps.map(|s| s / 2),
        ..budget.clone()
    };
    let gov = Governor::with_cancel(&stage1, cancel);
    let nfa = Nfa::compile_min(expr).nfa;
    let exact = crate::govern::isolate_eval(|| {
        DetProduct::build_governed(g, &nfa, &gov)
            .map_err(EvalError::from)
            .and_then(|det| ExactCounter::from_det(det).count_governed(k, &gov))
    });
    match exact {
        Ok(c) => return Ok(Governed::complete(CountOutcome::Exact(c))),
        // Cancellation is a user decision, not exhaustion — don't burn
        // more work on a fallback nobody is waiting for. Overflow and
        // panics are not budget problems either.
        Err(EvalError::Interrupted(Interrupt::Cancelled)) => {
            return Err(Interrupt::Cancelled.into())
        }
        Err(EvalError::Interrupted(_)) => {}
        Err(e) => return Err(e),
    }
    // Degrade: FPRAS under the unspent part of the *total* step budget,
    // against the same deadline instant (sticky trips force a fresh
    // governor rather than reusing the tripped one).
    let remaining = budget.max_steps.map(|s| s.saturating_sub(gov.steps_used()));
    let gov2 = gov.successor_with_steps(remaining.unwrap_or(u64::MAX));
    let estimate = crate::govern::isolate_eval(|| {
        crate::approx::approx_count_governed_with(g, expr, k, params, &gov2)
    })?;
    Ok(Governed {
        value: CountOutcome::Approximate(estimate),
        completion: crate::govern::Completion::Complete,
        degraded: true,
    })
}

/// Analyzer-routed counting: consults a static-analysis [`Report`]
/// before doing any work.
///
/// * A provably-empty query answers `Exact(0)` instantly — no
///   determinization, no product, no DP.
/// * A `Deny` finding for exact counting (determinization blowup,
///   [`Report::denies_exact_count`]) skips the doomed exact stage and
///   goes straight to the FPRAS estimate, marked `degraded` exactly like
///   the governed ladder's fallback rung — the step budget is never
///   burned on a stage the analyzer already condemned.
/// * Otherwise the exact DP runs as in [`count_paths`].
pub fn count_paths_analyzed<G: PathGraph + Sync>(
    g: &G,
    expr: &PathExpr,
    k: usize,
    report: &crate::analyze::Report,
) -> Result<Governed<CountOutcome>, CountError> {
    if report.is_provably_empty() {
        return Ok(Governed::complete(CountOutcome::Exact(0)));
    }
    if report.denies_exact_count() {
        let estimate =
            crate::approx::approx_count(g, expr, k, &crate::approx::ApproxParams::default());
        return Ok(Governed {
            value: CountOutcome::Approximate(estimate),
            completion: crate::govern::Completion::Complete,
            degraded: true,
        });
    }
    Ok(Governed::complete(CountOutcome::Exact(count_paths(
        g, expr, k,
    )?)))
}

/// Brute-force `Count(G, r, k)`: enumerate every length-`k` walk
/// (`n₀, e₁ … e_k`) by DFS and test acceptance against the product NFA.
///
/// Each path is visited exactly once (the word encoding is unique), so no
/// dedup is needed — but the running time is proportional to the *number
/// of walks*, which grows as `d^k`. This is the baseline that motivates
/// the approximation algorithms of §4.1. Start nodes are explored in
/// parallel when threads are available; the per-start totals are summed,
/// which is order-insensitive, so the count never depends on thread count.
pub fn count_paths_naive<G: PathGraph + Sync>(g: &G, expr: &PathExpr, k: usize) -> u128 {
    let nfa = Nfa::compile_min(expr).nfa;
    let prod = Product::build(g, &nfa);
    let n = g.node_count();
    let count_start = |v: usize| -> u128 {
        let v = NodeId(v as u32);
        let mut total: u128 = 0;
        let mut word: Vec<EdgeId> = Vec::with_capacity(k);
        dfs_count(g, &prod, v, v, k, &mut word, &mut total);
        total
    };
    if crate::parallel::effective_threads() > 1 && n >= 2 {
        use rayon::prelude::*;
        (0..n).into_par_iter().map(count_start).sum()
    } else {
        (0..n).map(count_start).sum()
    }
}

fn dfs_count<G: PathGraph>(
    g: &G,
    prod: &Product,
    start: NodeId,
    cur: NodeId,
    remaining: usize,
    word: &mut Vec<EdgeId>,
    total: &mut u128,
) {
    if remaining == 0 {
        if prod.accepts(start, word) {
            *total += 1;
        }
        return;
    }
    let mut steps: Vec<(EdgeId, NodeId)> = g
        .out(cur)
        .iter()
        .chain(g.inc(cur).iter())
        .copied()
        .collect();
    steps.sort_unstable_by_key(|&(e, _)| e.0);
    steps.dedup_by_key(|&mut (e, _)| e.0);
    for (e, m) in steps {
        word.push(e);
        dfs_count(g, prod, start, m, remaining - 1, word, total);
        word.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{cycle_graph, gnm_labeled, path_graph};
    use kgq_graph::LabeledGraph;

    fn count_both(g: &mut LabeledGraph, expr: &str, k: usize) -> (u128, u128) {
        let e = parse_expr(expr, g.consts_mut()).unwrap();
        let view = LabeledView::new(g);
        let exact = count_paths(&view, &e, k).unwrap();
        let naive = count_paths_naive(&view, &e, k);
        (exact, naive)
    }

    #[test]
    fn exact_equals_naive_on_figure2() {
        let exprs = [
            "?person/rides/?bus/rides^-/?infected",
            "(contact)*",
            "(rides + rides^-)*",
            "?person/(lives + contact)/?infected",
        ];
        for expr in exprs {
            for k in 0..=4 {
                let mut g = figure2_labeled();
                let (exact, naive) = count_both(&mut g, expr, k);
                assert_eq!(exact, naive, "expr={expr} k={k}");
            }
        }
    }

    #[test]
    fn exact_equals_naive_on_random_graphs() {
        for seed in 0..4 {
            let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], seed);
            for expr in ["(p)*", "p/q^-", "(p+q)*/?a"] {
                for k in 0..=3 {
                    let (exact, naive) = count_both(&mut g, expr, k);
                    assert_eq!(exact, naive, "seed={seed} expr={expr} k={k}");
                }
            }
        }
    }

    #[test]
    fn path_graph_counts_are_obvious() {
        // On a directed path of n nodes, (next)* has n-k paths of length k.
        let mut g = path_graph(6, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &e);
        let by_len = counter.count_by_length(5).unwrap();
        assert_eq!(by_len, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn cycle_counts_wrap_forever() {
        // On a directed cycle of n nodes, every length has exactly n
        // forward paths.
        let mut g = cycle_graph(5, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &e);
        let by_len = counter.count_by_length(7).unwrap();
        assert!(by_len.iter().all(|&c| c == 5));
    }

    #[test]
    fn ambiguity_does_not_overcount() {
        // (a + a/a) over a path: ambiguous NFA; exact counting must not
        // double-count the length-1 paths.
        let mut g = path_graph(4, "v", "a");
        let e = parse_expr("a + a/a", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        assert_eq!(count_paths(&view, &e, 1).unwrap(), 3);
        assert_eq!(count_paths(&view, &e, 2).unwrap(), 2);
        // Highly ambiguous: (a + a)* — each path still counted once.
        let e2 = parse_expr("(a + a)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        assert_eq!(count_paths(&view, &e2, 1).unwrap(), 3);
        assert_eq!(count_paths(&view, &e2, 3).unwrap(), 1);
    }

    #[test]
    fn count_from_restricts_the_start() {
        let mut g = figure2_labeled();
        let e = parse_expr("rides", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &e);
        let n1 = g.node_named("n1").unwrap();
        let n7 = g.node_named("n7").unwrap();
        assert_eq!(counter.count_from(n1, 1).unwrap(), 1);
        assert_eq!(counter.count_from(n7, 1).unwrap(), 0);
        // The sum over all starts equals the global count.
        let total: u128 = g
            .base()
            .nodes()
            .map(|n| counter.count_from(n, 1).unwrap())
            .sum();
        assert_eq!(total, counter.count(1).unwrap());
    }

    #[test]
    fn count_between_partitions_count_from() {
        let mut g = figure2_labeled();
        let e = parse_expr("(rides + rides^- + contact)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &e);
        let k = 3;
        for a in g.base().nodes() {
            let per_end: u128 = g
                .base()
                .nodes()
                .map(|b| counter.count_between(a, b, k).unwrap())
                .sum();
            assert_eq!(per_end, counter.count_from(a, k).unwrap());
        }
    }

    #[test]
    fn huge_counts_overflow_cleanly() {
        // Complete graph: counts grow ~ (n-1)^k and overflow u128 well
        // before k = 160.
        use kgq_graph::generate::complete_graph;
        let mut g = complete_graph(8, "v", "e");
        let e = parse_expr("(e + e^-)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &e);
        assert!(counter.count(2).is_ok());
        assert_eq!(counter.count(160), Err(CountError::Overflow));
        // Per-source and per-pair variants share the checked arithmetic.
        let v0 = kgq_graph::NodeId(0);
        assert!(counter.count_from(v0, 2).is_ok());
        assert_eq!(counter.count_from(v0, 160), Err(CountError::Overflow));
        assert!(counter.count_between(v0, v0, 2).is_ok());
        assert_eq!(
            counter.count_between(v0, v0, 160),
            Err(CountError::Overflow)
        );
        assert_eq!(
            CountError::Overflow.to_string(),
            "path count overflows u128"
        );
    }

    #[test]
    fn zero_length_counts_are_node_tests() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        // Figure 2 has persons n1, n4, n8.
        assert_eq!(count_paths(&view, &e, 0).unwrap(), 3);
        assert_eq!(count_paths(&view, &e, 1).unwrap(), 0);
    }
}

#[cfg(test)]
mod governed_tests {
    use super::*;
    use crate::approx::ApproxParams;
    use crate::govern::Completion;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::generate::gnm_labeled;

    /// A workload where the product stays expensive even after Hopcroft
    /// minimization: the suffix forces any automaton for the language to
    /// remember the last `depth` steps, so the minimal DFA has
    /// `2^(depth+1)` states and the exact rung's cost scales with it,
    /// while a small-trial FPRAS is insensitive to the automaton size.
    fn blowup_depth(depth: usize) -> (kgq_graph::LabeledGraph, PathExpr) {
        let mut g = gnm_labeled(20, 80, &["v"], &["p", "q"], 3);
        let text = "(p+q)*/p".to_string() + &"/(p+q)".repeat(depth);
        let e = parse_expr(&text, g.consts_mut()).unwrap();
        (g, e)
    }

    #[test]
    fn analyzed_count_routes_empty_and_blowup() {
        use crate::analyze::analyze_expr;
        use kgq_graph::SchemaSummary;
        // Provably empty: exact zero without building anything.
        let mut g = gnm_labeled(12, 30, &["a"], &["p", "q"], 3);
        let dead = parse_expr("ghost/p", g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&dead, &schema, None);
        let got = count_paths_analyzed(&LabeledView::new(&g), &dead, 3, &report).unwrap();
        assert_eq!(got.value, CountOutcome::Exact(0));
        assert!(!got.degraded);

        // Deny (blowup): routed straight to the FPRAS estimate, degraded.
        let (gb, blow) = blowup_depth(13);
        let breport = analyze_expr(&blow, &SchemaSummary::from_labeled(&gb), None);
        assert!(breport.denies_exact_count());
        let approx = count_paths_analyzed(&LabeledView::new(&gb), &blow, 16, &breport).unwrap();
        assert!(approx.degraded);
        assert!(matches!(approx.value, CountOutcome::Approximate(_)));

        // Clean queries still count exactly.
        let live = parse_expr("p/q", g.consts_mut()).unwrap();
        let lreport = analyze_expr(&live, &schema, None);
        let exact = count_paths_analyzed(&LabeledView::new(&g), &live, 2, &lreport).unwrap();
        assert_eq!(
            exact.value,
            CountOutcome::Exact(count_paths(&LabeledView::new(&g), &live, 2).unwrap())
        );
    }

    fn blowup() -> (kgq_graph::LabeledGraph, PathExpr) {
        blowup_depth(8)
    }

    #[test]
    fn unlimited_budget_counts_exactly() {
        let (g, e) = blowup();
        let view = LabeledView::new(&g);
        let expected = count_paths(&view, &e, 9).unwrap();
        let res =
            count_paths_governed(&view, &e, 9, &Budget::default(), CancelToken::new()).unwrap();
        assert!(!res.degraded);
        assert_eq!(res.completion, Completion::Complete);
        assert_eq!(res.value, CountOutcome::Exact(expected));
    }

    #[test]
    fn step_exhaustion_degrades_to_fpras() {
        // Depth 10 → a ~2k-state minimal DFA, so the exact rung needs
        // ~340k governed steps while a 16-trial FPRAS needs ~150k.
        let (g, e) = blowup_depth(10);
        let view = LabeledView::new(&g);
        let exact = count_paths(&view, &e, 11).unwrap() as f64;
        // Stage 1 gets half of this — not enough to determinize and run
        // the DP — while the leftover covers the 16-trial estimator.
        let budget = Budget::default().with_max_steps(400_000);
        let params = ApproxParams {
            trials: Some(16),
            pool_cap: 32,
            ..Default::default()
        };
        let res =
            count_paths_governed_with(&view, &e, 11, &budget, CancelToken::new(), &params).unwrap();
        assert!(res.degraded, "exact should have been cut short");
        assert_eq!(res.completion, Completion::Complete);
        let CountOutcome::Approximate(est) = res.value else {
            panic!("expected the FPRAS fallback, got {:?}", res.value);
        };
        assert!(
            (est - exact).abs() / exact < 0.5,
            "estimate {est} too far from {exact}"
        );
    }

    #[test]
    fn cancellation_skips_the_fallback() {
        let (g, e) = blowup();
        let view = LabeledView::new(&g);
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = count_paths_governed(&view, &e, 9, &Budget::default(), cancel).unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::Cancelled)));
    }

    #[test]
    fn hopeless_budget_is_a_typed_error() {
        let (g, e) = blowup();
        let view = LabeledView::new(&g);
        let budget = Budget::default().with_max_steps(1_000);
        let err = count_paths_governed(&view, &e, 9, &budget, CancelToken::new()).unwrap_err();
        assert!(matches!(err, EvalError::Interrupted(Interrupt::StepBudget)));
    }

    #[test]
    fn count_outcome_renders() {
        assert_eq!(CountOutcome::Exact(42).to_string(), "42");
        assert_eq!(CountOutcome::Approximate(41.96).to_string(), "~42.0");
    }
}
