//! A concrete text syntax for path regular expressions.
//!
//! The paper writes expressions like `?person/rides/?bus/rides⁻/?infected`
//! and `?person/(contact ∧ (date = 3/4/21))/?infected`. Since `/` is the
//! concatenation operator, dates and other values containing `/` are
//! written single-quoted, the inverse marker `⁻` is written `^-`, and the
//! boolean connectives use ASCII:
//!
//! ```text
//! expr    := alt
//! alt     := seq ( '+' seq )*
//! seq     := unary ( '/' unary )*
//! unary   := atom '*'*
//! atom    := '?' test | test ('^-')? | '(' expr ')'
//! test    := ident | 'quoted' | '[' eq ']' | '{' bool '}'
//! eq      := (ident | quoted | '#' int) '=' (ident | quoted)
//! bool    := band ( '|' band )* ; band := bnot ( '&' bnot )*
//! bnot    := '!' bnot | test
//! ```
//!
//! Examples accepted by [`parse_expr`]:
//!
//! * `?person/rides/?bus/rides^-/?infected` — expression of §4.3,
//! * `?person/{contact & [date='3/4/21']}/?infected` — expression (3),
//! * `[#1=person]/{[#1=contact] & [#5='3/4/21']}/?[#1=infected]` — the
//!   vector-labeled rewriting (features are 1-based, as in the paper),
//! * `?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person` —
//!   the epidemic-centrality expression `r₁` of §4.2.

use crate::expr::{PathExpr, Test};
use kgq_graph::Interner;
use std::fmt;

/// Parse error with byte position and, where known, what was expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
    /// The token or construct the parser expected at `pos`, when the
    /// error is an expectation failure (`None` for lexical errors such
    /// as an unexpected character).
    pub expected: Option<String>,
}

impl ParseError {
    /// Renders the error against its input with a caret marking the
    /// offending byte:
    ///
    /// ```text
    /// parse error at byte 8: expected an atom (…)
    ///   ?person/
    ///           ^ expected an atom (…)
    /// ```
    ///
    /// Column alignment is byte-based (exact for ASCII input). The line
    /// containing `pos` is extracted, so multi-line input renders only
    /// the relevant line.
    pub fn render(&self, input: &str) -> String {
        let pos = self.pos.min(input.len());
        let line_start = input[..pos].rfind('\n').map_or(0, |i| i + 1);
        let line_end = input[line_start..]
            .find('\n')
            .map_or(input.len(), |i| line_start + i);
        let line = &input[line_start..line_end];
        let pad = " ".repeat(pos - line_start);
        let hint = match &self.expected {
            Some(e) => format!(" expected {e}"),
            None => String::new(),
        };
        format!("{self}\n  {line}\n  {pad}^{hint}")
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Int(usize),
    Question,
    Slash,
    Plus,
    Star,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Bang,
    Amp,
    Pipe,
    Eq,
    Hash,
    Inverse, // ^-
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // `i` only ever advances by whole characters (or over ASCII
        // bytes), so it is always a char boundary.
        let Some(c) = input[i..].chars().next() else {
            break;
        };
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '?' => {
                toks.push((i, Tok::Question));
                i += 1;
            }
            '/' => {
                toks.push((i, Tok::Slash));
                i += 1;
            }
            '+' => {
                toks.push((i, Tok::Plus));
                i += 1;
            }
            '*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '{' => {
                toks.push((i, Tok::LBrace));
                i += 1;
            }
            '}' => {
                toks.push((i, Tok::RBrace));
                i += 1;
            }
            '[' => {
                toks.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                toks.push((i, Tok::RBracket));
                i += 1;
            }
            '!' => {
                toks.push((i, Tok::Bang));
                i += 1;
            }
            '&' => {
                toks.push((i, Tok::Amp));
                i += 1;
            }
            '|' => {
                toks.push((i, Tok::Pipe));
                i += 1;
            }
            '=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            '#' => {
                toks.push((i, Tok::Hash));
                i += 1;
            }
            '^' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    toks.push((i, Tok::Inverse));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        message: "expected `^-`".to_owned(),
                        expected: Some("`^-`".to_owned()),
                    });
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError {
                        pos: start,
                        message: "unterminated quoted string".to_owned(),
                        expected: Some("a closing `'`".to_owned()),
                    });
                }
                toks.push((start, Tok::Quoted(input[begin..i].to_owned())));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let begin = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: usize = input[begin..i].parse().map_err(|_| ParseError {
                    pos: begin,
                    message: "integer too large".to_owned(),
                    expected: None,
                })?;
                toks.push((begin, Tok::Int(n)));
            }
            c if c.is_alphabetic() || c == '_' => {
                // Identifiers are Unicode: advance char by char so a
                // multi-byte letter never lands the cursor (and the
                // slice below) off a char boundary.
                let begin = i;
                i += c.len_utf8();
                while i < bytes.len() {
                    match input[i..].chars().next() {
                        Some(c) if c.is_alphanumeric() || c == '_' => i += c.len_utf8(),
                        _ => break,
                    }
                }
                toks.push((begin, Tok::Ident(input[begin..i].to_owned())));
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                    expected: None,
                });
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    consts: &'a mut Interner,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(p, _)| *p).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_expected(what))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            pos: self.here(),
            message,
            expected: None,
        }
    }

    fn err_expected(&self, what: &str) -> ParseError {
        ParseError {
            pos: self.here(),
            message: format!("expected {what}"),
            expected: Some(what.to_owned()),
        }
    }

    fn expr(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.seq()?;
        while self.peek() == Some(&Tok::Plus) {
            self.pos += 1;
            let right = self.seq()?;
            left = left.alt(right);
        }
        Ok(left)
    }

    fn seq(&mut self) -> Result<PathExpr, ParseError> {
        let mut left = self.unary()?;
        while self.peek() == Some(&Tok::Slash) {
            self.pos += 1;
            let right = self.unary()?;
            left = left.concat(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<PathExpr, ParseError> {
        let mut e = self.atom()?;
        while self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            e = e.star();
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<PathExpr, ParseError> {
        match self.peek() {
            Some(Tok::Question) => {
                self.pos += 1;
                let t = self.test()?;
                Ok(PathExpr::NodeTest(t))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(_)) | Some(Tok::Quoted(_)) | Some(Tok::LBracket)
            | Some(Tok::LBrace) => {
                let t = self.test()?;
                if self.peek() == Some(&Tok::Inverse) {
                    self.pos += 1;
                    Ok(PathExpr::Backward(t))
                } else {
                    Ok(PathExpr::Forward(t))
                }
            }
            _ => Err(self.err_expected("an atom (`?test`, `test`, `test^-` or `(expr)`)")),
        }
    }

    fn test(&mut self) -> Result<Test, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Test::Label(self.consts.intern(&s))),
            Some(Tok::Quoted(s)) => Ok(Test::Label(self.consts.intern(&s))),
            Some(Tok::LBracket) => {
                let t = self.eq_test()?;
                self.expect(&Tok::RBracket, "`]`")?;
                Ok(t)
            }
            Some(Tok::LBrace) => {
                let t = self.bool_or()?;
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(t)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_expected("a test"))
            }
        }
    }

    fn eq_test(&mut self) -> Result<Test, ParseError> {
        if self.peek() == Some(&Tok::Hash) {
            self.pos += 1;
            let i = match self.bump() {
                Some(Tok::Int(i)) => i,
                _ => return Err(self.err_expected("a feature index after `#`")),
            };
            if i == 0 {
                return Err(self.err("feature indices are 1-based".into()));
            }
            self.expect(&Tok::Eq, "`=`")?;
            let v = self.value()?;
            Ok(Test::Feature(i, v))
        } else {
            let p = self.value()?;
            self.expect(&Tok::Eq, "`=`")?;
            let v = self.value()?;
            Ok(Test::Prop(p, v))
        }
    }

    fn value(&mut self) -> Result<kgq_graph::Sym, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) | Some(Tok::Quoted(s)) => Ok(self.consts.intern(&s)),
            Some(Tok::Int(i)) => Ok(self.consts.intern(&i.to_string())),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_expected("an identifier, quoted string or integer"))
            }
        }
    }

    fn bool_or(&mut self) -> Result<Test, ParseError> {
        let mut left = self.bool_and()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let right = self.bool_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn bool_and(&mut self) -> Result<Test, ParseError> {
        let mut left = self.bool_not()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            let right = self.bool_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn bool_not(&mut self) -> Result<Test, ParseError> {
        if self.peek() == Some(&Tok::Bang) {
            self.pos += 1;
            Ok(self.bool_not()?.not())
        } else {
            self.test()
        }
    }
}

/// Parses a path regular expression, interning all constants in `consts`.
pub fn parse_expr(input: &str, consts: &mut Interner) -> Result<PathExpr, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        consts,
        end: input.len(),
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            pos: p.here(),
            message: "trailing input".to_owned(),
            expected: Some("end of input or an operator (`/`, `+`, `*`)".to_owned()),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (PathExpr, Interner) {
        let mut it = Interner::new();
        let e = parse_expr(s, &mut it).unwrap_or_else(|e| panic!("{s}: {e}"));
        (e, it)
    }

    #[test]
    fn paper_expression_4_3() {
        let (e, it) = parse("?person/rides/?bus/rides^-/?infected");
        assert_eq!(e.atom_count(), 5);
        assert_eq!(
            format!("{}", e.display(&it)),
            "?person/rides/?bus/rides^-/?infected"
        );
    }

    #[test]
    fn paper_expression_3_with_property_date() {
        let (e, _) = parse("?person/{contact & [date='3/4/21']}/?infected");
        match &e {
            PathExpr::Concat(_, _) => {}
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(e.requires().properties);
    }

    #[test]
    fn paper_vector_rewriting() {
        let (e, _) = parse("[#1=person]/{[#1=contact] & [#5='3/4/21']}/?[#1=infected]");
        assert_eq!(e.requires().max_feature, 5);
        assert_eq!(e.atom_count(), 3);
    }

    #[test]
    fn paper_r1_epidemic_expression() {
        let (e, _) = parse("?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person");
        assert_eq!(e.atom_count(), 8);
        assert!(!e.nullable());
    }

    #[test]
    fn negated_test_from_section_4() {
        // (¬ℓ1 ∧ ¬ℓ2)⁻
        let (e, _) = parse("{!owns & !lives}^-");
        match e {
            PathExpr::Backward(Test::And(a, b)) => {
                assert!(matches!(*a, Test::Not(_)));
                assert!(matches!(*b, Test::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_plus_binds_looser_than_slash() {
        let (e, _) = parse("a/b+c");
        // (a/b) + c
        assert!(matches!(e, PathExpr::Alt(_, _)));
        let (e2, _) = parse("a/(b+c)");
        assert!(matches!(e2, PathExpr::Concat(_, _)));
    }

    #[test]
    fn star_binds_tightest() {
        let (e, _) = parse("a/b*");
        match e {
            PathExpr::Concat(_, rhs) => assert!(matches!(*rhs, PathExpr::Star(_))),
            other => panic!("unexpected {other:?}"),
        }
        let (e, _) = parse("(a/b)*");
        assert!(matches!(e, PathExpr::Star(_)));
        let (e, _) = parse("a**");
        assert!(matches!(e, PathExpr::Star(_)));
    }

    #[test]
    fn quoted_labels_allow_slashes() {
        let (e, it) = parse("'weird/label'");
        match e {
            PathExpr::Forward(Test::Label(l)) => assert_eq!(it.resolve(l), "weird/label"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_report_positions() {
        let mut it = Interner::new();
        let err = parse_expr("?person/", &mut it).unwrap_err();
        assert_eq!(err.pos, 8);
        let err = parse_expr("a ^ b", &mut it).unwrap_err();
        assert!(err.message.contains("^-"));
        let err = parse_expr("(a", &mut it).unwrap_err();
        assert!(err.message.contains(")"));
        let err = parse_expr("a b", &mut it).unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse_expr("[#0=x]", &mut it).unwrap_err();
        assert!(err.message.contains("1-based"));
        let err = parse_expr("'oops", &mut it).unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn expected_token_info_is_structured() {
        let mut it = Interner::new();
        let err = parse_expr("(a", &mut it).unwrap_err();
        assert_eq!(err.expected.as_deref(), Some("`)`"));
        let err = parse_expr("?person/", &mut it).unwrap_err();
        assert!(err.expected.as_deref().unwrap().contains("atom"));
        // Lexical errors carry no expectation.
        let err = parse_expr("a % b", &mut it).unwrap_err();
        assert_eq!(err.expected, None);
    }

    #[test]
    fn render_points_a_caret_at_the_error() {
        let mut it = Interner::new();
        let input = "?person/";
        let err = parse_expr(input, &mut it).unwrap_err();
        let rendered = err.render(input);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("parse error at byte 8"));
        assert_eq!(lines[1], "  ?person/");
        // Caret under byte 8 (two-space gutter).
        assert!(lines[2].starts_with("          ^"));
        assert!(lines[2].contains("expected an atom"));
    }

    #[test]
    fn render_extracts_the_offending_line() {
        let mut it = Interner::new();
        let input = "?person/\nrides/";
        let err = parse_expr(input, &mut it).unwrap_err();
        let rendered = err.render(input);
        assert!(rendered.contains("\n  rides/\n"));
        assert!(!rendered.contains("\n  ?person/"));
    }

    #[test]
    fn non_ascii_input_never_panics() {
        // Fuzz-found inputs that used to slice mid-character in the
        // byte-wise lexer. Unicode letters now lex as identifiers; other
        // non-ASCII characters are lexical errors — never panics.
        let mut it = Interner::new();
        for input in ["é", "αβ", "a/é", "?é", "é*", "'é'/π", "日本語", "a€b"] {
            let _ = parse_expr(input, &mut it);
        }
        let (e, it) = parse("?é");
        match e {
            PathExpr::NodeTest(Test::Label(l)) => assert_eq!(it.resolve(l), "é"),
            other => panic!("unexpected {other:?}"),
        }
        let (e, _) = parse("a/αβ");
        assert!(matches!(e, PathExpr::Concat(_, _)));
        let mut it = Interner::new();
        let err = parse_expr("a€b", &mut it).unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos, 1);
    }

    #[test]
    fn numbers_are_values() {
        let (e, it) = parse("[age=33]");
        match e {
            PathExpr::Forward(Test::Prop(p, v)) => {
                assert_eq!(it.resolve(p), "age");
                assert_eq!(it.resolve(v), "33");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
