//! Static query analysis: emptiness, satisfiability, blowup, and
//! complexity-class lints that run *before* compilation.
//!
//! The paper (§4–§5) attaches a complexity class to every querying
//! functionality — checking is NL-complete, exact counting is #P-hard
//! (SpanL), approximate counting admits an FPRAS, enumeration has
//! poly-delay variants. This module makes those classes (and cheaper
//! instance-level facts) visible *statically*: given a parsed
//! [`PathExpr`] and a [`SchemaSummary`] harvested from the target graph,
//! [`analyze_expr`] produces a [`Report`] of severity-leveled
//! [`Diagnostic`]s plus a recommended evaluation plan, without building a
//! graph × NFA product.
//!
//! The analyses, in lattice order (each feeds the next):
//!
//! 1. **Test satisfiability** ([`satisfiable`]) — a three-valued
//!    interpretation of boolean/property/feature tests against the schema
//!    summary: `False` means *no* node/edge of this graph can pass the
//!    test (label outside the universe, property pair never observed,
//!    feature index out of range, or a contradictory conjunction like
//!    `{p=1 & p=2}`); `True` means *every* one does; `Unknown` otherwise.
//! 2. **Emptiness** ([`pruned_min`]) — transitions guarded by provably
//!    unsatisfiable tests are removed from the Thompson NFA, which is
//!    then minimized ([`Nfa::minimize`]); the minimal DFA of an empty
//!    language has a canonical two-state shape recognized by
//!    [`crate::automata::NfaSignature::is_empty_language`]. A
//!    provably-empty query
//!    short-circuits to an instant empty result and is never cached.
//! 3. **Finiteness & blowup** — the pruned DFA is scanned for a useful
//!    cycle containing an edge-consuming transition (infinite path
//!    language); the full automaton's subset-construction size is
//!    checked against [`MAX_DFA_STATES`]; and the product frontier is
//!    estimated from the schema's node count and degree statistics to
//!    pick a [`PlanAdvice`] that [`crate::eval::Evaluator`] consults.
//! 4. **Complexity tagging** — each functionality is labeled with its
//!    class so `kgq query --explain` can print a verdict table, and a
//!    `Deny` finding routes exact counting to the FPRAS estimator.

use std::fmt;

use crate::automata::{MinimizedNfa, Nfa, Trans, MAX_DFA_STATES};
use crate::expr::{PathExpr, Test};
use crate::simplify::{simplify, simplify_test};
use kgq_graph::schema::{GraphModel, SchemaSummary};
use kgq_graph::Interner;

/// How a diagnostic affects execution, ordered from informational to
/// blocking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational; execution is unaffected.
    Note,
    /// Suspicious but executable (e.g. a dead alternation branch).
    Warn,
    /// Execution of at least one functionality is re-routed or
    /// short-circuited (empty language, determinization blowup).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One typed finding of the static analyzer.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// How the finding affects execution.
    pub severity: Severity,
    /// Stable machine-readable code (`empty-language`, `unsat-test`,
    /// `dfa-blowup`, `infinite-language`, `unknown-label`, …).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Byte span `(offset, len)` into the original query text, when the
    /// finding can be anchored to one.
    pub span: Option<(usize, usize)>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

impl Diagnostic {
    /// Renders the diagnostic with a caret marking its span in `input`,
    /// in the same shape as [`crate::parser::ParseError::render`]:
    ///
    /// ```text
    /// warn[unsat-test]: label `ghost` labels no edge in this graph
    ///   ?person/ghost
    ///           ^
    /// ```
    ///
    /// Falls back to the bare message when the diagnostic has no span or
    /// the span does not fit `input`.
    pub fn render(&self, input: &str) -> String {
        let Some((pos, _)) = self.span else {
            return self.to_string();
        };
        if input.is_empty() || pos > input.len() {
            return self.to_string();
        }
        let line_start = input[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = input[pos..]
            .find('\n')
            .map(|i| pos + i)
            .unwrap_or(input.len());
        let line = &input[line_start..line_end];
        let pad = " ".repeat(pos - line_start);
        format!("{self}\n  {line}\n  {pad}^")
    }
}

/// Three-valued verdict of a test against a schema summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tri {
    /// No node/edge of the summarized graph can satisfy the test.
    False,
    /// The schema cannot decide; the test must be evaluated.
    Unknown,
    /// Every node/edge of the summarized graph satisfies the test.
    True,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
            Tri::True => Tri::False,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

/// Whether a test guards a node (length-0 `?test` step) or an edge
/// traversal (`test` / `test^-`). The two positions have disjoint label
/// and property universes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Position {
    /// The test applies to a node.
    Node,
    /// The test applies to an edge.
    Edge,
}

/// The evaluation strategy the analyzer recommends; consulted by
/// [`crate::eval::Evaluator::pairs_planned`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanAdvice {
    /// Fused sequential product scan: small graphs or tiny products,
    /// where the bit-parallel kernel's setup cost dominates.
    Sequential,
    /// Multi-source sweep over the [`crate::bitkernel::ReachKernel`]
    /// 64-source frontier kernel.
    BitParallel,
    /// Point reachability checks should use the bidirectional meet
    /// (`Evaluator::check`); a full materialized sweep is wasteful.
    Bidirectional,
}

impl fmt::Display for PlanAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanAdvice::Sequential => "sequential scan",
            PlanAdvice::BitParallel => "bit-parallel sweep",
            PlanAdvice::Bidirectional => "bidirectional meet",
        })
    }
}

/// The paper's complexity class for one querying functionality.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComplexityClass {
    /// NL-complete (checking / pair reachability).
    Nl,
    /// #P-hard, SpanL-complete (exact path counting).
    SpanL,
    /// Admits a fully polynomial randomized approximation scheme.
    Fpras,
    /// Enumerable with polynomial delay between answers.
    PolyDelay,
    /// NP-hard in combined complexity (pattern matching under
    /// relationship isomorphism).
    NpHard,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComplexityClass::Nl => "NL",
            ComplexityClass::SpanL => "#P-hard (SpanL)",
            ComplexityClass::Fpras => "FPRAS",
            ComplexityClass::PolyDelay => "poly-delay",
            ComplexityClass::NpHard => "NP-hard",
        })
    }
}

/// Instance-level facts about the query's path language (RPQ analyses
/// only; a Cypher report carries `None`).
#[derive(Clone, Copy, Debug)]
pub struct LanguageFacts {
    /// The language is provably empty on this graph.
    pub empty: bool,
    /// The (pruned) language contains no unboundedly long paths.
    pub finite: bool,
    /// Whether the full automaton was actually minimized (false when the
    /// subset construction hit [`MAX_DFA_STATES`]).
    pub minimized: bool,
    /// States of the automaton the cache would compile.
    pub dfa_states: usize,
    /// `node_count × dfa_states`: upper bound on product states.
    pub est_product_states: u64,
}

/// The analyzer's verdict for one query: diagnostics, language facts,
/// plan advice, and per-functionality complexity classes.
#[derive(Clone, Debug)]
pub struct Report {
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// RPQ language facts (absent for Cypher reports).
    pub language: Option<LanguageFacts>,
    /// Recommended plan for multi-source evaluation.
    pub plan: PlanAdvice,
    /// `(functionality, class)` rows of the verdict table.
    pub classes: Vec<(&'static str, ComplexityClass)>,
    /// The query provably returns no results on this graph.
    pub provably_empty: bool,
}

impl Report {
    /// An empty report with the standard RPQ class table and a default
    /// sequential plan; analyzers fill in the rest.
    pub fn new() -> Report {
        Report {
            diagnostics: Vec::new(),
            language: None,
            plan: PlanAdvice::Sequential,
            classes: Vec::new(),
            provably_empty: false,
        }
    }

    /// The most severe finding, or `None` when there are no diagnostics.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when any finding is [`Severity::Deny`].
    pub fn denied(&self) -> bool {
        self.max_severity() == Some(Severity::Deny)
    }

    /// True when the query provably returns no results on this graph, so
    /// evaluation can short-circuit without compiling anything.
    pub fn is_provably_empty(&self) -> bool {
        self.provably_empty
    }

    /// True when a `Deny` finding makes exact counting inadvisable
    /// (determinization blowup): `kgq query … count` re-routes to the
    /// FPRAS estimator with a degraded annotation.
    pub fn denies_exact_count(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny && d.code == "dfa-blowup")
    }

    /// Renders the full verdict: each diagnostic with its span caret
    /// (against `input`), then a fixed-width table mapping every
    /// functionality to its complexity class and chosen plan, then the
    /// language facts line.
    pub fn render(&self, input: &str) -> String {
        let mut out = String::new();
        out.push_str("== diagnostics ==\n");
        if self.diagnostics.is_empty() {
            out.push_str("(none)\n");
        }
        for d in &self.diagnostics {
            out.push_str(&d.render(input));
            out.push('\n');
        }
        out.push_str("== verdict ==\n");
        out.push_str(&format!("{:<14} {:<17} plan\n", "functionality", "class"));
        for &(name, class) in &self.classes {
            let plan = self.plan_for(name);
            out.push_str(&format!(
                "{:<14} {:<17} {}\n",
                name,
                class.to_string(),
                plan
            ));
        }
        if let Some(l) = &self.language {
            let lang = if l.empty {
                "empty"
            } else if l.finite {
                "finite"
            } else {
                "infinite"
            };
            let min = if l.minimized {
                "minimized"
            } else {
                "not minimized"
            };
            out.push_str(&format!(
                "language: {lang}; dfa states: {} ({min}); est. product states: {}\n",
                l.dfa_states, l.est_product_states
            ));
        }
        out
    }

    /// The plan string printed for one functionality row of the table.
    pub fn plan_for(&self, functionality: &str) -> String {
        if self.provably_empty {
            return "short-circuit (empty)".to_string();
        }
        match functionality {
            "check" => PlanAdvice::Bidirectional.to_string(),
            "count" if self.denies_exact_count() => "FPRAS (degraded)".to_string(),
            "count" => "exact DP".to_string(),
            "count~" => "Karp-Luby sampling".to_string(),
            "enumerate" => "ordered DFS".to_string(),
            _ => self.plan.to_string(),
        }
    }
}

impl Default for Report {
    fn default() -> Report {
        Report::new()
    }
}

/// Node-count threshold under which the bit-parallel kernel's setup cost
/// is not worth paying (one 64-wide source batch or less).
const SEQUENTIAL_NODE_CUTOFF: usize = 64;

/// Estimated-product-state threshold under which a fused sequential scan
/// beats the kernel sweep.
const SEQUENTIAL_PRODUCT_CUTOFF: u64 = 4096;

/// Three-valued satisfiability of `test` at `pos` against `schema`.
///
/// `Tri::False` is a proof that no node/edge of the summarized graph
/// passes the test under [`crate::model::PathGraph::eval_bool`] semantics
/// for the summarized model; `Tri::True` a proof that every one does.
/// The test is canonicalized with [`simplify_test`] first, so `!!t`
/// behaves like `t`.
pub fn satisfiable(test: &Test, pos: Position, schema: &SchemaSummary) -> Tri {
    tri(&simplify_test(test), pos, schema)
}

fn tri(test: &Test, pos: Position, schema: &SchemaSummary) -> Tri {
    match test {
        Test::Not(x) => tri(x, pos, schema).not(),
        Test::Or(a, b) => tri(a, pos, schema).or(tri(b, pos, schema)),
        Test::And(_, _) => {
            let mut conj = Vec::new();
            conjuncts(test, &mut conj);
            for i in 0..conj.len() {
                for j in i + 1..conj.len() {
                    if contradicts(conj[i], conj[j], schema.model) {
                        return Tri::False;
                    }
                }
            }
            conj.iter()
                .fold(Tri::True, |acc, c| acc.and(tri(c, pos, schema)))
        }
        leaf => leaf_tri(leaf, pos, schema),
    }
}

/// Flattens an `And` tree into its conjunct list (other nodes are leaves
/// of the flattening).
fn conjuncts<'a>(t: &'a Test, out: &mut Vec<&'a Test>) {
    if let Test::And(a, b) = t {
        conjuncts(a, out);
        conjuncts(b, out);
    } else {
        out.push(t);
    }
}

/// A single-position functional-dependency key: every node/edge has
/// exactly one label, one value per property key, and one value per
/// feature slot, so two atoms with equal keys but different values can
/// never hold together.
fn fd_key(t: &Test, model: GraphModel) -> Option<(u8, u64, u32)> {
    match (t, model) {
        (Test::Label(l), GraphModel::Vector) => Some((2, 1, l.0)),
        (Test::Label(l), _) => Some((0, 0, l.0)),
        (Test::Prop(p, v), _) => Some((1, u64::from(p.0), v.0)),
        (Test::Feature(i, v), _) => Some((2, *i as u64, v.0)),
        _ => None,
    }
}

fn contradicts(a: &Test, b: &Test, model: GraphModel) -> bool {
    if let Test::Not(x) = a {
        if **x == *b {
            return true;
        }
    }
    if let Test::Not(x) = b {
        if **x == *a {
            return true;
        }
    }
    match (fd_key(a, model), fd_key(b, model)) {
        (Some((ka, ia, va)), Some((kb, ib, vb))) => ka == kb && ia == ib && va != vb,
        _ => false,
    }
}

fn known_in(present: bool) -> Tri {
    if present {
        Tri::Unknown
    } else {
        Tri::False
    }
}

fn feature_tri(i: usize, v: kgq_graph::Sym, pos: Position, schema: &SchemaSummary) -> Tri {
    if i == 0 || i > schema.feature_dim {
        return Tri::False;
    }
    known_in(match pos {
        Position::Node => schema.has_node_feature(i, v),
        Position::Edge => schema.has_edge_feature(i, v),
    })
}

fn leaf_tri(t: &Test, pos: Position, schema: &SchemaSummary) -> Tri {
    match t {
        Test::Label(l) => match schema.model {
            GraphModel::Vector => feature_tri(1, *l, pos, schema),
            _ => known_in(match pos {
                Position::Node => schema.has_node_label(*l),
                Position::Edge => schema.has_edge_label(*l),
            }),
        },
        Test::Prop(p, v) => match schema.model {
            GraphModel::Property => known_in(match pos {
                Position::Node => schema.has_node_prop_pair(*p, *v),
                Position::Edge => schema.has_edge_prop_pair(*p, *v),
            }),
            _ => Tri::False,
        },
        Test::Feature(i, v) => match schema.model {
            GraphModel::Vector => feature_tri(*i, *v, pos, schema),
            _ => Tri::False,
        },
        // Not/And/Or are handled by `tri`.
        _ => Tri::Unknown,
    }
}

/// Compiles `expr`, removes every transition whose guard is provably
/// unsatisfiable against `schema`, and minimizes the result.
///
/// On the summarized graph the pruned automaton accepts exactly the same
/// paths as the full one (dropped transitions could never fire), so its
/// minimal DFA decides instance-level emptiness:
/// [`MinimizedNfa::is_empty_language`] on the result is the analyzer's
/// emptiness verdict. Star-of-unsatisfiable stays correct — the ε path
/// survives pruning, so `ghost*` still matches every length-0 path.
pub fn pruned_min(expr: &PathExpr, schema: &SchemaSummary) -> MinimizedNfa {
    let nfa = Nfa::compile(expr);
    let mut edges = vec![Vec::new(); nfa.state_count()];
    for (q, list) in nfa.edges.iter().enumerate() {
        for &(label, to) in list {
            let keep = match label {
                Trans::Eps => true,
                Trans::Node(t) => {
                    satisfiable(&nfa.tests[t as usize], Position::Node, schema) != Tri::False
                }
                Trans::Fwd(t) | Trans::Bwd(t) => {
                    satisfiable(&nfa.tests[t as usize], Position::Edge, schema) != Tri::False
                }
            };
            if keep {
                edges[q].push((label, to));
            }
        }
    }
    Nfa {
        edges,
        tests: nfa.tests,
        start: nfa.start,
        accept: nfa.accept,
    }
    .minimize()
}

/// True iff the automaton matches only boundedly long paths: no useful
/// cycle (reachable from the start, co-reachable to the accept) contains
/// an edge-consuming (`Fwd`/`Bwd`) transition. Cycles of node tests and
/// structural ε repeat *words*, not paths, and are ignored.
fn language_is_finite(nfa: &Nfa) -> bool {
    let n = nfa.state_count();
    if n == 0 {
        return true;
    }
    let fwd_reach = reachable(n, nfa.start as usize, |q| {
        nfa.edges[q].iter().map(|&(_, to)| to as usize)
    });
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, list) in nfa.edges.iter().enumerate() {
        for &(_, to) in list {
            rev[to as usize].push(q);
        }
    }
    let bwd_reach = reachable(n, nfa.accept as usize, |q| rev[q].iter().copied());
    let useful: Vec<bool> = (0..n).map(|q| fwd_reach[q] && bwd_reach[q]).collect();
    let comp = sccs(nfa, &useful);
    for (q, list) in nfa.edges.iter().enumerate() {
        if !useful[q] {
            continue;
        }
        for &(label, to) in list {
            let to = to as usize;
            // A transition staying inside one SCC lies on a cycle: a
            // self-loop when q == to, and otherwise the SCC provides the
            // return path to → q.
            if useful[to] && comp[q] == comp[to] && matches!(label, Trans::Fwd(_) | Trans::Bwd(_)) {
                return false;
            }
        }
    }
    true
}

fn reachable<I, F>(n: usize, from: usize, mut succ: F) -> Vec<bool>
where
    I: Iterator<Item = usize>,
    F: FnMut(usize) -> I,
{
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(q) = stack.pop() {
        for r in succ(q) {
            if !seen[r] {
                seen[r] = true;
                stack.push(r);
            }
        }
    }
    seen
}

/// Kosaraju SCC restricted to `useful` states; returns a component id
/// per state (`usize::MAX` for excluded states).
fn sccs(nfa: &Nfa, useful: &[bool]) -> Vec<usize> {
    let n = nfa.state_count();
    // Pass 1: iterative post-order over forward edges.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for root in 0..n {
        if !useful[root] || visited[root] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        visited[root] = true;
        while let Some(&mut (q, ref mut idx)) = stack.last_mut() {
            if *idx < nfa.edges[q].len() {
                let to = nfa.edges[q][*idx].1 as usize;
                *idx += 1;
                if useful[to] && !visited[to] {
                    visited[to] = true;
                    stack.push((to, 0));
                }
            } else {
                order.push(q);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse DFS in reverse post-order assigns components.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, list) in nfa.edges.iter().enumerate() {
        if !useful[q] {
            continue;
        }
        for &(_, to) in list {
            if useful[to as usize] {
                rev[to as usize].push(q);
            }
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        comp[root] = next;
        while let Some(q) = stack.pop() {
            for &r in &rev[q] {
                if comp[r] == usize::MAX {
                    comp[r] = next;
                    stack.push(r);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Renders a test for a diagnostic message: re-parseable syntax when an
/// interner is available, debug form otherwise.
fn test_str(t: &Test, consts: Option<&Interner>) -> String {
    match consts {
        Some(c) => {
            let shown = PathExpr::NodeTest(t.clone()).display(c).to_string();
            shown.strip_prefix('?').unwrap_or(&shown).to_string()
        }
        None => format!("{t:?}"),
    }
}

fn first_leaf_name<'a>(t: &Test, consts: &'a Interner) -> Option<&'a str> {
    match t {
        Test::Label(l) => Some(consts.resolve(*l)),
        Test::Prop(p, _) => Some(consts.resolve(*p)),
        Test::Feature(_, v) => Some(consts.resolve(*v)),
        Test::Not(x) => first_leaf_name(x, consts),
        Test::And(a, b) | Test::Or(a, b) => {
            first_leaf_name(a, consts).or_else(|| first_leaf_name(b, consts))
        }
    }
}

fn span_of_test(t: &Test, text: &str, consts: &Interner) -> Option<(usize, usize)> {
    let name = first_leaf_name(t, consts)?;
    text.find(name).map(|p| (p, name.len()))
}

fn unsat_message(
    t: &Test,
    pos: Position,
    schema: &SchemaSummary,
    consts: Option<&Interner>,
) -> String {
    let what = match pos {
        Position::Node => "node",
        Position::Edge => "edge",
    };
    let shown = test_str(t, consts);
    match t {
        Test::Label(_) if schema.model != GraphModel::Vector => {
            format!("label `{shown}` labels no {what} in this graph")
        }
        Test::Prop(_, _) if schema.model != GraphModel::Property => {
            format!("property test `{shown}` is constant-false outside the property-graph model")
        }
        Test::Prop(_, _) => {
            format!("property pair `{shown}` never occurs on any {what}")
        }
        Test::Feature(_, _) if schema.model != GraphModel::Vector => {
            format!("feature test `{shown}` is constant-false outside the vector model")
        }
        Test::Feature(i, _) if *i == 0 || *i > schema.feature_dim => {
            format!(
                "feature index {i} in `{shown}` is out of range (vector dimension is {})",
                schema.feature_dim
            )
        }
        Test::Feature(_, _) | Test::Label(_) => {
            format!("feature value in `{shown}` never occurs on any {what}")
        }
        _ => format!(
            "test `{shown}` is unsatisfiable on any {what} (contradictory or out of schema)"
        ),
    }
}

/// Walks the atoms of `expr`, calling `f` with each atom's test and its
/// [`Position`].
fn for_each_atom<'a>(expr: &'a PathExpr, f: &mut impl FnMut(&'a Test, Position)) {
    match expr {
        PathExpr::NodeTest(t) => f(t, Position::Node),
        PathExpr::Forward(t) | PathExpr::Backward(t) => f(t, Position::Edge),
        PathExpr::Alt(a, b) | PathExpr::Concat(a, b) => {
            for_each_atom(a, f);
            for_each_atom(b, f);
        }
        PathExpr::Star(r) => for_each_atom(r, f),
    }
}

/// The standard RPQ functionality/class table (paper §5).
fn rpq_classes() -> Vec<(&'static str, ComplexityClass)> {
    vec![
        ("check", ComplexityClass::Nl),
        ("pairs", ComplexityClass::Nl),
        ("count", ComplexityClass::SpanL),
        ("count~", ComplexityClass::Fpras),
        ("enumerate", ComplexityClass::PolyDelay),
    ]
}

/// Runs every RPQ analysis on `expr` against `schema` and assembles the
/// [`Report`].
///
/// `source`, when given, is the original query text plus the interner
/// used to parse it; it enables byte-span carets and symbol names in
/// messages. The expression is canonicalized with [`simplify`] first —
/// the same normalization the [`crate::cache::QueryCache`] applies — so
/// the verdict describes exactly what would be compiled.
pub fn analyze_expr(
    expr: &PathExpr,
    schema: &SchemaSummary,
    source: Option<(&str, &Interner)>,
) -> Report {
    let expr = simplify(expr);
    let mut diags: Vec<Diagnostic> = Vec::new();

    // (b) Unsatisfiable atom tests.
    for_each_atom(&expr, &mut |t, pos| {
        if satisfiable(t, pos, schema) == Tri::False {
            let message = unsat_message(t, pos, schema, source.map(|(_, c)| c));
            if diags.iter().any(|d| d.message == message) {
                return;
            }
            let span = source.and_then(|(text, c)| span_of_test(t, text, c));
            diags.push(Diagnostic {
                severity: Severity::Warn,
                code: "unsat-test",
                message,
                span,
            });
        }
    });

    // (a) Emptiness of the pruned language.
    let pruned = pruned_min(&expr, schema);
    let empty = pruned.is_empty_language();

    // (c) Blowup of the automaton the cache would actually compile.
    let full = Nfa::compile_min(&expr);
    let dfa_states = full.signature.state_count();
    if !full.minimized {
        diags.push(Diagnostic {
            severity: Severity::Deny,
            code: "dfa-blowup",
            message: format!(
                "subset construction exceeds the {MAX_DFA_STATES}-state cap; \
                 exact counting would determinize an oversized product, \
                 re-routing to the FPRAS estimator"
            ),
            span: None,
        });
    }
    let finite = empty || language_is_finite(&pruned.nfa);
    if !finite {
        diags.push(Diagnostic {
            severity: Severity::Note,
            code: "infinite-language",
            message: "the language is infinite (a useful cycle consumes edges); \
                      per-length counts are unbounded"
                .to_string(),
            span: None,
        });
    }
    if empty {
        let span = source.map(|(text, _)| (0, text.trim_end().len().max(1)));
        diags.insert(
            0,
            Diagnostic {
                severity: Severity::Deny,
                code: "empty-language",
                message: "the expression matches no path of this graph; \
                          evaluation short-circuits to an empty result"
                    .to_string(),
                span,
            },
        );
    }

    // (c) Plan advice from frontier-cost estimates.
    let est_product_states = schema.node_count as u64 * dfa_states.max(1) as u64;
    let plan = if empty
        || schema.node_count <= SEQUENTIAL_NODE_CUTOFF
        || est_product_states <= SEQUENTIAL_PRODUCT_CUTOFF
    {
        PlanAdvice::Sequential
    } else {
        PlanAdvice::BitParallel
    };

    Report {
        diagnostics: diags,
        language: Some(LanguageFacts {
            empty,
            finite,
            minimized: full.minimized,
            dfa_states,
            est_product_states,
        }),
        plan,
        classes: rpq_classes(),
        provably_empty: empty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::model::{LabeledView, PropertyView, VectorView};
    use crate::parser::parse_expr;
    use kgq_graph::figures::{figure2_labeled, figure2_property, figure2_vector};

    fn labeled_setup(expr: &str) -> (kgq_graph::LabeledGraph, PathExpr) {
        let mut g = figure2_labeled();
        let e = parse_expr(expr, g.consts_mut()).unwrap();
        (g, e)
    }

    #[test]
    fn absent_label_is_provably_empty_and_agrees_with_eval() {
        let (g, e) = labeled_setup("ghost/rides");
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&e, &schema, Some(("ghost/rides", g.consts())));
        assert!(report.is_provably_empty());
        assert!(report.denied());
        assert!(Evaluator::new(&LabeledView::new(&g), &e).pairs().is_empty());
        let rendered = report.render("ghost/rides");
        assert!(rendered.contains("deny[empty-language]"), "{rendered}");
        assert!(rendered.contains("warn[unsat-test]"), "{rendered}");
        assert!(rendered.contains('^'), "caret missing: {rendered}");
        assert!(rendered.contains("short-circuit (empty)"), "{rendered}");
    }

    #[test]
    fn contradictory_conjunction_is_unsatisfiable() {
        let (g, e) = labeled_setup("{rides & !rides}");
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&e, &schema, Some(("{rides & !rides}", g.consts())));
        assert!(report.is_provably_empty());
        assert!(Evaluator::new(&LabeledView::new(&g), &e).pairs().is_empty());
    }

    #[test]
    fn distinct_label_conjunction_contradicts() {
        let (g, e) = labeled_setup("?{person & bus}");
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&e, &schema, None);
        // A node has exactly one label, so `person ∧ bus` never holds.
        assert!(report.is_provably_empty());
        assert!(Evaluator::new(&LabeledView::new(&g), &e).pairs().is_empty());
    }

    #[test]
    fn star_of_unsatisfiable_is_not_empty() {
        let (g, e) = labeled_setup("(ghost)*");
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&e, &schema, None);
        // ε survives: every node matches the length-0 path.
        assert!(!report.is_provably_empty());
        assert_eq!(
            Evaluator::new(&LabeledView::new(&g), &e).pairs().len(),
            g.node_count()
        );
        // The dead star body is still flagged.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "unsat-test" && d.severity == Severity::Warn));
    }

    #[test]
    fn finiteness_classification() {
        let (g, chain) = labeled_setup("rides/contact");
        let schema = SchemaSummary::from_labeled(&g);
        let r = analyze_expr(&chain, &schema, None);
        assert!(r.language.unwrap().finite);

        let (g2, inf) = labeled_setup("(rides + contact)*");
        let r2 = analyze_expr(&inf, &SchemaSummary::from_labeled(&g2), None);
        let facts = r2.language.unwrap();
        assert!(!facts.empty);
        assert!(!facts.finite);
        assert!(r2.diagnostics.iter().any(|d| d.code == "infinite-language"));
    }

    #[test]
    fn node_test_star_is_finite() {
        // A cycle of node tests repeats words, not paths.
        let (g, e) = labeled_setup("(?person)*");
        let r = analyze_expr(&e, &SchemaSummary::from_labeled(&g), None);
        assert!(r.language.unwrap().finite);
    }

    #[test]
    fn blowup_denies_exact_count() {
        let mut g = kgq_graph::generate::gnm_labeled(20, 80, &["v"], &["p", "q"], 3);
        let text = "(p+q)*/p".to_string() + &"/(p+q)".repeat(13);
        let e = parse_expr(&text, g.consts_mut()).unwrap();
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&e, &schema, None);
        assert!(report.denies_exact_count());
        assert!(!report.language.unwrap().minimized);
        assert!(report.render(&text).contains("FPRAS (degraded)"));
    }

    #[test]
    fn property_and_feature_tests_are_model_aware() {
        let g = figure2_property();
        let schema = SchemaSummary::from_property(&g);
        // A property key that exists with a value that never occurs.
        let mut lg = figure2_property();
        let e = parse_expr("[date='2999-01-01']", lg.labeled_mut().consts_mut()).unwrap();
        let report = analyze_expr(&e, &schema, None);
        assert!(report.is_provably_empty());
        assert!(Evaluator::new(&PropertyView::new(&lg), &e)
            .pairs()
            .is_empty());

        // Feature tests are constant-false outside the vector model.
        let e2 = parse_expr("[#1='person']", lg.labeled_mut().consts_mut()).unwrap();
        let r2 = analyze_expr(&e2, &schema, None);
        assert!(r2.is_provably_empty());

        // On the vector model feature 1 doubles as the label universe.
        let vg = figure2_vector();
        let vschema = SchemaSummary::from_vector(&vg);
        let e3 = parse_expr("?person", figure2_vector().consts_mut()).unwrap();
        let r3 = analyze_expr(&e3, &vschema, None);
        assert!(!r3.is_provably_empty());
        assert!(!Evaluator::new(&VectorView::new(&vg), &e3)
            .pairs()
            .is_empty());
    }

    #[test]
    fn plan_advice_scales_with_graph_size() {
        let (g, e) = labeled_setup("rides");
        let r = analyze_expr(&e, &SchemaSummary::from_labeled(&g), None);
        assert_eq!(r.plan, PlanAdvice::Sequential);

        let mut big = kgq_graph::generate::gnm_labeled(2000, 8000, &["a"], &["p"], 1);
        let ebig = parse_expr("p/p/p", big.consts_mut()).unwrap();
        let rbig = analyze_expr(&ebig, &SchemaSummary::from_labeled(&big), None);
        assert_eq!(rbig.plan, PlanAdvice::BitParallel);
    }

    #[test]
    fn true_verdicts_via_negation() {
        let (g, _) = labeled_setup("rides");
        let schema = SchemaSummary::from_labeled(&g);
        let mut g2 = figure2_labeled();
        let e = parse_expr("?{!ghost}", g2.consts_mut()).unwrap();
        let PathExpr::NodeTest(t) = &e else {
            panic!("expected node test")
        };
        assert_eq!(satisfiable(t, Position::Node, &schema), Tri::True);
    }

    #[test]
    fn diagnostic_render_has_parse_error_shape() {
        let d = Diagnostic {
            severity: Severity::Warn,
            code: "unsat-test",
            message: "label `ghost` labels no edge in this graph".to_string(),
            span: Some((7, 5)),
        };
        let r = d.render("?person/ghost");
        assert_eq!(
            r,
            "warn[unsat-test]: label `ghost` labels no edge in this graph\n  ?person/ghost\n         ^"
        );
        // Span-free diagnostics render as the bare message.
        let d2 = Diagnostic { span: None, ..d };
        assert_eq!(d2.render("x"), d2.to_string());
    }
}
