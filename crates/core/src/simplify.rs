//! Semantics-preserving simplification of path expressions.
//!
//! Query texts (and generated expressions) often contain redundant
//! structure that inflates the Thompson NFA and hence every product
//! built from it. [`simplify`] applies rewrite rules bottom-up until a
//! fixpoint, each preserving `⟦r⟧` exactly:
//!
//! | rule | rationale |
//! |------|-----------|
//! | `(r*)* → r*` | star idempotence |
//! | `(r* + s)* → (r + s)*` (either side) | inner stars are absorbed |
//! | `r + r → r` | alternation idempotence (syntactic equality) |
//! | `r + r* → r*` (either side) | star absorbs its body |
//! | `r* / r* → r*` | star concatenation absorption |
//! | `¬¬t → t` in tests | double negation |

use crate::expr::{PathExpr, Test};

/// Canonicalizes a boolean test: `¬¬x → x`, and `x ∧ x → x` / `x ∨ x → x`
/// under syntactic equality. Used by [`simplify`] on every atom and by the
/// static analyzer (`crate::analyze`) before satisfiability checks, so
/// diagnostics describe the same test the compiler would see.
pub fn simplify_test(t: &Test) -> Test {
    match t {
        Test::Not(inner) => match simplify_test(inner) {
            // ¬¬x = x
            Test::Not(x) => *x,
            other => Test::Not(Box::new(other)),
        },
        Test::And(a, b) => {
            let (a, b) = (simplify_test(a), simplify_test(b));
            if a == b {
                a
            } else {
                Test::And(Box::new(a), Box::new(b))
            }
        }
        Test::Or(a, b) => {
            let (a, b) = (simplify_test(a), simplify_test(b));
            if a == b {
                a
            } else {
                Test::Or(Box::new(a), Box::new(b))
            }
        }
        leaf => leaf.clone(),
    }
}

/// One bottom-up rewrite pass.
fn pass(e: &PathExpr) -> PathExpr {
    match e {
        PathExpr::NodeTest(t) => PathExpr::NodeTest(simplify_test(t)),
        PathExpr::Forward(t) => PathExpr::Forward(simplify_test(t)),
        PathExpr::Backward(t) => PathExpr::Backward(simplify_test(t)),
        PathExpr::Alt(a, b) => {
            let (a, b) = (pass(a), pass(b));
            if a == b {
                return a;
            }
            // r + r* ≡ r* (and symmetrically): the star already matches
            // every path one copy of r does.
            if let PathExpr::Star(x) = &b {
                if **x == a {
                    return b;
                }
            }
            if let PathExpr::Star(x) = &a {
                if **x == b {
                    return a;
                }
            }
            a.alt(b)
        }
        PathExpr::Concat(a, b) => {
            let (a, b) = (pass(a), pass(b));
            // r* / r* ≡ r*  (both sides describe concatenations of r's)
            if let (PathExpr::Star(x), PathExpr::Star(y)) = (&a, &b) {
                if x == y {
                    return a;
                }
            }
            a.concat(b)
        }
        PathExpr::Star(inner) => {
            let inner = pass(inner);
            match inner {
                // (r*)* = r*
                PathExpr::Star(_) => inner,
                // (r* + s)* = (r + s)* and symmetrically.
                PathExpr::Alt(a, b) => {
                    let a = match *a {
                        PathExpr::Star(x) => *x,
                        other => other,
                    };
                    let b = match *b {
                        PathExpr::Star(x) => *x,
                        other => other,
                    };
                    a.alt(b).star()
                }
                other => other.star(),
            }
        }
    }
}

/// Simplifies `e` to a fixpoint. The result matches exactly the same
/// paths (checked by property tests), usually with fewer atoms and NFA
/// states.
pub fn simplify(e: &PathExpr) -> PathExpr {
    let mut cur = e.clone();
    loop {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use kgq_graph::Interner;

    fn simp(text: &str) -> (String, usize, usize) {
        let mut it = Interner::new();
        let e = parse_expr(text, &mut it).unwrap();
        let s = simplify(&e);
        (
            format!("{}", s.display(&it)),
            e.atom_count(),
            s.atom_count(),
        )
    }

    #[test]
    fn star_idempotence_collapses() {
        let (s, _, _) = simp("((a*)*)*");
        assert_eq!(s, "(a)*");
    }

    #[test]
    fn inner_stars_absorbed_into_outer_star() {
        let (s, _, _) = simp("(a* + b)*");
        assert_eq!(s, "((a + b))*");
        let (s, _, _) = simp("(a + b*)*");
        assert_eq!(s, "((a + b))*");
    }

    #[test]
    fn duplicate_alternatives_merge() {
        let (s, before, after) = simp("a + a");
        assert_eq!(s, "a");
        assert_eq!(before, 2);
        assert_eq!(after, 1);
        // Nested duplicates found after inner simplification.
        let (s, _, _) = simp("(a*)* + a*");
        assert_eq!(s, "(a)*");
    }

    #[test]
    fn star_absorbs_its_own_body() {
        let (s, before, after) = simp("a + a*");
        assert_eq!(s, "(a)*");
        assert_eq!(before, 2);
        assert_eq!(after, 1);
        let (s, _, _) = simp("a* + a");
        assert_eq!(s, "(a)*");
        // Found after inner rewrites expose the shared body.
        let (s, _, _) = simp("(a + a) + (a*)*");
        assert_eq!(s, "(a)*");
        // A star of a *different* body absorbs nothing.
        let (s, _, _) = simp("a + b*");
        assert_eq!(s, "(a + (b)*)");
    }

    #[test]
    fn star_concat_absorption() {
        let (s, _, _) = simp("a*/a*");
        assert_eq!(s, "(a)*");
        // Different bodies are untouched.
        let (s, _, _) = simp("a*/b*");
        assert_eq!(s, "(a)*/(b)*");
    }

    #[test]
    fn double_negation_in_tests() {
        let (s, _, _) = simp("{!!a}");
        assert_eq!(s, "a");
        let (s, _, _) = simp("?{!!{a | a}}");
        assert_eq!(s, "?a");
    }

    #[test]
    fn already_simple_expressions_are_fixed_points() {
        for text in ["?person/rides/?bus", "(a + b)*", "a^-/b"] {
            let mut it = Interner::new();
            let e = parse_expr(text, &mut it).unwrap();
            assert_eq!(simplify(&e), e, "{text}");
        }
    }
}
