//! Path regular expressions — grammar (1) of the paper, with the property
//! and feature extensions of Section 4.
//!
//! ```text
//! test ::= ℓ | (p = v) | (f_i = v) | (¬test) | (test ∨ test) | (test ∧ test)
//! r    ::= ?test | test | test⁻ | (r + r) | (r / r) | (r*)
//! ```
//!
//! * `?test` checks the label (or properties/features) of a **node** and
//!   matches a path of length 0;
//! * `test` follows one **edge** forward whose label/properties/features
//!   satisfy the test; `test⁻` follows one edge backward;
//! * `+` is alternation, `/` concatenation, `*` Kleene star.
//!
//! Tests are built over interned [`Sym`] constants; which test kinds are
//! meaningful depends on the data model ([`Test::requires`]): label tests
//! work on every model, `(p = v)` needs a property graph, `(f_i = v)` a
//! vector-labeled graph.

use kgq_graph::Sym;
use std::fmt;

/// A boolean test on a node or an edge.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Test {
    /// `ℓ` — the label equals `ℓ`.
    Label(Sym),
    /// `(p = v)` — property `p` has value `v` (property graphs).
    Prop(Sym, Sym),
    /// `(f_i = v)` — the `i`-th feature (1-based, as in the paper) equals
    /// `v` (vector-labeled graphs).
    Feature(usize, Sym),
    /// `(¬ test)`.
    Not(Box<Test>),
    /// `(test ∧ test)`.
    And(Box<Test>, Box<Test>),
    /// `(test ∨ test)`.
    Or(Box<Test>, Box<Test>),
}

/// The capabilities a test requires from the data model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Requirements {
    /// Uses `(p = v)` somewhere.
    pub properties: bool,
    /// Uses `(f_i = v)` somewhere; holds the maximum 1-based index seen.
    pub max_feature: usize,
    /// Uses a plain label test somewhere.
    pub labels: bool,
}

impl Requirements {
    fn merge(self, other: Requirements) -> Requirements {
        Requirements {
            properties: self.properties || other.properties,
            max_feature: self.max_feature.max(other.max_feature),
            labels: self.labels || other.labels,
        }
    }
}

impl Test {
    /// What this test needs from the underlying graph model.
    pub fn requires(&self) -> Requirements {
        match self {
            Test::Label(_) => Requirements {
                labels: true,
                ..Requirements::default()
            },
            Test::Prop(_, _) => Requirements {
                properties: true,
                ..Requirements::default()
            },
            Test::Feature(i, _) => Requirements {
                max_feature: *i,
                ..Requirements::default()
            },
            Test::Not(t) => t.requires(),
            Test::And(a, b) | Test::Or(a, b) => a.requires().merge(b.requires()),
        }
    }

    /// Convenience constructor: `¬ self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Test {
        Test::Not(Box::new(self))
    }

    /// Convenience constructor: `self ∧ other`.
    pub fn and(self, other: Test) -> Test {
        Test::And(Box::new(self), Box::new(other))
    }

    /// Convenience constructor: `self ∨ other`.
    pub fn or(self, other: Test) -> Test {
        Test::Or(Box::new(self), Box::new(other))
    }
}

/// A path regular expression (grammar (1) of the paper).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PathExpr {
    /// `?test` — a node test; matches length-0 paths.
    NodeTest(Test),
    /// `test` — follow one edge forward.
    Forward(Test),
    /// `test⁻` — follow one edge backward.
    Backward(Test),
    /// `(r + r)` — alternation.
    Alt(Box<PathExpr>, Box<PathExpr>),
    /// `(r / r)` — concatenation.
    Concat(Box<PathExpr>, Box<PathExpr>),
    /// `(r*)` — Kleene star.
    Star(Box<PathExpr>),
}

impl PathExpr {
    /// `self + other`.
    pub fn alt(self, other: PathExpr) -> PathExpr {
        PathExpr::Alt(Box::new(self), Box::new(other))
    }

    /// `self / other`.
    pub fn concat(self, other: PathExpr) -> PathExpr {
        PathExpr::Concat(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> PathExpr {
        PathExpr::Star(Box::new(self))
    }

    /// Union of the requirements of all tests in the expression.
    pub fn requires(&self) -> Requirements {
        match self {
            PathExpr::NodeTest(t) | PathExpr::Forward(t) | PathExpr::Backward(t) => t.requires(),
            PathExpr::Alt(a, b) | PathExpr::Concat(a, b) => a.requires().merge(b.requires()),
            PathExpr::Star(r) => r.requires(),
        }
    }

    /// Number of atoms (`?test`, `test`, `test⁻`) in the expression — the
    /// size measure `|r|` used in complexity statements.
    pub fn atom_count(&self) -> usize {
        match self {
            PathExpr::NodeTest(_) | PathExpr::Forward(_) | PathExpr::Backward(_) => 1,
            PathExpr::Alt(a, b) | PathExpr::Concat(a, b) => a.atom_count() + b.atom_count(),
            PathExpr::Star(r) => r.atom_count(),
        }
    }

    /// True if the expression can match a path of length 0 *structurally*
    /// (i.e. ignoring whether any node passes the tests).
    pub fn nullable(&self) -> bool {
        match self {
            PathExpr::NodeTest(_) => true,
            PathExpr::Forward(_) | PathExpr::Backward(_) => false,
            PathExpr::Alt(a, b) => a.nullable() || b.nullable(),
            PathExpr::Concat(a, b) => a.nullable() && b.nullable(),
            PathExpr::Star(_) => true,
        }
    }
}

/// Pretty-printer that resolves symbols through an interner.
pub struct DisplayExpr<'a> {
    expr: &'a PathExpr,
    consts: &'a kgq_graph::Interner,
}

impl PathExpr {
    /// Returns a displayable view of the expression using `consts` to
    /// resolve symbols.
    pub fn display<'a>(&'a self, consts: &'a kgq_graph::Interner) -> DisplayExpr<'a> {
        DisplayExpr { expr: self, consts }
    }
}

/// A bare identifier if lexable as one, otherwise single-quoted.
fn fmt_const(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let ident = !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_');
    if ident {
        write!(f, "{s}")
    } else {
        write!(f, "'{s}'")
    }
}

/// Inner boolean syntax (valid inside `{…}`).
fn fmt_test_inner(
    t: &Test,
    consts: &kgq_graph::Interner,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match t {
        Test::Label(l) => fmt_const(consts.resolve(*l), f),
        Test::Prop(p, v) => {
            write!(f, "[")?;
            fmt_const(consts.resolve(*p), f)?;
            write!(f, "=")?;
            fmt_const(consts.resolve(*v), f)?;
            write!(f, "]")
        }
        Test::Feature(i, v) => {
            write!(f, "[#{i}=")?;
            fmt_const(consts.resolve(*v), f)?;
            write!(f, "]")
        }
        Test::Not(t) => {
            write!(f, "!")?;
            match t.as_ref() {
                Test::And(_, _) | Test::Or(_, _) => {
                    write!(f, "{{")?;
                    fmt_test_inner(t, consts, f)?;
                    write!(f, "}}")
                }
                _ => fmt_test_inner(t, consts, f),
            }
        }
        Test::And(a, b) => {
            fmt_binary_side(a, consts, f)?;
            write!(f, " & ")?;
            fmt_binary_side(b, consts, f)
        }
        Test::Or(a, b) => {
            fmt_binary_side(a, consts, f)?;
            write!(f, " | ")?;
            fmt_binary_side(b, consts, f)
        }
    }
}

/// Operands of `&`/`|`: wrap nested binary tests in `{…}` (the grammar
/// has no precedence between `&` and `|` beyond the nesting).
fn fmt_binary_side(
    t: &Test,
    consts: &kgq_graph::Interner,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match t {
        Test::And(_, _) | Test::Or(_, _) => {
            write!(f, "{{")?;
            fmt_test_inner(t, consts, f)?;
            write!(f, "}}")
        }
        _ => fmt_test_inner(t, consts, f),
    }
}

/// Atom-level test syntax: leaves print bare, boolean structure is
/// wrapped in `{…}` so the output re-parses with [`crate::parser`].
fn fmt_test(t: &Test, consts: &kgq_graph::Interner, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Test::Label(_) | Test::Prop(_, _) | Test::Feature(_, _) => fmt_test_inner(t, consts, f),
        _ => {
            write!(f, "{{")?;
            fmt_test_inner(t, consts, f)?;
            write!(f, "}}")
        }
    }
}

fn fmt_expr(e: &PathExpr, consts: &kgq_graph::Interner, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        PathExpr::NodeTest(t) => {
            write!(f, "?")?;
            fmt_test(t, consts, f)
        }
        PathExpr::Forward(t) => fmt_test(t, consts, f),
        PathExpr::Backward(t) => {
            fmt_test(t, consts, f)?;
            write!(f, "^-")
        }
        PathExpr::Alt(a, b) => {
            write!(f, "(")?;
            fmt_expr(a, consts, f)?;
            write!(f, " + ")?;
            fmt_expr(b, consts, f)?;
            write!(f, ")")
        }
        PathExpr::Concat(a, b) => {
            fmt_expr(a, consts, f)?;
            write!(f, "/")?;
            fmt_expr(b, consts, f)
        }
        PathExpr::Star(r) => {
            write!(f, "(")?;
            fmt_expr(r, consts, f)?;
            write!(f, ")*")
        }
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.expr, self.consts, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::Interner;

    fn syms() -> (Interner, Sym, Sym, Sym) {
        let mut it = Interner::new();
        let person = it.intern("person");
        let rides = it.intern("rides");
        let bus = it.intern("bus");
        (it, person, rides, bus)
    }

    #[test]
    fn nullable_follows_structure() {
        let (_, person, rides, _) = syms();
        assert!(PathExpr::NodeTest(Test::Label(person)).nullable());
        assert!(!PathExpr::Forward(Test::Label(rides)).nullable());
        assert!(PathExpr::Forward(Test::Label(rides)).star().nullable());
        let seq =
            PathExpr::NodeTest(Test::Label(person)).concat(PathExpr::Forward(Test::Label(rides)));
        assert!(!seq.nullable());
        let alt =
            PathExpr::Forward(Test::Label(rides)).alt(PathExpr::NodeTest(Test::Label(person)));
        assert!(alt.nullable());
    }

    #[test]
    fn atom_count_measures_size() {
        let (_, person, rides, bus) = syms();
        // ?person / rides / ?bus / rides⁻ / ?person  — 5 atoms
        let r = PathExpr::NodeTest(Test::Label(person))
            .concat(PathExpr::Forward(Test::Label(rides)))
            .concat(PathExpr::NodeTest(Test::Label(bus)))
            .concat(PathExpr::Backward(Test::Label(rides)))
            .concat(PathExpr::NodeTest(Test::Label(person)));
        assert_eq!(r.atom_count(), 5);
    }

    #[test]
    fn requirements_propagate() {
        let (mut it, person, rides, _) = syms();
        let date = it.intern("date");
        let v = it.intern("3/4/21");
        let r = PathExpr::NodeTest(Test::Label(person)).concat(PathExpr::Forward(
            Test::Label(rides).and(Test::Prop(date, v)),
        ));
        let req = r.requires();
        assert!(req.labels);
        assert!(req.properties);
        assert_eq!(req.max_feature, 0);

        let rf = PathExpr::Forward(Test::Feature(5, v));
        assert_eq!(rf.requires().max_feature, 5);
    }

    #[test]
    fn display_round_trips_shape() {
        let (it, person, rides, bus) = syms();
        let r = PathExpr::NodeTest(Test::Label(person))
            .concat(PathExpr::Forward(Test::Label(rides)))
            .concat(PathExpr::NodeTest(Test::Label(bus)))
            .concat(PathExpr::Backward(Test::Label(rides)));
        let s = format!("{}", r.display(&it));
        assert_eq!(s, "?person/rides/?bus/rides^-");
    }

    #[test]
    fn boolean_test_display_is_parser_syntax() {
        let (it, person, rides, _) = syms();
        let t = Test::Label(rides).not().and(Test::Label(person));
        let r = PathExpr::Forward(t);
        assert_eq!(format!("{}", r.display(&it)), "{!rides & person}");
    }

    #[test]
    fn display_quotes_non_identifier_constants() {
        let mut it = Interner::new();
        let date = it.intern("date");
        let v = it.intern("3/4/21");
        let r = PathExpr::Forward(Test::Prop(date, v));
        assert_eq!(format!("{}", r.display(&it)), "[date='3/4/21']");
        let f = PathExpr::NodeTest(Test::Feature(5, v));
        assert_eq!(format!("{}", f.display(&it)), "?[#5='3/4/21']");
    }
}
