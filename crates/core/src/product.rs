//! Product automata: graph × NFA and its determinization.
//!
//! A path `p = n₀ e₁ … e_k n_k` is encoded as the *word* `n₀ e₁ … e_k`
//! over the alphabet `N ∪ E` (the start node followed by the edge
//! sequence; see [`crate::path`]). The [`Product`] automaton accepts
//! exactly the words encoding paths in `⟦r⟧`:
//!
//! * product states are pairs `(graph node, NFA state)`;
//! * reading the first symbol `n₀` enters `(n₀, q)` for every `q` in the
//!   *guarded ε-closure* of the NFA start state at `n₀` (ε-transitions
//!   plus `Node(test)` transitions whose test `n₀` passes);
//! * reading an edge symbol `e` from `(n, q)` follows a consuming NFA
//!   transition whose test `e` passes in the matching direction, then
//!   closes again at the new node.
//!
//! Transitions are stored in a flat CSR layout (one offset array plus one
//! contiguous target array per direction, mirroring `kgq_graph::csr`):
//! `out(s)` and `preds(s)` are slices into shared backing vectors instead
//! of per-state heap allocations. The DP passes in [`crate::count`],
//! [`crate::approx`] and [`crate::gen`] stream over these slices, so the
//! layout keeps them cache-friendly and makes the product cheap to share
//! across threads ([`crate::eval::Evaluator::pairs`]).
//!
//! Because several NFA runs can accept the same word, counting accepting
//! runs of the product over-counts *paths*. [`DetProduct`] applies the
//! subset construction — states `(node, set of NFA states)` — after which
//! each word has exactly one run, making dynamic-programming counts exact.
//! Determinization is worst-case exponential in the NFA size, consistent
//! with the SpanL-hardness of exact counting cited by the paper (§4.1);
//! the FPRAS ([`crate::approx`]) works on the nondeterministic [`Product`]
//! and stays polynomial.

use crate::automata::{Nfa, Trans};
use crate::govern::{fault_point, Governor, Interrupt, MemMeter, Ticker};
use crate::model::PathGraph;
use kgq_graph::{EdgeId, NodeId};
use std::collections::HashMap;

/// Coarse per-product-state memory charge: the `(node, q)` pair, the
/// interning map entry, and CSR slot overhead.
const STATE_BYTES: u64 = 48;
/// Coarse per-transition charge: one forward and one reverse CSR entry.
const TRANS_BYTES: u64 = 16;

/// Index of a product state.
pub type PState = u32;

/// Flattens per-index lists into a CSR (offsets, flat items) pair.
fn flatten<T: Copy>(lists: &[Vec<T>]) -> (Vec<u32>, Vec<T>) {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut off = Vec::with_capacity(lists.len() + 1);
    let mut flat = Vec::with_capacity(total);
    off.push(0u32);
    for list in lists {
        flat.extend_from_slice(list);
        off.push(flat.len() as u32);
    }
    (off, flat)
}

/// The nondeterministic product of a graph and an NFA.
///
/// Stored in flat CSR form: all per-state adjacency lives in two shared
/// vectors per direction, addressed through offset arrays.
#[derive(Clone, Debug)]
pub struct Product {
    /// `(graph node, NFA state)` per product state.
    states: Vec<(NodeId, u32)>,
    /// CSR offsets into `out_tr`: state `s` owns `out_tr[out_off[s]..out_off[s+1]]`.
    out_off: Vec<u32>,
    /// Consuming transitions `(edge, successor)`, sorted and deduplicated
    /// per state.
    out_tr: Vec<(EdgeId, PState)>,
    /// CSR offsets into `pred_tr`.
    pred_off: Vec<u32>,
    /// Reverse transitions `(predecessor, edge)`, sorted per state.
    pred_tr: Vec<(PState, EdgeId)>,
    /// Accepting product states.
    accepting: Vec<bool>,
    /// CSR offsets into `init_states`, one slot per graph node.
    init_off: Vec<u32>,
    /// Product states entered on reading each node symbol.
    init_states: Vec<PState>,
}

/// Guarded ε-closure of `seed` NFA states at graph node `n`.
fn closure<G: PathGraph>(g: &G, nfa: &Nfa, n: NodeId, seed: &[u32]) -> Vec<u32> {
    let mut seen = vec![false; nfa.state_count()];
    let mut stack: Vec<u32> = Vec::new();
    for &q in seed {
        if !seen[q as usize] {
            seen[q as usize] = true;
            stack.push(q);
        }
    }
    let mut result = stack.clone();
    while let Some(q) = stack.pop() {
        for &(label, to) in &nfa.edges[q as usize] {
            let pass = match label {
                Trans::Eps => true,
                Trans::Node(t) => g.node_test(n, &nfa.tests[t as usize]),
                Trans::Fwd(_) | Trans::Bwd(_) => false,
            };
            if pass && !seen[to as usize] {
                seen[to as usize] = true;
                stack.push(to);
                result.push(to);
            }
        }
    }
    result.sort_unstable();
    result
}

impl Product {
    /// Builds the product reachable from every graph node as a source.
    pub fn build<G: PathGraph>(g: &G, nfa: &Nfa) -> Product {
        let all: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).collect();
        Product::build_from(g, nfa, &all)
    }

    /// Builds the product reachable from the given source nodes.
    pub fn build_from<G: PathGraph>(g: &G, nfa: &Nfa, sources: &[NodeId]) -> Product {
        match Product::build_from_governed(g, nfa, sources, None) {
            Ok(p) => p,
            // Unreachable: without a governor nothing interrupts the build.
            Err(i) => unreachable!("ungoverned product build interrupted: {i}"),
        }
    }

    /// Builds the full product under `gov`'s budget; interning work is
    /// charged as steps and the growing CSR as memory.
    pub fn build_governed<G: PathGraph>(
        g: &G,
        nfa: &Nfa,
        gov: &Governor,
    ) -> Result<Product, Interrupt> {
        let all: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).collect();
        Product::build_from_governed(g, nfa, &all, Some(gov))
    }

    /// Governed worklist interning loop shared by the public builders.
    fn build_from_governed<G: PathGraph>(
        g: &G,
        nfa: &Nfa,
        sources: &[NodeId],
        gov: Option<&Governor>,
    ) -> Result<Product, Interrupt> {
        fault_point!("product::build");
        let mut ticker = Ticker::maybe(gov);
        let mut mem = MemMeter::maybe(gov);
        let mut states: Vec<(NodeId, u32)> = Vec::new();
        let mut index: HashMap<(u32, u32), PState> = HashMap::new();
        let mut out: Vec<Vec<(EdgeId, PState)>> = Vec::new();
        let mut initial: Vec<Vec<PState>> = vec![Vec::new(); g.node_count()];
        let mut worklist: Vec<PState> = Vec::new();

        let mut intern = |n: NodeId,
                          q: u32,
                          states: &mut Vec<(NodeId, u32)>,
                          out: &mut Vec<Vec<(EdgeId, PState)>>,
                          worklist: &mut Vec<PState>|
         -> PState {
            *index.entry((n.0, q)).or_insert_with(|| {
                let s = states.len() as PState;
                states.push((n, q));
                out.push(Vec::new());
                worklist.push(s);
                s
            })
        };

        for &src in sources {
            ticker.tick()?;
            let closed = closure(g, nfa, src, &[nfa.start]);
            for q in closed {
                let s = intern(src, q, &mut states, &mut out, &mut worklist);
                if !initial[src.index()].contains(&s) {
                    initial[src.index()].push(s);
                }
            }
        }

        while let Some(s) = worklist.pop() {
            ticker.tick()?;
            mem.charge(STATE_BYTES)?;
            let (n, q) = states[s as usize];
            let mut succs: Vec<(EdgeId, PState)> = Vec::new();
            for &(label, q_mid) in &nfa.edges[q as usize] {
                let steps: Vec<(EdgeId, NodeId)> = match label {
                    Trans::Fwd(t) => g
                        .out(n)
                        .iter()
                        .copied()
                        .filter(|&(e, _)| g.edge_test(e, &nfa.tests[t as usize]))
                        .collect(),
                    Trans::Bwd(t) => g
                        .inc(n)
                        .iter()
                        .copied()
                        .filter(|&(e, _)| g.edge_test(e, &nfa.tests[t as usize]))
                        .collect(),
                    _ => continue,
                };
                for (e, m) in steps {
                    for q2 in closure(g, nfa, m, &[q_mid]) {
                        ticker.tick()?;
                        let s2 = intern(m, q2, &mut states, &mut out, &mut worklist);
                        succs.push((e, s2));
                    }
                }
            }
            succs.sort_unstable_by_key(|&(e, s2)| (e.0, s2));
            succs.dedup();
            mem.charge(TRANS_BYTES * succs.len() as u64)?;
            out[s as usize] = succs;
        }
        ticker.flush()?;
        mem.flush()?;

        let accepting: Vec<bool> = states.iter().map(|&(_, q)| q == nfa.accept).collect();
        let mut preds: Vec<Vec<(PState, EdgeId)>> = vec![Vec::new(); states.len()];
        for (s, list) in out.iter().enumerate() {
            for &(e, s2) in list {
                preds[s2 as usize].push((s as PState, e));
            }
        }
        for p in &mut preds {
            p.sort_unstable_by_key(|&(s, e)| (s, e.0));
        }

        let (out_off, out_tr) = flatten(&out);
        let (pred_off, pred_tr) = flatten(&preds);
        let (init_off, init_states) = flatten(&initial);

        Ok(Product {
            states,
            out_off,
            out_tr,
            pred_off,
            pred_tr,
            accepting,
            init_off,
            init_states,
        })
    }

    /// Number of product states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of consuming transitions across all states.
    pub fn transition_count(&self) -> usize {
        self.out_tr.len()
    }

    /// Number of graph nodes the product was built over.
    pub fn node_count(&self) -> usize {
        self.init_off.len() - 1
    }

    /// The graph node of product state `s`.
    pub fn node_of(&self, s: PState) -> NodeId {
        self.states[s as usize].0
    }

    /// The NFA state of product state `s`.
    pub fn nfa_state_of(&self, s: PState) -> u32 {
        self.states[s as usize].1
    }

    /// Consuming transitions of `s`: `(edge, successor)` pairs sorted by
    /// `(edge, successor)` and deduplicated.
    #[inline]
    pub fn out(&self, s: PState) -> &[(EdgeId, PState)] {
        let s = s as usize;
        &self.out_tr[self.out_off[s] as usize..self.out_off[s + 1] as usize]
    }

    /// Reverse transitions of `s`: `(predecessor, edge)` pairs sorted by
    /// `(predecessor, edge)`.
    #[inline]
    pub fn preds(&self, s: PState) -> &[(PState, EdgeId)] {
        let s = s as usize;
        &self.pred_tr[self.pred_off[s] as usize..self.pred_off[s + 1] as usize]
    }

    /// Whether product state `s` is accepting.
    #[inline]
    pub fn is_accepting(&self, s: PState) -> bool {
        self.accepting[s as usize]
    }

    /// Product states entered on reading node symbol `v` (empty if `v`
    /// was not among the built sources).
    #[inline]
    pub fn initial(&self, v: NodeId) -> &[PState] {
        let v = v.index();
        &self.init_states[self.init_off[v] as usize..self.init_off[v + 1] as usize]
    }

    /// Runs the product on a word `(start, edges)`, returning the set of
    /// product states reached (sorted). Empty if the word is not a valid
    /// traversal or matches nothing.
    pub fn run(&self, start: NodeId, edges: &[EdgeId]) -> Vec<PState> {
        let mut cur: Vec<PState> = self.initial(start).to_vec();
        for &e in edges {
            let mut next: Vec<PState> = Vec::new();
            for &s in &cur {
                for &(te, s2) in self.out(s) {
                    if te == e {
                        next.push(s2);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }

    /// True if the word `(start, edges)` encodes a path in `⟦r⟧`.
    pub fn accepts(&self, start: NodeId, edges: &[EdgeId]) -> bool {
        self.run(start, edges).iter().any(|&s| self.is_accepting(s))
    }
}

/// The determinized product (subset construction on the NFA component).
///
/// Each word has exactly one run, so dynamic programming over
/// `DetProduct` counts *distinct paths* exactly. Transitions use the same
/// flat CSR layout as [`Product`].
#[derive(Clone, Debug)]
pub struct DetProduct {
    /// `(graph node, sorted set of NFA states)` per det state.
    states: Vec<(NodeId, Vec<u32>)>,
    /// CSR offsets into `out_tr`.
    out_off: Vec<u32>,
    /// Deterministic transitions: at most one successor per edge symbol,
    /// sorted by edge id.
    out_tr: Vec<(EdgeId, u32)>,
    /// Whether the state set contains the NFA accept state.
    accepting: Vec<bool>,
    /// Per graph node, the det state entered on reading that node symbol.
    initial: Vec<Option<u32>>,
}

impl DetProduct {
    /// Builds the determinized product from every node as a source.
    pub fn build<G: PathGraph>(g: &G, nfa: &Nfa) -> DetProduct {
        let all: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).collect();
        DetProduct::build_from(g, nfa, &all)
    }

    /// Builds the determinized product from the given sources.
    pub fn build_from<G: PathGraph>(g: &G, nfa: &Nfa, sources: &[NodeId]) -> DetProduct {
        match DetProduct::build_from_governed(g, nfa, sources, None) {
            Ok(d) => d,
            Err(i) => unreachable!("ungoverned det build interrupted: {i}"),
        }
    }

    /// Builds the full determinized product under `gov`'s budget. The
    /// subset construction is where the worst-case exponential blow-up
    /// lives, so this is the most important build to bound.
    pub fn build_governed<G: PathGraph>(
        g: &G,
        nfa: &Nfa,
        gov: &Governor,
    ) -> Result<DetProduct, Interrupt> {
        let all: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).collect();
        DetProduct::build_from_governed(g, nfa, &all, Some(gov))
    }

    /// Governed subset-construction loop shared by the public builders.
    fn build_from_governed<G: PathGraph>(
        g: &G,
        nfa: &Nfa,
        sources: &[NodeId],
        gov: Option<&Governor>,
    ) -> Result<DetProduct, Interrupt> {
        fault_point!("det::build");
        let mut ticker = Ticker::maybe(gov);
        let mut mem = MemMeter::maybe(gov);
        let mut states: Vec<(NodeId, Vec<u32>)> = Vec::new();
        let mut index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut out: Vec<Vec<(EdgeId, u32)>> = Vec::new();
        let mut initial: Vec<Option<u32>> = vec![None; g.node_count()];
        let mut worklist: Vec<u32> = Vec::new();

        let mut intern = |n: NodeId,
                          set: Vec<u32>,
                          states: &mut Vec<(NodeId, Vec<u32>)>,
                          out: &mut Vec<Vec<(EdgeId, u32)>>,
                          worklist: &mut Vec<u32>|
         -> u32 {
            *index.entry((n.0, set.clone())).or_insert_with(|| {
                let s = states.len() as u32;
                states.push((n, set));
                out.push(Vec::new());
                worklist.push(s);
                s
            })
        };

        for &src in sources {
            ticker.tick()?;
            let closed = closure(g, nfa, src, &[nfa.start]);
            if initial[src.index()].is_none() {
                let s = intern(src, closed, &mut states, &mut out, &mut worklist);
                initial[src.index()] = Some(s);
            }
        }

        while let Some(s) = worklist.pop() {
            ticker.tick()?;
            let (n, set) = states[s as usize].clone();
            // Det states own their NFA-state set; charge it too.
            mem.charge(STATE_BYTES + 4 * set.len() as u64)?;
            // Group successor NFA states by edge.
            let mut by_edge: HashMap<EdgeId, (NodeId, Vec<u32>)> = HashMap::new();
            for &q in &set {
                for &(label, q_mid) in &nfa.edges[q as usize] {
                    let steps: Vec<(EdgeId, NodeId)> = match label {
                        Trans::Fwd(t) => g
                            .out(n)
                            .iter()
                            .copied()
                            .filter(|&(e, _)| g.edge_test(e, &nfa.tests[t as usize]))
                            .collect(),
                        Trans::Bwd(t) => g
                            .inc(n)
                            .iter()
                            .copied()
                            .filter(|&(e, _)| g.edge_test(e, &nfa.tests[t as usize]))
                            .collect(),
                        _ => continue,
                    };
                    for (e, m) in steps {
                        ticker.tick()?;
                        let entry = by_edge.entry(e).or_insert_with(|| (m, Vec::new()));
                        debug_assert_eq!(entry.0, m, "edge target must be unique");
                        for q2 in closure(g, nfa, m, &[q_mid]) {
                            if !entry.1.contains(&q2) {
                                entry.1.push(q2);
                            }
                        }
                    }
                }
            }
            let mut succs: Vec<(EdgeId, u32)> = Vec::with_capacity(by_edge.len());
            for (e, (m, mut qset)) in by_edge {
                qset.sort_unstable();
                let s2 = intern(m, qset, &mut states, &mut out, &mut worklist);
                succs.push((e, s2));
            }
            succs.sort_unstable_by_key(|&(e, _)| e.0);
            mem.charge(TRANS_BYTES * succs.len() as u64)?;
            out[s as usize] = succs;
        }
        ticker.flush()?;
        mem.flush()?;

        let accepting: Vec<bool> = states
            .iter()
            .map(|(_, set)| set.binary_search(&nfa.accept).is_ok())
            .collect();

        let (out_off, out_tr) = flatten(&out);

        Ok(DetProduct {
            states,
            out_off,
            out_tr,
            accepting,
            initial,
        })
    }

    /// Number of det states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The graph node of det state `s`.
    pub fn node_of(&self, s: u32) -> NodeId {
        self.states[s as usize].0
    }

    /// Deterministic transitions of `s`, sorted by edge id.
    #[inline]
    pub fn out(&self, s: u32) -> &[(EdgeId, u32)] {
        let s = s as usize;
        &self.out_tr[self.out_off[s] as usize..self.out_off[s + 1] as usize]
    }

    /// Whether det state `s` contains the NFA accept state.
    #[inline]
    pub fn is_accepting(&self, s: u32) -> bool {
        self.accepting[s as usize]
    }

    /// The det state entered on reading node symbol `v`, if any.
    #[inline]
    pub fn initial(&self, v: NodeId) -> Option<u32> {
        self.initial.get(v.index()).copied().flatten()
    }

    /// The per-node initial slots (index = node id), for whole-graph scans.
    #[inline]
    pub fn initial_slots(&self) -> &[Option<u32>] {
        &self.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::LabeledGraph;

    fn setup(expr: &str) -> (LabeledGraph, Nfa) {
        let mut g = figure2_labeled();
        let e = {
            let consts = g.consts_mut();
            parse_expr(expr, consts).unwrap()
        };
        (g, Nfa::compile(&e))
    }

    #[test]
    fn product_accepts_the_paper_path() {
        let (g, nfa) = setup("?person/rides/?bus/rides^-/?infected");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let n1 = g.node_named("n1").unwrap();
        let e1 = g.edge_named("e1").unwrap(); // n1 -> bus
        let e2 = g.edge_named("e2").unwrap(); // infected n2 -> bus
        assert!(prod.accepts(n1, &[e1, e2]));
        // Wrong order does not traverse.
        assert!(!prod.accepts(n1, &[e2, e1]));
        // A single rides edge is not a full match.
        assert!(!prod.accepts(n1, &[e1]));
    }

    #[test]
    fn zero_length_node_test_accepts() {
        let (g, nfa) = setup("?bus");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let n3 = g.node_named("n3").unwrap();
        let n1 = g.node_named("n1").unwrap();
        assert!(prod.accepts(n3, &[]));
        assert!(!prod.accepts(n1, &[]));
    }

    #[test]
    fn star_accepts_all_iteration_counts() {
        let (g, nfa) = setup("(contact)*");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let n1 = g.node_named("n1").unwrap();
        let e4 = g.edge_named("e4").unwrap(); // n1 -contact-> n4
        let e5 = g.edge_named("e5").unwrap(); // n4 -contact-> n6
        assert!(prod.accepts(n1, &[]));
        assert!(prod.accepts(n1, &[e4]));
        assert!(prod.accepts(n1, &[e4, e5]));
        let e1 = g.edge_named("e1").unwrap(); // rides edge: label mismatch
        assert!(!prod.accepts(n1, &[e1]));
    }

    #[test]
    fn negated_edge_test_from_the_paper() {
        // (¬rides ∧ ¬lives)⁻ from bus n3: only `owns` arrives at n3, so the
        // backward step from n3 along a non-rides/non-lives edge is e8.
        let (g, nfa) = setup("{!rides & !lives}^-");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let n3 = g.node_named("n3").unwrap();
        let e8 = g.edge_named("e8").unwrap(); // n7 -owns-> n3
        let e1 = g.edge_named("e1").unwrap();
        assert!(prod.accepts(n3, &[e8]));
        assert!(!prod.accepts(n3, &[e1]));
    }

    #[test]
    fn det_product_is_deterministic_per_edge() {
        let (g, nfa) = setup("(rides + rides/rides^-)*");
        let view = LabeledView::new(&g);
        let det = DetProduct::build(&view, &nfa);
        for s in 0..det.state_count() {
            let list = det.out(s as u32);
            for w in list.windows(2) {
                assert!(w[0].0 < w[1].0, "duplicate edge symbol in det state");
            }
        }
    }

    #[test]
    fn csr_slices_partition_the_transition_list() {
        let (g, nfa) = setup("?person/(contact + rides/rides^-)*/?infected");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let total: usize = (0..prod.state_count())
            .map(|s| prod.out(s as u32).len())
            .sum();
        assert_eq!(total, prod.transition_count());
        // Every forward transition has a matching reverse transition.
        let rev_total: usize = (0..prod.state_count())
            .map(|s| prod.preds(s as u32).len())
            .sum();
        assert_eq!(rev_total, prod.transition_count());
        for s in 0..prod.state_count() as u32 {
            for &(e, s2) in prod.out(s) {
                assert!(prod.preds(s2).contains(&(s, e)), "missing reverse edge");
            }
        }
        // Initial slots cover every graph node.
        assert_eq!(prod.node_count(), g.node_count());
    }

    #[test]
    fn det_and_nfa_agree_on_acceptance() {
        let (g, nfa) = setup("?person/(contact + rides/rides^-)*/?infected");
        let view = LabeledView::new(&g);
        let prod = Product::build(&view, &nfa);
        let det = DetProduct::build(&view, &nfa);
        // Walk every word of length <= 3 and compare acceptance.
        let mut agreements = 0;
        for n in g.base().nodes() {
            let words = enumerate_words(&view, n, 3);
            for w in words {
                let nfa_acc = prod.accepts(n, &w);
                let det_acc = det_accepts(&det, n, &w);
                assert_eq!(nfa_acc, det_acc, "disagree on {w:?} from {n:?}");
                agreements += 1;
            }
        }
        assert!(agreements > 50);
    }

    fn det_accepts(det: &DetProduct, start: NodeId, edges: &[EdgeId]) -> bool {
        let mut cur = match det.initial(start) {
            Some(s) => s,
            None => return false,
        };
        for &e in edges {
            match det.out(cur).binary_search_by_key(&e.0, |&(ee, _)| ee.0) {
                Ok(i) => cur = det.out(cur)[i].1,
                Err(_) => return false,
            }
        }
        det.is_accepting(cur)
    }

    /// All traversable words of length <= k from n (graph walks).
    fn enumerate_words(view: &LabeledView<'_>, n: NodeId, k: usize) -> Vec<Vec<EdgeId>> {
        let mut all = vec![vec![]];
        let mut frontier: Vec<(NodeId, Vec<EdgeId>)> = vec![(n, vec![])];
        for _ in 0..k {
            let mut next = Vec::new();
            for (cur, w) in frontier {
                let mut steps: Vec<(EdgeId, NodeId)> = view
                    .out(cur)
                    .iter()
                    .chain(view.inc(cur).iter())
                    .copied()
                    .collect();
                steps.sort_unstable_by_key(|&(e, _)| e.0);
                steps.dedup_by_key(|&mut (e, _)| e.0);
                for (e, m) in steps {
                    let mut w2 = w.clone();
                    w2.push(e);
                    all.push(w2.clone());
                    next.push((m, w2));
                }
            }
            frontier = next;
        }
        all
    }
}
