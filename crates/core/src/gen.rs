//! Uniform generation of paths — the problem `Gen(G, r, k)` of §4.1.
//!
//! "The algorithm constructs … a data structure, which can be repeatedly
//! used in the generation phase to produce paths `p ∈ ⟦r⟧` of length `k`
//! with uniform distribution."
//!
//! [`UniformSampler`] is the *exact* realization of that interface: the
//! preprocessing phase determinizes the product and tabulates
//! `f[j][s] = #` accepting completions of length `j` from det state `s`;
//! the generation phase walks the automaton sampling each transition with
//! probability proportional to the number of completions behind it. The
//! resulting distribution over answers is exactly uniform. (Preprocessing
//! inherits the worst-case exponential determinization; the polynomial
//! alternative with approximate uniformity is [`crate::approx`].)

use crate::automata::Nfa;
use crate::count::CountError;
use crate::expr::PathExpr;
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::DetProduct;
use kgq_graph::NodeId;
use rand::Rng;

/// Exact uniform sampler over the answers of `(G, r, k)`.
pub struct UniformSampler {
    det: DetProduct,
    k: usize,
    /// `f[j][s]` — number of accepting words completing from `s` with
    /// exactly `j` more edge symbols.
    completions: Vec<Vec<u128>>,
    /// Initial (node, det state, f[k]) triples with nonzero completions.
    roots: Vec<(NodeId, u32, u128)>,
    total: u128,
}

impl UniformSampler {
    /// Preprocessing phase: builds the det product and the completion
    /// table for answers of length exactly `k`.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr, k: usize) -> Result<Self, CountError> {
        let nfa = Nfa::compile(expr);
        let det = DetProduct::build(g, &nfa);
        Self::from_det(det, k)
    }

    /// Preprocessing from an existing det product.
    pub fn from_det(det: DetProduct, k: usize) -> Result<Self, CountError> {
        let m = det.state_count();
        let mut completions = vec![vec![0u128; m]; k + 1];
        for s in 0..m {
            completions[0][s] = u128::from(det.is_accepting(s as u32));
        }
        for j in 1..=k {
            for s in 0..m {
                let mut sum: u128 = 0;
                for &(_, s2) in det.out(s as u32) {
                    sum = sum
                        .checked_add(completions[j - 1][s2 as usize])
                        .ok_or(CountError::Overflow)?;
                }
                completions[j][s] = sum;
            }
        }
        let mut roots = Vec::new();
        let mut total: u128 = 0;
        for (v, slot) in det.initial_slots().iter().enumerate() {
            if let Some(s) = slot {
                let f = completions[k][*s as usize];
                if f > 0 {
                    roots.push((NodeId(v as u32), *s, f));
                    total = total.checked_add(f).ok_or(CountError::Overflow)?;
                }
            }
        }
        Ok(UniformSampler {
            det,
            k,
            completions,
            roots,
            total,
        })
    }

    /// Total number of answers (`Count(G, r, k)` — free byproduct).
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Generation phase: draws one path uniformly at random among all
    /// answers. Returns `None` when the answer set is empty.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<Path> {
        if self.total == 0 {
            return None;
        }
        // Choose a root proportionally to its completion count.
        let mut ticket = rng.gen_range(0..self.total);
        let (start, mut state) = {
            let mut chosen = None;
            for &(v, s, f) in &self.roots {
                if ticket < f {
                    chosen = Some((v, s));
                    break;
                }
                ticket -= f;
            }
            chosen.expect("total is the sum of root weights")
        };
        let mut edges = Vec::with_capacity(self.k);
        for j in (1..=self.k).rev() {
            let transitions = self.det.out(state);
            let weight_of = |s2: u32| -> u128 { self.completions[j - 1][s2 as usize] };
            let total_here: u128 = transitions.iter().map(|&(_, s2)| weight_of(s2)).sum();
            debug_assert!(total_here > 0);
            let mut t = rng.gen_range(0..total_here);
            let mut chosen = None;
            for &(e, s2) in transitions {
                let w = weight_of(s2);
                if t < w {
                    chosen = Some((e, s2));
                    break;
                }
                t -= w;
            }
            let (e, s2) = chosen.expect("weights sum to total_here");
            edges.push(e);
            state = s2;
        }
        Some(Path { start, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_paths;
    use crate::enumerate::enumerate_paths;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::gnm_labeled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn total_matches_exact_count() {
        let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], 5);
        let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        for k in 0..=4 {
            let sampler = UniformSampler::new(&view, &e, k).unwrap();
            assert_eq!(sampler.total(), count_paths(&view, &e, k).unwrap());
        }
    }

    #[test]
    fn samples_are_valid_answers() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let sampler = UniformSampler::new(&view, &e, 2).unwrap();
        let answers = enumerate_paths(&view, &e, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = sampler.sample(&mut rng).unwrap();
            assert!(answers.contains(&p));
        }
    }

    #[test]
    fn empty_answer_set_yields_none() {
        let mut g = figure2_labeled();
        let e = parse_expr("ghost_label", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let sampler = UniformSampler::new(&view, &e, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sampler.sample(&mut rng).is_none());
        assert_eq!(sampler.total(), 0);
    }

    #[test]
    fn distribution_is_uniform_chi_square() {
        // Draw many samples and check a chi-square statistic against the
        // uniform hypothesis. With c answer categories the statistic has
        // (c-1) degrees of freedom; we use a loose 5x-mean bound that a
        // correct sampler passes with overwhelming probability.
        let mut g = gnm_labeled(10, 22, &["a", "b"], &["p", "q"], 9);
        let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let k = 3;
        let answers = enumerate_paths(&view, &e, k);
        let c = answers.len();
        assert!(c >= 5, "want a few categories, got {c}");
        let sampler = UniformSampler::new(&view, &e, k).unwrap();
        let draws = 200 * c;
        let mut rng = StdRng::seed_from_u64(7);
        let mut freq: HashMap<crate::path::Path, usize> = HashMap::new();
        for _ in 0..draws {
            let p = sampler.sample(&mut rng).unwrap();
            *freq.entry(p).or_insert(0) += 1;
        }
        // Every answer must appear (coverage).
        assert_eq!(freq.len(), c, "some answers never sampled");
        let expected = draws as f64 / c as f64;
        let chi2: f64 = freq
            .values()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        // E[chi2] = c - 1; allow a wide margin.
        assert!(
            chi2 < 5.0 * (c as f64 - 1.0),
            "chi2 = {chi2:.1} too large for {c} categories"
        );
    }

    #[test]
    fn zero_length_sampling_picks_matching_nodes_uniformly() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let sampler = UniformSampler::new(&view, &e, 0).unwrap();
        assert_eq!(sampler.total(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = sampler.sample(&mut rng).unwrap();
            assert!(p.is_empty());
            seen.insert(p.start);
        }
        assert_eq!(seen.len(), 3);
    }
}
