//! Nondeterministic finite automata for path expressions.
//!
//! A [`PathExpr`] compiles (Thompson construction) into an [`Nfa`] whose
//! transitions are of three kinds:
//!
//! * `Eps` — structural ε-transitions from the construction,
//! * `Node(test)` — *guarded* ε-transitions: consume no edge, but require
//!   the current graph node to satisfy `test` (these implement the `?test`
//!   atoms of the paper's grammar),
//! * `Fwd(test)` / `Bwd(test)` — consuming transitions: follow one edge
//!   forward/backward whose label (or properties/features) satisfies
//!   `test`.
//!
//! The automaton has a single start and a single accept state. Evaluation,
//! counting, generation and enumeration all work on the product of the
//! graph with this NFA ([`crate::product`]).
//!
//! ## Minimization
//!
//! A path matches iff some *extended word* over the alphabet
//! `{Node(t), Fwd(t), Bwd(t)}` is accepted whose edge-letter projection is
//! the path's edge sequence and whose node-letter guards all pass at their
//! positions. The product semantics is therefore a function of the
//! automaton's language over that extended alphabet alone, so any
//! language-preserving transformation of the NFA is sound. [`Nfa::compile_min`]
//! exploits this: it determinizes the Thompson NFA over the extended
//! alphabet (ε-closure on the structural ε only), minimizes the result with
//! Hopcroft partition refinement, and normalizes state numbering by a BFS
//! over canonically ordered symbols. Minimal DFAs are canonical for their
//! language, so the normalized automaton doubles as a cache key
//! ([`NfaSignature`]) under which distinct spellings of one query collapse
//! — e.g. `a/(b+c)` and `a/b + a/c` compile to the same entry. Products
//! built from the minimized automaton have (usually far) fewer states,
//! which is where the evaluation time goes.

use crate::expr::{PathExpr, Test};
use std::collections::HashMap;

/// A transition label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trans {
    /// Structural ε.
    Eps,
    /// Guarded ε: current node must satisfy test `t` (index into
    /// [`Nfa::tests`]).
    Node(u32),
    /// Consume one forward edge satisfying test `t`.
    Fwd(u32),
    /// Consume one backward edge satisfying test `t`.
    Bwd(u32),
}

/// An ε-NFA compiled from a path expression.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Adjacency: `edges[q]` lists `(label, target)` transitions.
    pub edges: Vec<Vec<(Trans, u32)>>,
    /// Test arena referenced by transition labels.
    pub tests: Vec<Test>,
    /// The unique start state.
    pub start: u32,
    /// The unique accepting state.
    pub accept: u32,
}

impl Nfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.edges.len()
    }

    /// Compiles `expr` with the Thompson construction.
    ///
    /// The number of states is linear in the size of the expression.
    pub fn compile(expr: &PathExpr) -> Nfa {
        let mut b = Builder {
            edges: Vec::new(),
            tests: Vec::new(),
        };
        let (s, a) = b.frag(expr);
        Nfa {
            edges: b.edges,
            tests: b.tests,
            start: s,
            accept: a,
        }
    }

    /// The test referenced by a transition label, if any.
    pub fn test_of(&self, t: Trans) -> Option<&Test> {
        match t {
            Trans::Eps => None,
            Trans::Node(i) | Trans::Fwd(i) | Trans::Bwd(i) => Some(&self.tests[i as usize]),
        }
    }

    /// Compiles `expr` and minimizes the result: determinization over the
    /// extended alphabet followed by Hopcroft partition refinement. See
    /// [`Nfa::minimize`] for the guarantees.
    pub fn compile_min(expr: &PathExpr) -> MinimizedNfa {
        Nfa::compile(expr).minimize()
    }

    /// Minimizes this automaton while preserving its language over the
    /// extended alphabet `{Node(t), Fwd(t), Bwd(t)}` — and hence, exactly,
    /// the set of paths every product built from it matches.
    ///
    /// Pipeline: dedupe tests into a canonically ordered arena, determinize
    /// with the subset construction (ε-closure over structural ε only),
    /// minimize with Hopcroft partition refinement against an explicit dead
    /// state, and renumber states by BFS over symbols in canonical order.
    /// The result is the unique minimal DFA of the language, so its
    /// [`NfaSignature`] is a canonical cache key: distinct spellings of one
    /// query (beyond what [`crate::simplify`] rewrites) collapse to the
    /// same signature.
    ///
    /// If the subset construction would exceed [`MAX_DFA_STATES`] the
    /// original automaton is returned unchanged (`minimized: false`) with a
    /// structural signature — minimization is an optimization, never a
    /// requirement.
    pub fn minimize(&self) -> MinimizedNfa {
        match try_minimize(self) {
            Some(m) => m,
            None => MinimizedNfa {
                nfa: self.clone(),
                signature: raw_signature(self),
                minimized: false,
            },
        }
    }
}

/// Cap on the subset-construction size; expressions whose symbolic DFA
/// would exceed it fall back to the raw Thompson NFA.
pub const MAX_DFA_STATES: usize = 4096;

const KIND_NODE: u8 = 0;
const KIND_FWD: u8 = 1;
const KIND_BWD: u8 = 2;
/// Only appears in fallback (non-minimized) signatures.
const KIND_EPS: u8 = 3;

/// A minimized (or fallback) automaton plus its canonical signature.
#[derive(Clone, Debug)]
pub struct MinimizedNfa {
    /// The automaton to build products from.
    pub nfa: Nfa,
    /// Canonical cache key: equal for every expression spelling with the
    /// same extended-alphabet language (when `minimized` is true).
    pub signature: NfaSignature,
    /// False when the subset construction hit [`MAX_DFA_STATES`] and the
    /// raw Thompson automaton was kept.
    pub minimized: bool,
}

impl MinimizedNfa {
    /// True iff this automaton provably recognizes the empty language.
    ///
    /// Only a minimized signature can certify emptiness; on a fallback
    /// (non-minimized) automaton this conservatively returns false.
    pub fn is_empty_language(&self) -> bool {
        self.minimized && self.signature.is_empty_language()
    }
}

/// A hashable structural fingerprint of an automaton.
///
/// For a minimized automaton this is canonical for the language: states
/// are BFS-numbered over canonically ordered symbols, tests are deduped
/// and sorted by a spelling-independent encoding, and transitions are
/// listed in `(from, kind, test, to)` order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NfaSignature {
    states: u32,
    start: u32,
    accepting: Vec<u32>,
    trans: Vec<(u32, u8, u32, u32)>,
    tests: Vec<Test>,
}

impl NfaSignature {
    /// Number of states fingerprinted.
    pub fn state_count(&self) -> usize {
        self.states as usize
    }

    /// True iff the fingerprinted automaton recognizes the empty language:
    /// no transitions at all and a non-accepting start state. Minimization
    /// collapses every empty-language automaton to exactly this shape, so
    /// on a minimized signature this is a complete emptiness test.
    pub fn is_empty_language(&self) -> bool {
        self.trans.is_empty() && !self.accepting.contains(&self.start)
    }
}

/// Canonical integer encoding of a test: a total order independent of
/// source spelling and arena numbering (syms are interner indices, which
/// are stable for one graph).
fn test_key(t: &Test, out: &mut Vec<u32>) {
    match t {
        Test::Label(s) => out.extend([0, s.0]),
        Test::Prop(p, v) => out.extend([1, p.0, v.0]),
        Test::Feature(i, v) => out.extend([2, *i as u32, v.0]),
        Test::Not(a) => {
            out.push(3);
            test_key(a, out);
        }
        Test::And(a, b) => {
            out.push(4);
            test_key(a, out);
            test_key(b, out);
        }
        Test::Or(a, b) => {
            out.push(5);
            test_key(a, out);
            test_key(b, out);
        }
    }
}

/// Structural signature of an unminimized automaton (fallback key):
/// deterministic per compiled expression, but not canonical across
/// spellings.
fn raw_signature(nfa: &Nfa) -> NfaSignature {
    let mut trans: Vec<(u32, u8, u32, u32)> = Vec::new();
    for (q, list) in nfa.edges.iter().enumerate() {
        for &(l, to) in list {
            let (kind, t) = match l {
                Trans::Eps => (KIND_EPS, 0),
                Trans::Node(t) => (KIND_NODE, t),
                Trans::Fwd(t) => (KIND_FWD, t),
                Trans::Bwd(t) => (KIND_BWD, t),
            };
            trans.push((q as u32, kind, t, to));
        }
    }
    trans.sort_unstable();
    NfaSignature {
        states: nfa.state_count() as u32,
        start: nfa.start,
        accepting: vec![nfa.accept],
        trans,
        tests: nfa.tests.clone(),
    }
}

/// The (start=0, accept=1, no transitions) automaton of the empty
/// language. Unreachable for compiled expressions (every `PathExpr`
/// denotes at least one extended word), kept as a defensive fallback.
fn empty_language() -> MinimizedNfa {
    MinimizedNfa {
        nfa: Nfa {
            edges: vec![Vec::new(), Vec::new()],
            tests: Vec::new(),
            start: 0,
            accept: 1,
        },
        signature: NfaSignature {
            states: 2,
            start: 0,
            accepting: vec![1],
            trans: Vec::new(),
            tests: Vec::new(),
        },
        minimized: true,
    }
}

fn try_minimize(nfa: &Nfa) -> Option<MinimizedNfa> {
    // Canonically ordered, deduplicated test arena.
    let mut keyed: Vec<(Vec<u32>, usize)> = nfa
        .tests
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut k = Vec::new();
            test_key(t, &mut k);
            (k, i)
        })
        .collect();
    keyed.sort();
    let mut canon_tests: Vec<Test> = Vec::new();
    let mut canon_keys: Vec<Vec<u32>> = Vec::new();
    let mut canon_of: Vec<u32> = vec![0; nfa.tests.len()];
    for (k, i) in keyed {
        if canon_keys.last() != Some(&k) {
            canon_keys.push(k);
            canon_tests.push(nfa.tests[i].clone());
        }
        canon_of[i] = (canon_tests.len() - 1) as u32;
    }

    // Symbol table over (kind, canonical test), canonically ordered.
    let sym_of = |l: Trans| -> Option<(u8, u32)> {
        match l {
            Trans::Eps => None,
            Trans::Node(t) => Some((KIND_NODE, canon_of[t as usize])),
            Trans::Fwd(t) => Some((KIND_FWD, canon_of[t as usize])),
            Trans::Bwd(t) => Some((KIND_BWD, canon_of[t as usize])),
        }
    };
    let mut symbols: Vec<(u8, u32)> = nfa
        .edges
        .iter()
        .flatten()
        .filter_map(|&(l, _)| sym_of(l))
        .collect();
    symbols.sort_unstable();
    symbols.dedup();
    let nsym = symbols.len();
    let sym_id: HashMap<(u8, u32), u32> = symbols
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();

    // Subset construction: ε-closure over structural ε only; `Node`
    // guards are consuming letters of the extended alphabet here.
    let closure = |seed: Vec<u32>| -> Vec<u32> {
        let mut seen = vec![false; nfa.state_count()];
        let mut stack = seed;
        for &q in &stack {
            seen[q as usize] = true;
        }
        let mut out = stack.clone();
        while let Some(q) = stack.pop() {
            for &(l, to) in &nfa.edges[q as usize] {
                if l == Trans::Eps && !seen[to as usize] {
                    seen[to as usize] = true;
                    stack.push(to);
                    out.push(to);
                }
            }
        }
        out.sort_unstable();
        out
    };

    let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    let mut delta: Vec<u32> = Vec::new(); // row-major [state][symbol], MAX = missing
    let start_set = closure(vec![nfa.start]);
    index.insert(start_set.clone(), 0);
    subsets.push(start_set);
    let mut next_row = 0usize;
    while next_row < subsets.len() {
        let members = subsets[next_row].clone();
        next_row += 1;
        let mut per_sym: Vec<Vec<u32>> = vec![Vec::new(); nsym];
        for &q in &members {
            for &(l, to) in &nfa.edges[q as usize] {
                if let Some(s) = sym_of(l) {
                    per_sym[sym_id[&s] as usize].push(to);
                }
            }
        }
        let base = delta.len();
        delta.resize(base + nsym, u32::MAX);
        for (a, mut targets) in per_sym.into_iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            targets.sort_unstable();
            targets.dedup();
            let closed = closure(targets);
            let next_id = match index.get(&closed) {
                Some(&id) => id,
                None => {
                    if subsets.len() >= MAX_DFA_STATES {
                        return None;
                    }
                    let id = subsets.len() as u32;
                    index.insert(closed.clone(), id);
                    subsets.push(closed);
                    id
                }
            };
            delta[base + a] = next_id;
        }
    }

    // Complete the DFA with an explicit dead state, then refine.
    let nd = subsets.len();
    let n_all = nd + 1;
    let mut delta_all: Vec<u32> = Vec::with_capacity(n_all * nsym);
    for s in 0..nd {
        for a in 0..nsym {
            let t = delta[s * nsym + a];
            delta_all.push(if t == u32::MAX { nd as u32 } else { t });
        }
    }
    delta_all.extend(std::iter::repeat_n(nd as u32, nsym));
    let mut acc_all: Vec<bool> = subsets
        .iter()
        .map(|s| s.binary_search(&nfa.accept).is_ok())
        .collect();
    acc_all.push(false);
    let (blocks, block_of) = hopcroft(n_all, nsym, &delta_all, &acc_all);

    let dead_block = block_of[nd];
    let start_block = block_of[0];
    if start_block == dead_block {
        return Some(empty_language());
    }

    // Normalize: BFS over blocks from the start block, symbols in
    // canonical order, skipping the dead class. Block stability makes any
    // member a valid transition representative.
    let mut new_id: HashMap<u32, u32> = HashMap::new();
    let mut order: Vec<u32> = vec![start_block];
    new_id.insert(start_block, 0);
    let mut trans_rows: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut qi = 0;
    while qi < order.len() {
        let b = order[qi];
        qi += 1;
        let rep = blocks[b as usize][0] as usize;
        let mut row: Vec<(u32, u32)> = Vec::new();
        for a in 0..nsym {
            let tb = block_of[delta_all[rep * nsym + a] as usize];
            if tb == dead_block {
                continue;
            }
            row.push((a as u32, tb));
            if let std::collections::hash_map::Entry::Vacant(e) = new_id.entry(tb) {
                e.insert(order.len() as u32);
                order.push(tb);
            }
        }
        trans_rows.push(row);
    }

    let k = order.len();
    let accepting_new: Vec<u32> = order
        .iter()
        .enumerate()
        .filter(|&(_, &b)| acc_all[blocks[b as usize][0] as usize])
        .map(|(i, _)| i as u32)
        .collect();
    if accepting_new.is_empty() {
        return Some(empty_language());
    }

    // Trim the test arena to the surviving transitions, preserving the
    // canonical order (the used alphabet is determined by the language).
    let mut used: Vec<u32> = trans_rows
        .iter()
        .flatten()
        .map(|&(a, _)| symbols[a as usize].1)
        .collect();
    used.sort_unstable();
    used.dedup();
    let test_remap: HashMap<u32, u32> = used
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    let tests: Vec<Test> = used
        .iter()
        .map(|&t| canon_tests[t as usize].clone())
        .collect();

    let mut edges: Vec<Vec<(Trans, u32)>> = vec![Vec::new(); k];
    let mut sig_trans: Vec<(u32, u8, u32, u32)> = Vec::new();
    for (i, row) in trans_rows.iter().enumerate() {
        for &(a, tb) in row {
            let (kind, ctest) = symbols[a as usize];
            let tid = test_remap[&ctest];
            let to = new_id[&tb];
            let label = match kind {
                KIND_NODE => Trans::Node(tid),
                KIND_FWD => Trans::Fwd(tid),
                _ => Trans::Bwd(tid),
            };
            edges[i].push((label, to));
            sig_trans.push((i as u32, kind, tid, to));
        }
    }
    sig_trans.sort_unstable();

    let signature = NfaSignature {
        states: k as u32,
        start: 0,
        accepting: accepting_new.clone(),
        trans: sig_trans,
        tests: tests.clone(),
    };

    // The `Nfa` interface wants a single accept state: reuse the unique
    // accepting class when there is one, otherwise collect the accepting
    // classes into a fresh state via ε.
    let accept = if accepting_new.len() == 1 {
        accepting_new[0]
    } else {
        let acc = k as u32;
        edges.push(Vec::new());
        for &s in &accepting_new {
            edges[s as usize].push((Trans::Eps, acc));
        }
        acc
    };

    Some(MinimizedNfa {
        nfa: Nfa {
            edges,
            tests,
            start: 0,
            accept,
        },
        signature,
        minimized: true,
    })
}

/// Hopcroft partition refinement over a complete DFA (`delta` is
/// row-major `[state][symbol]`). Returns the final blocks and each
/// state's block id.
fn hopcroft(n: usize, nsym: usize, delta: &[u32], accepting: &[bool]) -> (Vec<Vec<u32>>, Vec<u32>) {
    // Per-(target, symbol) predecessor lists.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); n * nsym];
    for s in 0..n {
        for a in 0..nsym {
            inv[delta[s * nsym + a] as usize * nsym + a].push(s as u32);
        }
    }
    let acc: Vec<u32> = (0..n as u32).filter(|&s| accepting[s as usize]).collect();
    let rej: Vec<u32> = (0..n as u32).filter(|&s| !accepting[s as usize]).collect();
    let mut blocks: Vec<Vec<u32>> = [acc, rej].into_iter().filter(|b| !b.is_empty()).collect();
    let mut block_of: Vec<u32> = vec![0; n];
    for (bi, b) in blocks.iter().enumerate() {
        for &s in b {
            block_of[s as usize] = bi as u32;
        }
    }
    // Seed the worklist with every (block, symbol) splitter; over-full is
    // sound, and these automata are tiny.
    let mut work: Vec<(u32, u32)> = Vec::new();
    let mut in_work: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for bi in 0..blocks.len() as u32 {
        for a in 0..nsym as u32 {
            work.push((bi, a));
            in_work.insert((bi, a));
        }
    }
    let mut xmark = vec![false; n];
    while let Some((bi, a)) = work.pop() {
        in_work.remove(&(bi, a));
        // X: states stepping into the splitter block on symbol `a`.
        let splitter = blocks[bi as usize].clone();
        let mut xs: Vec<u32> = Vec::new();
        for &t in &splitter {
            for &s in &inv[t as usize * nsym + a as usize] {
                if !xmark[s as usize] {
                    xmark[s as usize] = true;
                    xs.push(s);
                }
            }
        }
        let mut touched: Vec<u32> = xs.iter().map(|&s| block_of[s as usize]).collect();
        touched.sort_unstable();
        touched.dedup();
        for bj in touched {
            let members = &blocks[bj as usize];
            let inx: Vec<u32> = members
                .iter()
                .copied()
                .filter(|&s| xmark[s as usize])
                .collect();
            if inx.len() == members.len() {
                continue;
            }
            let outx: Vec<u32> = members
                .iter()
                .copied()
                .filter(|&s| !xmark[s as usize])
                .collect();
            let nk = blocks.len() as u32;
            blocks[bj as usize] = inx;
            for &s in &outx {
                block_of[s as usize] = nk;
            }
            blocks.push(outx);
            // Hopcroft's worklist rule: a pending splitter splits with
            // its block; otherwise refining against the smaller half
            // suffices.
            for sym in 0..nsym as u32 {
                let key = if in_work.contains(&(bj, sym)) {
                    (nk, sym)
                } else if blocks[bj as usize].len() <= blocks[nk as usize].len() {
                    (bj, sym)
                } else {
                    (nk, sym)
                };
                if in_work.insert(key) {
                    work.push(key);
                }
            }
        }
        for s in xs {
            xmark[s as usize] = false;
        }
    }
    (blocks, block_of)
}

struct Builder {
    edges: Vec<Vec<(Trans, u32)>>,
    tests: Vec<Test>,
}

impl Builder {
    fn state(&mut self) -> u32 {
        self.edges.push(Vec::new());
        (self.edges.len() - 1) as u32
    }

    fn add(&mut self, from: u32, label: Trans, to: u32) {
        self.edges[from as usize].push((label, to));
    }

    fn test(&mut self, t: &Test) -> u32 {
        self.tests.push(t.clone());
        (self.tests.len() - 1) as u32
    }

    /// Returns the (start, accept) pair of the compiled fragment.
    fn frag(&mut self, e: &PathExpr) -> (u32, u32) {
        match e {
            PathExpr::NodeTest(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Node(ti), a);
                (s, a)
            }
            PathExpr::Forward(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Fwd(ti), a);
                (s, a)
            }
            PathExpr::Backward(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Bwd(ti), a);
                (s, a)
            }
            PathExpr::Alt(l, r) => {
                let (ls, la) = self.frag(l);
                let (rs, ra) = self.frag(r);
                let s = self.state();
                let a = self.state();
                self.add(s, Trans::Eps, ls);
                self.add(s, Trans::Eps, rs);
                self.add(la, Trans::Eps, a);
                self.add(ra, Trans::Eps, a);
                (s, a)
            }
            PathExpr::Concat(l, r) => {
                let (ls, la) = self.frag(l);
                let (rs, ra) = self.frag(r);
                self.add(la, Trans::Eps, rs);
                (ls, ra)
            }
            PathExpr::Star(inner) => {
                let (is, ia) = self.frag(inner);
                let s = self.state();
                let a = self.state();
                self.add(s, Trans::Eps, is);
                self.add(s, Trans::Eps, a);
                self.add(ia, Trans::Eps, is);
                self.add(ia, Trans::Eps, a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use kgq_graph::Interner;

    fn compile(s: &str) -> Nfa {
        let mut it = Interner::new();
        let e = parse_expr(s, &mut it).unwrap();
        Nfa::compile(&e)
    }

    #[test]
    fn single_atom_has_two_states() {
        let nfa = compile("rides");
        assert_eq!(nfa.state_count(), 2);
        assert_eq!(nfa.edges[nfa.start as usize].len(), 1);
        let (label, to) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Fwd(_)));
        assert_eq!(to, nfa.accept);
    }

    #[test]
    fn backward_atom_uses_bwd() {
        let nfa = compile("rides^-");
        let (label, _) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Bwd(_)));
    }

    #[test]
    fn node_test_is_guarded_eps() {
        let nfa = compile("?person");
        let (label, _) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Node(_)));
    }

    #[test]
    fn state_count_is_linear() {
        let nfa = compile("?person/rides/?bus/rides^-/?infected");
        // Thompson: 2 states per atom, concat adds none.
        assert_eq!(nfa.state_count(), 10);
        let nfa = compile("(a+b)*");
        assert_eq!(nfa.state_count(), 8); // 4 atoms' states + 2 alt + 2 star
    }

    #[test]
    fn star_allows_skipping() {
        let nfa = compile("a*");
        // start must reach accept via ε only.
        let mut seen = vec![false; nfa.state_count()];
        let mut stack = vec![nfa.start];
        seen[nfa.start as usize] = true;
        while let Some(q) = stack.pop() {
            for &(l, t) in &nfa.edges[q as usize] {
                if l == Trans::Eps && !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        assert!(seen[nfa.accept as usize]);
    }

    #[test]
    fn tests_are_shared_in_arena() {
        let nfa = compile("{contact & [date='3/4/21']}");
        assert_eq!(nfa.tests.len(), 1);
        let (label, _) = nfa.edges[nfa.start as usize][0];
        let t = nfa.test_of(label).unwrap();
        assert!(matches!(t, Test::And(_, _)));
        assert!(nfa.test_of(Trans::Eps).is_none());
    }

    fn compile_min(s: &str) -> MinimizedNfa {
        let mut it = Interner::new();
        let e = parse_expr(s, &mut it).unwrap();
        Nfa::compile_min(&e)
    }

    #[test]
    fn minimize_collapses_kleene_star_to_one_state() {
        // `(a+b)*` over single labels is the universal language over
        // {a, b}: its minimal DFA is one accepting state with self-loops.
        let m = compile_min("(a+b)*");
        assert!(m.minimized);
        assert_eq!(m.nfa.state_count(), 1);
        assert_eq!(m.nfa.start, m.nfa.accept);
        assert_eq!(m.signature.state_count(), 1);
        // Raw Thompson needs 8 states for the same expression.
        assert_eq!(compile("(a+b)*").state_count(), 8);
    }

    #[test]
    fn minimize_is_canonical_across_spellings() {
        // One interner, so syms are comparable across expressions.
        let mut it = Interner::new();
        let mut min = |s: &str| Nfa::compile_min(&parse_expr(s, &mut it).unwrap());
        // Distribution: a/(b+c) and a/b + a/c denote the same language,
        // and so must produce identical signatures...
        let left = min("a/(b+c)");
        let right = min("a/b + a/c");
        assert!(left.minimized && right.minimized);
        assert_eq!(left.signature, right.signature);
        // ...while a different language yields a different one.
        let other = min("a/b + a/d");
        assert_ne!(left.signature, other.signature);
    }

    #[test]
    fn minimize_handles_inverse_and_node_tests() {
        // Minimization treats Fwd/Bwd/Node as distinct letters: no
        // cross-kind merging even over the same underlying test.
        let fwd = compile_min("rides");
        let bwd = compile_min("rides^-");
        assert_ne!(fwd.signature, bwd.signature);
        let guarded = compile_min("?person/rides");
        assert!(guarded.minimized);
        // ?person/rides is Node(person)·Fwd(rides): 3 live classes.
        assert_eq!(guarded.signature.state_count(), 3);
    }

    #[test]
    fn minimize_never_changes_acceptance_on_figure2() {
        use crate::eval::Evaluator;
        use crate::model::LabeledView;
        use crate::product::Product;
        use kgq_graph::figures::figure2_labeled;
        use std::sync::Arc;
        let mut g = figure2_labeled();
        let exprs: Vec<PathExpr> = [
            "rides/rides^-",
            "(rides/rides^-)*",
            "?infected/(rides/rides^-)*",
        ]
        .iter()
        .map(|src| parse_expr(src, g.consts_mut()).unwrap())
        .collect();
        let view = LabeledView::new(&g);
        for e in &exprs {
            let raw = Evaluator::from_product(Arc::new(Product::build(&view, &Nfa::compile(e))));
            let min =
                Evaluator::from_product(Arc::new(Product::build(&view, &Nfa::compile_min(e).nfa)));
            assert_eq!(raw.pairs(), min.pairs(), "expr {e:?}");
        }
    }

    #[test]
    fn minimize_is_deterministic() {
        let a = compile_min("(rides/rides^-)* + ?infected");
        let b = compile_min("(rides/rides^-)* + ?infected");
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.nfa.edges, b.nfa.edges);
        assert_eq!(a.nfa.tests, b.nfa.tests);
    }
}
