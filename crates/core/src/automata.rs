//! Nondeterministic finite automata for path expressions.
//!
//! A [`PathExpr`] compiles (Thompson construction) into an [`Nfa`] whose
//! transitions are of three kinds:
//!
//! * `Eps` — structural ε-transitions from the construction,
//! * `Node(test)` — *guarded* ε-transitions: consume no edge, but require
//!   the current graph node to satisfy `test` (these implement the `?test`
//!   atoms of the paper's grammar),
//! * `Fwd(test)` / `Bwd(test)` — consuming transitions: follow one edge
//!   forward/backward whose label (or properties/features) satisfies
//!   `test`.
//!
//! The automaton has a single start and a single accept state. Evaluation,
//! counting, generation and enumeration all work on the product of the
//! graph with this NFA ([`crate::product`]).

use crate::expr::{PathExpr, Test};

/// A transition label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trans {
    /// Structural ε.
    Eps,
    /// Guarded ε: current node must satisfy test `t` (index into
    /// [`Nfa::tests`]).
    Node(u32),
    /// Consume one forward edge satisfying test `t`.
    Fwd(u32),
    /// Consume one backward edge satisfying test `t`.
    Bwd(u32),
}

/// An ε-NFA compiled from a path expression.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Adjacency: `edges[q]` lists `(label, target)` transitions.
    pub edges: Vec<Vec<(Trans, u32)>>,
    /// Test arena referenced by transition labels.
    pub tests: Vec<Test>,
    /// The unique start state.
    pub start: u32,
    /// The unique accepting state.
    pub accept: u32,
}

impl Nfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.edges.len()
    }

    /// Compiles `expr` with the Thompson construction.
    ///
    /// The number of states is linear in the size of the expression.
    pub fn compile(expr: &PathExpr) -> Nfa {
        let mut b = Builder {
            edges: Vec::new(),
            tests: Vec::new(),
        };
        let (s, a) = b.frag(expr);
        Nfa {
            edges: b.edges,
            tests: b.tests,
            start: s,
            accept: a,
        }
    }

    /// The test referenced by a transition label, if any.
    pub fn test_of(&self, t: Trans) -> Option<&Test> {
        match t {
            Trans::Eps => None,
            Trans::Node(i) | Trans::Fwd(i) | Trans::Bwd(i) => Some(&self.tests[i as usize]),
        }
    }
}

struct Builder {
    edges: Vec<Vec<(Trans, u32)>>,
    tests: Vec<Test>,
}

impl Builder {
    fn state(&mut self) -> u32 {
        self.edges.push(Vec::new());
        (self.edges.len() - 1) as u32
    }

    fn add(&mut self, from: u32, label: Trans, to: u32) {
        self.edges[from as usize].push((label, to));
    }

    fn test(&mut self, t: &Test) -> u32 {
        self.tests.push(t.clone());
        (self.tests.len() - 1) as u32
    }

    /// Returns the (start, accept) pair of the compiled fragment.
    fn frag(&mut self, e: &PathExpr) -> (u32, u32) {
        match e {
            PathExpr::NodeTest(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Node(ti), a);
                (s, a)
            }
            PathExpr::Forward(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Fwd(ti), a);
                (s, a)
            }
            PathExpr::Backward(t) => {
                let s = self.state();
                let a = self.state();
                let ti = self.test(t);
                self.add(s, Trans::Bwd(ti), a);
                (s, a)
            }
            PathExpr::Alt(l, r) => {
                let (ls, la) = self.frag(l);
                let (rs, ra) = self.frag(r);
                let s = self.state();
                let a = self.state();
                self.add(s, Trans::Eps, ls);
                self.add(s, Trans::Eps, rs);
                self.add(la, Trans::Eps, a);
                self.add(ra, Trans::Eps, a);
                (s, a)
            }
            PathExpr::Concat(l, r) => {
                let (ls, la) = self.frag(l);
                let (rs, ra) = self.frag(r);
                self.add(la, Trans::Eps, rs);
                (ls, ra)
            }
            PathExpr::Star(inner) => {
                let (is, ia) = self.frag(inner);
                let s = self.state();
                let a = self.state();
                self.add(s, Trans::Eps, is);
                self.add(s, Trans::Eps, a);
                self.add(ia, Trans::Eps, is);
                self.add(ia, Trans::Eps, a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use kgq_graph::Interner;

    fn compile(s: &str) -> Nfa {
        let mut it = Interner::new();
        let e = parse_expr(s, &mut it).unwrap();
        Nfa::compile(&e)
    }

    #[test]
    fn single_atom_has_two_states() {
        let nfa = compile("rides");
        assert_eq!(nfa.state_count(), 2);
        assert_eq!(nfa.edges[nfa.start as usize].len(), 1);
        let (label, to) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Fwd(_)));
        assert_eq!(to, nfa.accept);
    }

    #[test]
    fn backward_atom_uses_bwd() {
        let nfa = compile("rides^-");
        let (label, _) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Bwd(_)));
    }

    #[test]
    fn node_test_is_guarded_eps() {
        let nfa = compile("?person");
        let (label, _) = nfa.edges[nfa.start as usize][0];
        assert!(matches!(label, Trans::Node(_)));
    }

    #[test]
    fn state_count_is_linear() {
        let nfa = compile("?person/rides/?bus/rides^-/?infected");
        // Thompson: 2 states per atom, concat adds none.
        assert_eq!(nfa.state_count(), 10);
        let nfa = compile("(a+b)*");
        assert_eq!(nfa.state_count(), 8); // 4 atoms' states + 2 alt + 2 star
    }

    #[test]
    fn star_allows_skipping() {
        let nfa = compile("a*");
        // start must reach accept via ε only.
        let mut seen = vec![false; nfa.state_count()];
        let mut stack = vec![nfa.start];
        seen[nfa.start as usize] = true;
        while let Some(q) = stack.pop() {
            for &(l, t) in &nfa.edges[q as usize] {
                if l == Trans::Eps && !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        assert!(seen[nfa.accept as usize]);
    }

    #[test]
    fn tests_are_shared_in_arena() {
        let nfa = compile("{contact & [date='3/4/21']}");
        assert_eq!(nfa.tests.len(), 1);
        let (label, _) = nfa.edges[nfa.start as usize][0];
        let t = nfa.test_of(label).unwrap();
        assert!(matches!(t, Test::And(_, _)));
        assert!(nfa.test_of(Trans::Eps).is_none());
    }
}
