//! Bit-parallel multi-source reachability kernels over the product.
//!
//! The all-pairs and node-extraction evaluators ([`crate::eval`]) need the
//! accepting states reachable from *every* graph node's initial states.
//! Running one BFS per source touches the product CSR `n` times; this
//! module instead sweeps **64 sources per pass** (the machine word width,
//! in the style of multi-source BFS): the visited set is a bit-matrix
//! `Vec<u64>` with one word per product state, bit `j` meaning "reachable
//! from the batch's `j`-th source", and successor expansion is a single
//! `|=` that advances all 64 frontiers at once.
//!
//! Propagation is sparse: a worklist holds only states with undelivered
//! bits (`pending`), so each pass does work proportional to the number of
//! *newly set* bits, not to `states × rounds`. One pass over the product
//! therefore replaces up to 64 whole BFS traversals, which is where the
//! order-of-magnitude win on the hot path comes from — no threads needed
//! (and composing with them: batches are independent, so passes fan out
//! across the pool like per-source scans did).
//!
//! Determinism: within a batch, bits are delivered in whatever order the
//! worklist pops, but the *final* visited matrix is the unique reachability
//! fixpoint, and result extraction ([`ReachKernel::batch_ends`]) walks
//! accepting states in order and sorts per source — so kernel output is a
//! pure function of the product, independent of thread count and batch
//! scheduling. [`crate::eval`] exploits that to stay byte-identical to its
//! sequential reference implementations.
//!
//! The kernel also carries the deduplicated successor/predecessor CSRs
//! (edge ids dropped, targets deduped) used by the bidirectional
//! meet-in-the-middle search behind [`crate::eval::Evaluator::check`] and
//! `shortest_witness`: reachability only needs *whether* a neighbouring
//! state is reachable, and collapsing parallel edges shrinks the scanned
//! lists.

use crate::govern::{Governor, Interrupt, Ticker};
use crate::product::{PState, Product};
use kgq_graph::NodeId;

/// Sources swept per pass: one per bit of the frontier word.
pub const BATCH: usize = 64;

/// Per-state bytes charged to the governor for one sweep's bit-matrix
/// (`visited` + `pending`, one `u64` each).
const SWEEP_BYTES_PER_STATE: u64 = 16;

/// Precomputed reachability view of a [`Product`]: deduplicated
/// successor/predecessor adjacency (edge identities dropped) plus the
/// accepting-state list, in flat CSR form.
pub struct ReachKernel {
    /// CSR offsets into `succ`.
    succ_off: Vec<u32>,
    /// Distinct successor states, sorted per state.
    succ: Vec<PState>,
    /// CSR offsets into `pred`.
    pred_off: Vec<u32>,
    /// Distinct predecessor states, sorted per state.
    pred: Vec<PState>,
    /// All accepting product states, ascending.
    accepting: Vec<PState>,
    /// Accepting states with their graph nodes, sorted by node — lets
    /// [`ReachKernel::batch_ends`] emit each source's ends already
    /// sorted, with no per-source sort.
    accepting_by_node: Vec<(NodeId, PState)>,
    /// Distinct nodes among the accepting states: an upper bound on any
    /// source's end count, used to pre-size extraction buckets.
    accepting_nodes: usize,
}

impl ReachKernel {
    /// Builds the kernel's masks from a product. `O(transitions)`.
    pub fn build(p: &Product) -> ReachKernel {
        let n = p.state_count();
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ = Vec::new();
        succ_off.push(0u32);
        for s in 0..n as PState {
            let mut targets: Vec<PState> = p.out(s).iter().map(|&(_, s2)| s2).collect();
            targets.sort_unstable();
            targets.dedup();
            succ.extend(targets);
            succ_off.push(succ.len() as u32);
        }
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut pred = Vec::new();
        pred_off.push(0u32);
        for s in 0..n as PState {
            let mut sources: Vec<PState> = p.preds(s).iter().map(|&(s2, _)| s2).collect();
            sources.sort_unstable();
            sources.dedup();
            pred.extend(sources);
            pred_off.push(pred.len() as u32);
        }
        let accepting: Vec<PState> = (0..n as PState).filter(|&s| p.is_accepting(s)).collect();
        let mut accepting_by_node: Vec<(NodeId, PState)> =
            accepting.iter().map(|&s| (p.node_of(s), s)).collect();
        accepting_by_node.sort_unstable();
        let accepting_nodes = accepting_by_node
            .windows(2)
            .filter(|w| w[0].0 != w[1].0)
            .count()
            + usize::from(!accepting_by_node.is_empty());
        ReachKernel {
            succ_off,
            succ,
            pred_off,
            pred,
            accepting,
            accepting_by_node,
            accepting_nodes,
        }
    }

    /// Number of product states covered.
    pub fn state_count(&self) -> usize {
        self.succ_off.len() - 1
    }

    /// Distinct successors of `s`.
    #[inline]
    fn succ(&self, s: PState) -> &[PState] {
        let s = s as usize;
        &self.succ[self.succ_off[s] as usize..self.succ_off[s + 1] as usize]
    }

    /// Distinct predecessors of `s`.
    #[inline]
    fn pred(&self, s: PState) -> &[PState] {
        let s = s as usize;
        &self.pred[self.pred_off[s] as usize..self.pred_off[s + 1] as usize]
    }

    /// One bit-parallel pass: the reachability bit-matrix for up to
    /// [`BATCH`] sources (bit `j` of word `s` ⇔ product state `s` is
    /// reachable from `sources[j]`'s initial states).
    pub fn sweep(&self, p: &Product, sources: &[NodeId]) -> Vec<u64> {
        match self.sweep_impl(p, sources, None) {
            Ok(v) => v,
            Err(i) => unreachable!("ungoverned sweep interrupted: {i}"),
        }
    }

    /// Governed [`ReachKernel::sweep`]: charges the bit-matrix to the
    /// memory budget (caller releases via [`ReachKernel::release_sweep`])
    /// and ticks the step budget per successor-mask merge, batched
    /// through [`Ticker`].
    pub fn sweep_governed(
        &self,
        p: &Product,
        sources: &[NodeId],
        gov: &Governor,
    ) -> Result<Vec<u64>, Interrupt> {
        gov.charge_memory(SWEEP_BYTES_PER_STATE * self.state_count() as u64)?;
        self.sweep_impl(p, sources, Some(gov))
    }

    /// Returns the memory charged by [`ReachKernel::sweep_governed`].
    pub fn release_sweep(&self, gov: &Governor) {
        gov.release_memory(SWEEP_BYTES_PER_STATE * self.state_count() as u64);
    }

    fn sweep_impl(
        &self,
        p: &Product,
        sources: &[NodeId],
        gov: Option<&Governor>,
    ) -> Result<Vec<u64>, Interrupt> {
        debug_assert!(sources.len() <= BATCH, "more than {BATCH} sources");
        let n = self.state_count();
        let mut ticker = Ticker::maybe(gov);
        let mut visited = vec![0u64; n];
        // Bits set but not yet propagated; a state is on the frontier iff
        // its pending word is non-zero. Propagation is round-synchronized
        // (level BFS): all 64 frontiers advance together, so a state
        // accumulates every bit arriving in a round *before* its
        // successors are scanned — one expansion then delivers the whole
        // merged mask, which is where the 64-way sharing pays off. (A
        // LIFO worklist would trickle bits one at a time and do
        // per-source work again.)
        let mut pending = vec![0u64; n];
        let mut frontier: Vec<PState> = Vec::new();
        let mut next: Vec<PState> = Vec::new();
        for (j, &v) in sources.iter().enumerate() {
            let bit = 1u64 << j;
            for &s in p.initial(v) {
                if visited[s as usize] & bit == 0 {
                    visited[s as usize] |= bit;
                    if pending[s as usize] == 0 {
                        frontier.push(s);
                    }
                    pending[s as usize] |= bit;
                }
            }
        }
        let governed = gov.is_some();
        while !frontier.is_empty() {
            for idx in 0..frontier.len() {
                let s = frontier[idx];
                let bits = pending[s as usize];
                pending[s as usize] = 0;
                if bits == 0 {
                    continue;
                }
                let succ = self.succ(s);
                // Keep the ungoverned hot loop free of accounting, and
                // charge governed runs one state at a time (its whole
                // out-degree in one consult) rather than per edge — the
                // per-edge branch costs real time at millions of
                // expansions.
                if governed {
                    ticker.tick_n(succ.len() as u32)?;
                }
                for &s2 in succ {
                    let add = bits & !visited[s2 as usize];
                    if add != 0 {
                        visited[s2 as usize] |= add;
                        if pending[s2 as usize] == 0 {
                            next.push(s2);
                        }
                        pending[s2 as usize] |= add;
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
            // States fed new bits by a same-round neighbour after they
            // were expanded land on `next`; states fed bits *before*
            // their expansion already delivered them, and their zeroed
            // pending word makes the `next` entry a no-op.
        }
        ticker.flush()?;
        Ok(visited)
    }

    /// Per-source end nodes from a sweep's bit-matrix: for each batch
    /// source, the sorted, deduplicated nodes of reachable accepting
    /// states — exactly [`crate::eval::Evaluator::ends_from`] of that
    /// source.
    pub fn batch_ends(
        &self,
        _p: &Product,
        sources: &[NodeId],
        visited: &[u64],
    ) -> Vec<Vec<NodeId>> {
        let mut per: Vec<Vec<NodeId>> = vec![Vec::new(); sources.len()];
        // Walking accepting states in node order keeps each source's list
        // sorted as it is built; duplicate nodes (several accepting
        // states at one node) are adjacent, so a last-element check
        // dedups without a sort.
        for &(node, s) in &self.accepting_by_node {
            let mut bits = visited[s as usize];
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if per[j].last() != Some(&node) {
                    per[j].push(node);
                }
            }
        }
        per
    }

    /// Fused pair extraction: appends `(source, end)` tuples for the
    /// whole batch to `out`, grouped by source in batch order with each
    /// group sorted — exactly the concatenation of
    /// [`ReachKernel::batch_ends`], minus the intermediate allocations.
    /// `scratch` is reused across batches (cleared here); bucket
    /// capacity survives the clear, so a long-lived scratch settles into
    /// allocation-free steady state.
    pub fn append_batch_pairs(
        &self,
        sources: &[NodeId],
        visited: &[u64],
        scratch: &mut Vec<Vec<NodeId>>,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        // Upper bound on this batch's pair count (duplicates included).
        let set_bits: usize = self
            .accepting
            .iter()
            .map(|&s| visited[s as usize].count_ones() as usize)
            .sum();
        out.reserve(set_bits);
        if set_bits * 4 >= sources.len() * self.accepting_by_node.len() {
            // Dense batch: fold the accepting states' visited words into
            // one mask per node (OR-merging handles nodes with several
            // accepting states, so no dedup test remains), then scan
            // source-major and append straight to the output — one tight
            // pass over a ~node-count array that stays cache-resident
            // across the 64 scans. No buckets, no copy.
            let mut masks: Vec<(NodeId, u64)> = Vec::with_capacity(self.accepting_nodes);
            for &(node, s) in &self.accepting_by_node {
                let w = visited[s as usize];
                match masks.last_mut() {
                    Some(m) if m.0 == node => m.1 |= w,
                    _ => masks.push((node, w)),
                }
            }
            for (j, &v) in sources.iter().enumerate() {
                for &(node, w) in &masks {
                    if w >> j & 1 == 1 {
                        out.push((v, node));
                    }
                }
            }
            return;
        }
        // Sparse batch: node-major bit iteration touches only set bits;
        // reusable buckets regroup by source. Capacity grows amortized
        // and survives `clear`, so a reused scratch never reallocates
        // past its first batches, while a fresh one (governed or
        // parallel callers) allocates only what its batch needs instead
        // of the worst-case accepting-node count per bucket.
        scratch.resize_with(sources.len().max(scratch.len()), Vec::new);
        for bucket in scratch.iter_mut() {
            bucket.clear();
        }
        for &(node, s) in &self.accepting_by_node {
            let mut bits = visited[s as usize];
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if scratch[j].last() != Some(&node) {
                    scratch[j].push(node);
                }
            }
        }
        for (j, &v) in sources.iter().enumerate() {
            out.extend(scratch[j].iter().map(|&b| (v, b)));
        }
    }

    /// Which batch sources reach any accepting state: bit `j` set ⇔
    /// `sources[j]` starts a matching path.
    pub fn batch_matches(&self, visited: &[u64]) -> u64 {
        let mut matched = 0u64;
        for &s in &self.accepting {
            matched |= visited[s as usize];
        }
        matched
    }

    /// Bidirectional meet-in-the-middle reachability: true iff some
    /// accepting state at node `b` is reachable from `a`'s initial
    /// states. Expands whichever frontier is cheaper (by total degree)
    /// each round, so highly asymmetric searches do sublinear work
    /// compared to a full forward BFS.
    pub fn check(&self, p: &Product, a: NodeId, b: NodeId) -> bool {
        let inits = p.initial(a);
        if inits.is_empty() {
            return false;
        }
        let targets: Vec<PState> = self
            .accepting
            .iter()
            .copied()
            .filter(|&s| p.node_of(s) == b)
            .collect();
        if targets.is_empty() {
            return false;
        }
        let n = self.state_count();
        let mut fseen = vec![false; n];
        let mut bseen = vec![false; n];
        let mut ffr: Vec<PState> = Vec::new();
        let mut bfr: Vec<PState> = Vec::new();
        for &s in &targets {
            bseen[s as usize] = true;
            bfr.push(s);
        }
        for &s in inits {
            if !fseen[s as usize] {
                fseen[s as usize] = true;
                if bseen[s as usize] {
                    return true; // zero-edge match
                }
                ffr.push(s);
            }
        }
        while !ffr.is_empty() && !bfr.is_empty() {
            let fcost: usize = ffr.iter().map(|&s| self.succ(s).len()).sum();
            let bcost: usize = bfr.iter().map(|&s| self.pred(s).len()).sum();
            if fcost <= bcost {
                let mut next = Vec::new();
                for &s in &ffr {
                    for &s2 in self.succ(s) {
                        if !fseen[s2 as usize] {
                            fseen[s2 as usize] = true;
                            if bseen[s2 as usize] {
                                return true;
                            }
                            next.push(s2);
                        }
                    }
                }
                ffr = next;
            } else {
                let mut next = Vec::new();
                for &s in &bfr {
                    for &s2 in self.pred(s) {
                        if !bseen[s2 as usize] {
                            bseen[s2 as usize] = true;
                            if fseen[s2 as usize] {
                                return true;
                            }
                            next.push(s2);
                        }
                    }
                }
                bfr = next;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::model::LabeledView;
    use crate::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;

    fn eval(expr: &str) -> (Evaluator, usize) {
        let mut g = figure2_labeled();
        let e = parse_expr(expr, g.consts_mut()).unwrap();
        let n = g.node_count();
        let view = LabeledView::new(&g);
        (Evaluator::new(&view, &e), n)
    }

    #[test]
    fn sweep_matches_per_source_bfs() {
        for expr in [
            "rides/rides^-",
            "(contact)*",
            "?person/rides/?bus/rides^-/?infected",
        ] {
            let (ev, n) = eval(expr);
            let kernel = ReachKernel::build(ev.product());
            let sources: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let visited = kernel.sweep(ev.product(), &sources);
            let ends = kernel.batch_ends(ev.product(), &sources, &visited);
            for (j, &v) in sources.iter().enumerate() {
                assert_eq!(ends[j], ev.ends_from(v), "expr {expr} source {v:?}");
            }
        }
    }

    #[test]
    fn batch_matches_flags_exactly_the_matching_starts() {
        let (ev, n) = eval("?person/rides/?bus/rides^-/?infected");
        let kernel = ReachKernel::build(ev.product());
        let sources: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let visited = kernel.sweep(ev.product(), &sources);
        let matched = kernel.batch_matches(&visited);
        let expect = ev.matching_starts_sequential();
        for (j, &v) in sources.iter().enumerate() {
            assert_eq!(matched >> j & 1 == 1, expect.contains(&v));
        }
    }

    #[test]
    fn bidirectional_check_agrees_with_forward_bfs() {
        for expr in ["(contact)*", "rides/rides^-", "{!rides & !lives}^-"] {
            let (ev, n) = eval(expr);
            let kernel = ReachKernel::build(ev.product());
            for a in 0..n as u32 {
                let ends = ev.ends_from(NodeId(a));
                for b in 0..n as u32 {
                    assert_eq!(
                        kernel.check(ev.product(), NodeId(a), NodeId(b)),
                        ends.binary_search(&NodeId(b)).is_ok(),
                        "expr {expr} {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn governed_sweep_with_unlimited_budget_is_identical() {
        let (ev, n) = eval("(contact + rides/rides^-)*");
        let kernel = ReachKernel::build(ev.product());
        let sources: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let gov = Governor::unlimited();
        let governed = kernel.sweep_governed(ev.product(), &sources, &gov).unwrap();
        kernel.release_sweep(&gov);
        assert_eq!(governed, kernel.sweep(ev.product(), &sources));
    }
}
