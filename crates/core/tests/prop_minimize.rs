//! Property-based soundness tests for automaton minimization: on random
//! graphs and random path expressions, evaluating through the minimized
//! DFA must be indistinguishable from evaluating through the raw
//! Thompson NFA — same pairs, same starts, same point answers — because
//! path-match semantics is a function of the automaton's *language* over
//! the extended alphabet, and Hopcroft minimization preserves it.

use kgq_core::automata::Nfa;
use kgq_core::eval::Evaluator;
use kgq_core::expr::{PathExpr, Test};
use kgq_core::model::LabeledView;
use kgq_core::product::Product;
use kgq_graph::{LabeledGraph, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const NODE_LABELS: [&str; 2] = ["a", "b"];
const EDGE_LABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct GraphSpec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..7).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..NODE_LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 1..12),
        )
            .prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build(spec: &GraphSpec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    for l in NODE_LABELS.iter().chain(EDGE_LABELS.iter()) {
        g.intern(l);
    }
    let nodes: Vec<NodeId> = spec
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), NODE_LABELS[l]).unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

/// Random expression over labels, inverses, node tests, negated tests.
fn expr_strategy(g: &LabeledGraph) -> impl Strategy<Value = PathExpr> {
    let nl: Vec<_> = NODE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let el: Vec<_> = EDGE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let leaf = prop_oneof![
        (0..nl.len()).prop_map({
            let nl = nl.clone();
            move |i| PathExpr::NodeTest(Test::Label(nl[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Forward(Test::Label(el[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Backward(Test::Label(el[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Forward(Test::Label(el[i]).not())
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.concat(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.alt(b)),
            inner.prop_map(|a| a.star()),
        ]
    })
}

fn graph_and_expr() -> impl Strategy<Value = (GraphSpec, PathExpr)> {
    graph_strategy().prop_flat_map(|spec| {
        let g = build(&spec);
        let e = expr_strategy(&g);
        (Just(spec), e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn minimized_evaluation_equals_raw_nfa_evaluation((spec, expr) in graph_and_expr()) {
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let raw = Evaluator::from_product(Arc::new(Product::build(&view, &Nfa::compile(&expr))));
        let min = Nfa::compile_min(&expr);
        let minimized =
            Evaluator::from_product(Arc::new(Product::build(&view, &min.nfa)));
        prop_assert_eq!(raw.pairs_sequential(), minimized.pairs_sequential());
        prop_assert_eq!(
            raw.matching_starts_sequential(),
            minimized.matching_starts_sequential()
        );
        // Kernel paths on the minimized product agree with the raw
        // product's sequential reference as well.
        prop_assert_eq!(raw.pairs_sequential(), minimized.pairs());
        prop_assert_eq!(raw.matching_starts_sequential(), minimized.matching_starts());
        for a in g.base().nodes() {
            for b in g.base().nodes() {
                prop_assert_eq!(
                    raw.ends_from(a).binary_search(&b).is_ok(),
                    minimized.check(a, b),
                    "{:?} -> {:?}", a, b
                );
            }
        }
    }

    #[test]
    fn compile_min_is_deterministic((spec, expr) in graph_and_expr()) {
        // The spec is irrelevant here but keeps the strategy shared.
        let _ = spec;
        let a = Nfa::compile_min(&expr);
        let b = Nfa::compile_min(&expr);
        prop_assert_eq!(&a.signature, &b.signature);
        prop_assert_eq!(a.minimized, b.minimized);
    }

    #[test]
    fn signatures_collapse_distributivity((spec, expr) in graph_and_expr()) {
        let _ = spec;
        // r/(p+q) and r/p + r/q recognize the same language, so their
        // minimal automata must carry the same canonical signature.
        let (p, q) = (expr.clone().star(), expr.clone());
        let lhs = expr.clone().concat(p.clone().alt(q.clone()));
        let rhs = (expr.clone().concat(p)).alt(expr.concat(q));
        let a = Nfa::compile_min(&lhs);
        let b = Nfa::compile_min(&rhs);
        if a.minimized && b.minimized {
            prop_assert_eq!(&a.signature, &b.signature);
        }
    }

    #[test]
    fn shortest_witness_agrees_with_sequential((spec, expr) in graph_and_expr()) {
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        for a in g.base().nodes() {
            for b in g.base().nodes() {
                let bidi = ev.shortest_witness(a, b);
                let seq = ev.shortest_witness_sequential(a, b);
                // Both must agree on existence and on minimal length
                // (several distinct shortest paths may exist, so the
                // witnesses themselves are allowed to differ).
                prop_assert_eq!(
                    bidi.as_ref().map(|p| p.edges.len()),
                    seq.as_ref().map(|p| p.edges.len()),
                    "{:?} -> {:?}", a, b
                );
                if let Some(p) = &bidi {
                    prop_assert_eq!(p.start, a);
                    prop_assert_eq!(p.end(&view), Some(b));
                }
            }
        }
    }
}
