//! Property-based tests for governed evaluation: with an unlimited
//! budget, governance must be invisible — byte-identical results at
//! every thread count — and with a finite budget, every partial result
//! must be an exact prefix of the full answer, with the enumeration
//! cursor replaying the remainder to exactly the full set.

use kgq_core::cache::QueryCache;
use kgq_core::count::{count_paths, count_paths_governed, CountOutcome};
use kgq_core::enumerate::{enumerate_paths, enumerate_paths_governed, enumerate_paths_resumed};
use kgq_core::eval::Evaluator;
use kgq_core::govern::{Budget, CancelToken, Completion, Governor};
use kgq_core::model::LabeledView;
use kgq_core::parallel::set_threads;
use kgq_core::parser::parse_expr;
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_graph::LabeledGraph;
use proptest::prelude::*;

const ER_EXPRS: [&str; 4] = ["(p+q)*", "p/q^-", "?a/(p)*", "(p/q)*+q^-"];
const BA_EXPRS: [&str; 3] = ["(link)*", "link/link^-", "?v/(link+link^-)*"];

#[derive(Clone, Debug)]
enum Spec {
    Er {
        n: usize,
        m: usize,
        seed: u64,
        expr: usize,
    },
    Ba {
        n: usize,
        seed: u64,
        expr: usize,
    },
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (3usize..14, 2usize..30, 0u64..1000, 0..ER_EXPRS.len())
            .prop_map(|(n, m, seed, expr)| Spec::Er { n, m, seed, expr }),
        (4usize..14, 0u64..1000, 0..BA_EXPRS.len()).prop_map(|(n, seed, expr)| Spec::Ba {
            n,
            seed,
            expr
        }),
    ]
}

fn build(spec: &Spec) -> (LabeledGraph, kgq_core::PathExpr) {
    match *spec {
        Spec::Er { n, m, seed, expr } => {
            let mut g = gnm_labeled(n, m, &["a", "b"], &["p", "q"], seed);
            let e = parse_expr(ER_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
        Spec::Ba { n, seed, expr } => {
            let mut g = barabasi_albert(n, 2, "v", "link", seed);
            let e = parse_expr(BA_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unlimited_governed_pairs_equal_ungoverned_at_every_thread_count(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let reference = ev.pairs();
        for &t in &THREAD_COUNTS {
            set_threads(t);
            let gov = Governor::unlimited();
            let res = ev.pairs_governed(&gov).unwrap();
            prop_assert_eq!(res.completion, Completion::Complete, "threads={}", t);
            prop_assert!(!res.degraded);
            prop_assert_eq!(&res.value, &reference, "threads={}", t);
        }
    }

    #[test]
    fn unlimited_governed_starts_equal_ungoverned_at_every_thread_count(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let reference = ev.matching_starts();
        for &t in &THREAD_COUNTS {
            set_threads(t);
            let gov = Governor::unlimited();
            let res = ev.matching_starts_governed(&gov).unwrap();
            prop_assert_eq!(res.completion, Completion::Complete, "threads={}", t);
            prop_assert_eq!(&res.value, &reference, "threads={}", t);
        }
    }

    #[test]
    fn unlimited_governed_count_is_exact(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let k = 3;
        let exact = count_paths(&view, &expr, k).unwrap();
        let res =
            count_paths_governed(&view, &expr, k, &Budget::default(), CancelToken::new()).unwrap();
        prop_assert!(!res.degraded);
        prop_assert_eq!(res.value, CountOutcome::Exact(exact));
    }

    #[test]
    fn governed_pairs_with_a_result_budget_are_an_exact_prefix(
        spec in spec_strategy(),
        cap in 0u64..40,
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let full = ev.pairs();
        let gov = Governor::new(&Budget::default().with_max_results(cap));
        let res = ev.pairs_governed(&gov).unwrap();
        let took = res.value.len();
        prop_assert!(took as u64 <= cap.max(full.len() as u64));
        prop_assert_eq!(&res.value[..], &full[..took], "not a prefix (cap={})", cap);
        if full.len() as u64 <= cap {
            prop_assert_eq!(res.completion, Completion::Complete);
            prop_assert_eq!(took, full.len());
        } else {
            prop_assert!(res.is_partial());
        }
    }

    #[test]
    fn governed_pairs_with_a_step_budget_are_an_exact_prefix(
        spec in spec_strategy(),
        steps in 1u64..4000,
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let full = ev.pairs();
        let gov = Governor::new(&Budget::default().with_max_steps(steps));
        let res = ev.pairs_governed(&gov).unwrap();
        let took = res.value.len();
        prop_assert_eq!(&res.value[..], &full[..took], "not a prefix (steps={})", steps);
        if res.completion == Completion::Complete {
            prop_assert_eq!(took, full.len());
        }
    }

    #[test]
    fn governed_pairs_with_a_deadline_are_an_exact_prefix(
        spec in spec_strategy(),
        micros in 0u64..400,
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let full = ev.pairs();
        let gov = Governor::new(
            &Budget::default().with_deadline(std::time::Duration::from_micros(micros)),
        );
        let res = ev.pairs_governed(&gov).unwrap();
        let took = res.value.len();
        prop_assert_eq!(&res.value[..], &full[..took], "not a prefix ({}us)", micros);
        if res.completion == Completion::Complete {
            prop_assert_eq!(took, full.len());
        }
    }

    #[test]
    fn governed_starts_with_a_step_budget_are_an_exact_prefix(
        spec in spec_strategy(),
        steps in 1u64..4000,
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let full = ev.matching_starts();
        let gov = Governor::new(&Budget::default().with_max_steps(steps));
        let res = ev.matching_starts_governed(&gov).unwrap();
        let took = res.value.len();
        prop_assert_eq!(&res.value[..], &full[..took], "not a prefix (steps={})", steps);
        if res.completion == Completion::Complete {
            prop_assert_eq!(took, full.len());
        }
    }

    #[test]
    fn truncated_enumeration_replays_to_the_full_set(
        spec in spec_strategy(),
        k in 0usize..4,
        page_cap in 1u64..8,
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let full = enumerate_paths(&view, &expr, k);
        // Page through with a per-page result budget; chain cursors
        // until the enumeration reports complete.
        let mut collected = Vec::new();
        let gov = Governor::new(&Budget::default().with_max_results(page_cap));
        let mut page = enumerate_paths_governed(&view, &expr, k, &gov).unwrap();
        collected.extend(page.value.paths.iter().cloned());
        let mut rounds = 0;
        while let Some(cursor) = page.value.cursor.clone() {
            rounds += 1;
            prop_assert!(rounds <= full.len() + 2, "cursor chain does not converge");
            let gov = Governor::new(&Budget::default().with_max_results(page_cap));
            page = enumerate_paths_resumed(&view, &expr, &cursor, &gov).unwrap();
            collected.extend(page.value.paths.iter().cloned());
        }
        prop_assert_eq!(page.completion, Completion::Complete);
        prop_assert_eq!(collected, full, "k={} page_cap={}", k, page_cap);
    }

    #[test]
    fn governed_cache_hit_is_byte_identical_to_cold_evaluation(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let cold_pairs = Evaluator::new(&view, &expr).pairs();
        let cache = QueryCache::new();
        cache
            .get_or_compile_governed(&view, 0, &expr, &Governor::unlimited())
            .unwrap();
        let warm = cache
            .get_or_compile_governed(&view, 0, &expr, &Governor::unlimited())
            .unwrap();
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(warm.evaluator().pairs(), cold_pairs);
    }
}
