//! Property-based agreement tests for the static analyzer: on random ER
//! and BA graphs, an `empty` verdict must always agree with actual
//! evaluation (at every thread count), schema-based transition pruning
//! must never change answers, and plan advice must never change output
//! bytes.

use kgq_core::analyze::{analyze_expr, pruned_min, PlanAdvice};
use kgq_core::automata::Nfa;
use kgq_core::eval::Evaluator;
use kgq_core::model::LabeledView;
use kgq_core::parallel::set_threads;
use kgq_core::parser::parse_expr;
use kgq_core::product::Product;
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_graph::schema::SchemaSummary;
use kgq_graph::LabeledGraph;
use proptest::prelude::*;
use std::sync::Arc;

/// Expression pool mixing live labels with `ghost`/`phantom` (absent
/// from every generated graph) so emptiness verdicts of both polarities
/// are exercised, plus contradictions and dead star bodies.
const ER_EXPRS: [&str; 8] = [
    "(p+q)*",
    "p/q^-",
    "ghost",
    "ghost/p",
    "(ghost)*/q",
    "{p & !p}",
    "?{a & b}/p",
    "(p+ghost)*",
];
const BA_EXPRS: [&str; 5] = [
    "(link)*",
    "link/link^-",
    "phantom/link",
    "?v/(link+phantom)*",
    "?phantom",
];

#[derive(Clone, Debug)]
enum Spec {
    Er {
        n: usize,
        m: usize,
        seed: u64,
        expr: usize,
    },
    Ba {
        n: usize,
        seed: u64,
        expr: usize,
    },
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (3usize..14, 2usize..30, 0u64..1000, 0..ER_EXPRS.len())
            .prop_map(|(n, m, seed, expr)| Spec::Er { n, m, seed, expr }),
        (4usize..14, 0u64..1000, 0..BA_EXPRS.len()).prop_map(|(n, seed, expr)| Spec::Ba {
            n,
            seed,
            expr
        }),
    ]
}

fn build(spec: &Spec) -> (LabeledGraph, kgq_core::PathExpr) {
    match *spec {
        Spec::Er { n, m, seed, expr } => {
            let mut g = gnm_labeled(n, m, &["a", "b"], &["p", "q"], seed);
            let e = parse_expr(ER_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
        Spec::Ba { n, seed, expr } => {
            let mut g = barabasi_albert(n, 2, "v", "link", seed);
            let e = parse_expr(BA_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn empty_verdict_agrees_with_evaluation_at_every_thread_count(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let schema = SchemaSummary::from_labeled(&g);
        let report = analyze_expr(&expr, &schema, None);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        for &t in &THREAD_COUNTS {
            set_threads(t);
            let pairs = ev.pairs();
            if report.is_provably_empty() {
                // Deny[empty-language] is a *proof*: zero pairs, always.
                prop_assert!(pairs.is_empty(), "threads={} verdict=empty but {} pairs", t, pairs.len());
            }
            // The language facts agree with the verdict flag.
            prop_assert_eq!(report.language.unwrap().empty, report.is_provably_empty());
        }
    }

    #[test]
    fn unsat_pruning_never_changes_results(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let schema = SchemaSummary::from_labeled(&g);
        let view = LabeledView::new(&g);
        // Reference: the full (unpruned) minimal automaton, as the cache
        // would compile it.
        let full = Nfa::compile_min(&expr);
        let reference =
            Evaluator::from_product(Arc::new(Product::build(&view, &full.nfa))).pairs_sequential();
        // Candidate: transitions with provably unsatisfiable guards removed.
        let pruned = pruned_min(&expr, &schema);
        let got =
            Evaluator::from_product(Arc::new(Product::build(&view, &pruned.nfa))).pairs_sequential();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn plan_advice_never_changes_output_bytes(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let ref_pairs = ev.pairs_planned(PlanAdvice::Sequential);
        let ref_starts = ev.matching_starts_planned(PlanAdvice::Sequential);
        for advice in [PlanAdvice::BitParallel, PlanAdvice::Bidirectional] {
            prop_assert_eq!(&ev.pairs_planned(advice), &ref_pairs, "{:?}", advice);
            prop_assert_eq!(&ev.matching_starts_planned(advice), &ref_starts, "{:?}", advice);
        }
    }
}
