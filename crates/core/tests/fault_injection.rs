//! Fault-injection suite (requires `--features fault-injection`).
//!
//! Arms the engine's compiled-in fault points with deterministic panics,
//! delays and budget starvation, and proves three properties:
//!
//! 1. faults never poison the [`QueryCache`] — an errored compile leaves
//!    the map untouched and a retry is byte-identical to a cold run;
//! 2. no worker thread ever leaks — the thread count returns to its
//!    baseline after every faulted scan;
//! 3. every fault surfaces as a typed [`EvalError`], never an unwinding
//!    panic or a hang, and the outcome is reproducible from the seed.
//!
//! The fault plan is process-global, so every test serializes on one
//! mutex.
#![cfg(feature = "fault-injection")]

use kgq_core::cache::QueryCache;
use kgq_core::count::count_paths_governed;
use kgq_core::enumerate::enumerate_paths_governed;
use kgq_core::eval::Evaluator;
use kgq_core::govern::{fault, Budget, CancelToken, EvalError, Governor, Interrupt};
use kgq_core::model::LabeledView;
use kgq_core::parallel::set_threads;
use kgq_core::parser::parse_expr;
use kgq_graph::generate::gnm_labeled;
use std::sync::{Mutex, MutexGuard, Once};
use std::time::Duration;

/// Every compiled-in fault site.
const SITES: [&str; 8] = [
    "product::build",
    "det::build",
    "eval::bfs",
    "count::dp",
    "approx::build",
    "enumerate::build",
    "cache::compile",
    "govern::tick",
];

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests on the global fault plan and silences the default
/// panic hook for injected panics (they are caught and converted to
/// typed errors; their backtraces are just noise).
fn serial() -> MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

fn setup() -> (kgq_graph::LabeledGraph, kgq_core::PathExpr) {
    let mut g = gnm_labeled(14, 40, &["a", "b"], &["p", "q"], 7);
    let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    (g, e)
}

/// A graph spanning several 64-source kernel batches, for faults that
/// must land *mid-scan* (the `eval::bfs` site fires once per batch, not
/// once per source).
fn setup_batched() -> (kgq_graph::LabeledGraph, kgq_core::PathExpr) {
    let mut g = gnm_labeled(200, 600, &["a", "b"], &["p", "q"], 7);
    let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    (g, e)
}

/// Current thread count of this process (Linux).
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn injected_compile_panic_is_typed_and_never_poisons_the_cache() {
    let _guard = serial();
    let (g, e) = setup();
    let view = LabeledView::new(&g);
    let cold = Evaluator::new(&view, &e).pairs();
    let cache = QueryCache::new();
    fault::arm("cache::compile", fault::Action::Panic, 0);
    let err = cache
        .get_or_compile_governed(&view, 0, &e, &Governor::unlimited())
        .unwrap_err();
    match err {
        EvalError::Panic(msg) => assert!(msg.contains("injected fault at cache::compile")),
        other => panic!("expected a typed panic, got {other}"),
    }
    assert!(cache.is_empty(), "errored compile inserted a partial entry");
    fault::clear();
    // Retry on the same cache: byte-identical to the cold run.
    let retry = cache
        .get_or_compile_governed(&view, 0, &e, &Governor::unlimited())
        .unwrap();
    assert_eq!(retry.evaluator().pairs(), cold);
}

#[test]
fn injected_product_panic_inside_compile_is_typed() {
    let _guard = serial();
    let (g, e) = setup();
    let view = LabeledView::new(&g);
    let cache = QueryCache::new();
    fault::arm("product::build", fault::Action::Panic, 0);
    let err = cache
        .get_or_compile_governed(&view, 0, &e, &Governor::unlimited())
        .unwrap_err();
    assert!(matches!(err, EvalError::Panic(_)), "got {err}");
    assert!(cache.is_empty());
}

#[test]
fn injected_worker_panic_is_isolated_at_every_thread_count() {
    let _guard = serial();
    let (g, e) = setup_batched();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &e);
    let reference = ev.pairs();
    for threads in [1, 2, 4] {
        set_threads(threads);
        fault::arm("eval::bfs", fault::Action::Panic, 3);
        let err = ev.pairs_governed(&Governor::unlimited()).unwrap_err();
        match err {
            EvalError::Panic(msg) => assert!(msg.contains("injected fault at eval::bfs")),
            other => panic!("threads={threads}: expected a typed panic, got {other}"),
        }
        fault::clear();
        // The pool survived the panic: the next scan is correct.
        let again = ev.pairs_governed(&Governor::unlimited()).unwrap();
        assert_eq!(again.value, reference, "threads={threads}");
    }
    set_threads(1);
}

#[test]
fn injected_delay_trips_the_deadline() {
    let _guard = serial();
    let (g, e) = setup();
    let view = LabeledView::new(&g);
    fault::arm("product::build", fault::Action::DelayMs(30), 0);
    let gov = Governor::new(&Budget::default().with_deadline(Duration::from_millis(5)));
    let cache = QueryCache::new();
    let err = cache
        .get_or_compile_governed(&view, 0, &e, &gov)
        .unwrap_err();
    assert!(
        matches!(err, EvalError::Interrupted(Interrupt::DeadlineExceeded)),
        "got {err}"
    );
    assert!(cache.is_empty());
}

#[test]
fn starvation_trips_the_step_budget_and_partials_are_prefixes() {
    let _guard = serial();
    set_threads(1);
    let (g, e) = setup_batched();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &e);
    let full = ev.pairs();
    // Every governor consultation from the third onward reports
    // starvation: the scan trips mid-way and must return a clean prefix.
    fault::arm_persistent("govern::tick", fault::Action::Starve, 2);
    let res = ev.pairs_governed(&Governor::unlimited()).unwrap();
    fault::clear();
    assert!(res.is_partial(), "starvation did not trip");
    assert!(matches!(
        res.completion,
        kgq_core::govern::Completion::Partial(Interrupt::StepBudget)
    ));
    let took = res.value.len();
    assert_eq!(&res.value[..], &full[..took], "partial is not a prefix");
}

#[test]
fn seeded_fault_campaign_is_deterministic_typed_and_leak_free() {
    let _guard = serial();
    set_threads(1);
    let baseline = thread_count();
    for seed in 0..12 {
        let first = campaign(seed);
        let second = campaign(seed);
        assert_eq!(first, second, "seed {seed} was not reproducible");
    }
    assert_eq!(
        thread_count(),
        baseline,
        "faulted scans leaked worker threads"
    );
}

/// Runs the whole governed pipeline under a seed-derived panic plan and
/// records every outcome as a string. Each call must be: free of
/// unwinding panics (every fault surfaces as `Err`), and a pure
/// function of `seed`.
fn campaign(seed: u64) -> Vec<String> {
    fault::clear();
    fault::arm_seeded(seed, &SITES, fault::Action::Panic, 40);
    let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], seed);
    let e = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let mut out = Vec::new();

    let cache = QueryCache::new();
    let compile = cache.get_or_compile_governed(&view, 0, &e, &Governor::unlimited());
    out.push(match &compile {
        Ok(c) => format!("compile: ok ({} states)", c.product().state_count()),
        Err(err) => format!("compile: {err}"),
    });
    out.push(format!("cache entries: {}", cache.len()));

    out.push(match &compile {
        // Ungoverned construction would hit `product::build` outside any
        // isolation — reuse the governed compile instead.
        Ok(c) => match c.evaluator().pairs_governed(&Governor::unlimited()) {
            Ok(res) => format!(
                "pairs: {} rows, partial={}",
                res.value.len(),
                res.is_partial()
            ),
            Err(err) => format!("pairs: {err}"),
        },
        Err(_) => "pairs: skipped (compile failed)".to_owned(),
    });

    out.push(
        match count_paths_governed(&view, &e, 3, &Budget::default(), CancelToken::new()) {
            Ok(res) => format!("count: {} degraded={}", res.value, res.degraded),
            Err(err) => format!("count: {err}"),
        },
    );

    out.push(
        match enumerate_paths_governed(&view, &e, 2, &Governor::unlimited()) {
            Ok(res) => format!(
                "enumerate: {} paths, cursor={}",
                res.value.paths.len(),
                res.value.cursor.is_some()
            ),
            Err(err) => format!("enumerate: {err}"),
        },
    );

    fault::clear();
    out
}
