//! Property-based tests for the scale path (`kgq_core::scale`): on
//! arbitrary random graphs and label-only expressions, the sharded
//! 64-lane sweep must return byte-identical output over raw and packed
//! adjacency at every chunk count, and agree (as a set) with the
//! product-automaton evaluator.

use kgq_core::eval::eval_pairs;
use kgq_core::model::LabeledView;
use kgq_core::parser::parse_expr;
use kgq_core::scale::{LabelDfa, PackedAdjacency, RawAdjacency, ScaleEvaluator};
use kgq_graph::{LabelIndex, LabeledGraph, NodeId, PackedLabelIndex};
use proptest::prelude::*;

const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];

/// Label-only expressions over the three-letter alphabet, covering
/// concatenation, alternation, star and the inverse step.
const EXPRS: [&str; 6] = ["a", "a/b", "(a+b)*/c", "a/b^-", "c*", "(a+b^-)/c*"];

#[derive(Clone, Debug)]
struct Spec {
    n: usize,
    edges: Vec<(usize, usize, usize)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..100)
            .prop_map(move |edges| Spec { n, edges })
    })
}

fn build(spec: &Spec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..spec.n)
        .map(|i| g.add_node(&format!("n{i}"), "v").unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw and packed adjacency produce byte-identical `pairs()` and
    /// `matching_starts()` at chunk counts 1, 2 and 4, and the pair
    /// set equals the product-automaton oracle.
    #[test]
    fn scale_sweep_is_deterministic_and_correct(
        spec in spec_strategy(),
        expr_i in 0usize..EXPRS.len(),
    ) {
        let mut g = build(&spec);
        let idx = LabelIndex::build(&g);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let n = spec.n as u32;
        let src = EXPRS[expr_i];
        let expr = parse_expr(src, g.consts_mut()).unwrap();
        let dfa = LabelDfa::compile(&expr, |s| idx.dense_id(s)).unwrap();

        let raw = RawAdjacency(&idx);
        let pview = packed.view();
        let pk = PackedAdjacency(pview);
        let ev_raw = ScaleEvaluator::new(&raw, dfa.clone());
        let ev_pk = ScaleEvaluator::new(&pk, dfa);

        let base_pairs = ev_raw.pairs(0..n, 1);
        let base_starts = ev_raw.matching_starts(0..n, 1);
        for chunks in [1usize, 2, 4] {
            prop_assert_eq!(
                &base_pairs, &ev_raw.pairs(0..n, chunks),
                "raw pairs chunks={} expr={}", chunks, src);
            prop_assert_eq!(
                &base_pairs, &ev_pk.pairs(0..n, chunks),
                "packed pairs chunks={} expr={}", chunks, src);
            prop_assert_eq!(
                &base_starts, &ev_raw.matching_starts(0..n, chunks),
                "raw starts chunks={} expr={}", chunks, src);
            prop_assert_eq!(
                &base_starts, &ev_pk.matching_starts(0..n, chunks),
                "packed starts chunks={} expr={}", chunks, src);
        }

        // Oracle: the product-automaton evaluator over the same graph.
        let view = LabeledView::new(&g);
        let mut oracle: Vec<(u32, u32)> = eval_pairs(&view, &expr)
            .into_iter()
            .map(|(s, t)| (s.0, t.0))
            .collect();
        oracle.sort_unstable();
        oracle.dedup();
        let mut got = base_pairs.clone();
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got, oracle, "oracle parity on {}", src);

        // matching_starts is the pair sources, deduped — and sorted,
        // because batches ascend and lanes ascend within a batch.
        let mut starts_from_pairs: Vec<u32> =
            base_pairs.iter().map(|&(s, _)| s).collect();
        starts_from_pairs.sort_unstable();
        starts_from_pairs.dedup();
        prop_assert_eq!(base_starts, starts_from_pairs, "starts vs pairs on {}", src);
    }

    /// A partial window of sources equals the matching slice of the
    /// full scan: sharding never changes per-source answers.
    #[test]
    fn source_windows_agree_with_full_scans(
        spec in spec_strategy(),
        expr_i in 0usize..EXPRS.len(),
        lo in 0u32..20,
        span in 1u32..20,
    ) {
        let mut g = build(&spec);
        let idx = LabelIndex::build(&g);
        let n = spec.n as u32;
        let expr = parse_expr(EXPRS[expr_i], g.consts_mut()).unwrap();
        let dfa = LabelDfa::compile(&expr, |s| idx.dense_id(s)).unwrap();
        let raw = RawAdjacency(&idx);
        let ev = ScaleEvaluator::new(&raw, dfa);
        let lo = lo.min(n);
        let hi = lo.saturating_add(span).min(n);
        let window = ev.pairs(lo..hi, 2);
        let full = ev.pairs(0..n, 1);
        let expect: Vec<(u32, u32)> = full
            .into_iter()
            .filter(|&(s, _)| s >= lo && s < hi)
            .collect();
        prop_assert_eq!(window, expect);
    }
}
