//! Property-based tests tying the whole §4.1 stack together on random
//! graphs and random expressions: exact counting, naive counting,
//! enumeration and uniform generation must all agree, and the
//! deterministic product must accept exactly what the NFA product does.

use kgq_core::automata::Nfa;
use kgq_core::count::{count_paths_naive, ExactCounter};
use kgq_core::enumerate::enumerate_paths;
use kgq_core::expr::{PathExpr, Test};
use kgq_core::gen::UniformSampler;
use kgq_core::model::{LabeledView, PathGraph};
use kgq_core::product::Product;
use kgq_graph::{LabeledGraph, NodeId};
use proptest::prelude::*;

const NODE_LABELS: [&str; 2] = ["a", "b"];
const EDGE_LABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct GraphSpec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..7).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..NODE_LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 1..12),
        )
            .prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build(spec: &GraphSpec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    // Intern every label up front so strategies can reference them even
    // when a random graph does not use one.
    for l in NODE_LABELS.iter().chain(EDGE_LABELS.iter()) {
        g.intern(l);
    }
    let nodes: Vec<NodeId> = spec
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), NODE_LABELS[l]).unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

/// Random star-free-or-starred expression of bounded depth.
fn expr_strategy(g: &LabeledGraph) -> impl Strategy<Value = PathExpr> {
    let nl: Vec<_> = NODE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let el: Vec<_> = EDGE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let leaf = prop_oneof![
        (0..nl.len()).prop_map({
            let nl = nl.clone();
            move |i| PathExpr::NodeTest(Test::Label(nl[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Forward(Test::Label(el[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Backward(Test::Label(el[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Forward(Test::Label(el[i]).not())
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.concat(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.alt(b)),
            inner.prop_map(|a| a.star()),
        ]
    })
}

fn graph_and_expr() -> impl Strategy<Value = (GraphSpec, PathExpr)> {
    graph_strategy().prop_flat_map(|spec| {
        let g = build(&spec);
        let e = expr_strategy(&g);
        (Just(spec), e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_enumeration_generation_agree((spec, expr) in graph_and_expr()) {
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let counter = ExactCounter::new(&view, &expr);
        for k in 0..=3usize {
            let exact = counter.count(k).unwrap();
            let naive = count_paths_naive(&view, &expr, k);
            prop_assert_eq!(exact, naive, "k={}", k);
            let enumerated = enumerate_paths(&view, &expr, k);
            prop_assert_eq!(enumerated.len() as u128, exact, "k={}", k);
            // Pairwise distinct and lexicographically ordered.
            for w in enumerated.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            let sampler = UniformSampler::new(&view, &expr, k).unwrap();
            prop_assert_eq!(sampler.total(), exact, "k={}", k);
        }
    }

    #[test]
    fn enumerated_paths_are_exactly_the_accepted_words((spec, expr) in graph_and_expr()) {
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let nfa = Nfa::compile(&expr);
        let prod = Product::build(&view, &nfa);
        let k = 2;
        let enumerated = enumerate_paths(&view, &expr, k);
        for p in &enumerated {
            prop_assert!(prod.accepts(p.start, &p.edges));
        }
        // Conversely: every accepted walk of length k is enumerated.
        for start in g.base().nodes() {
            let mut stack = vec![(start, Vec::<kgq_graph::EdgeId>::new())];
            while let Some((cur, word)) = stack.pop() {
                if word.len() == k {
                    if prod.accepts(start, &word) {
                        let path = kgq_core::Path { start, edges: word.clone() };
                        prop_assert!(enumerated.contains(&path), "missing {:?}", path);
                    }
                    continue;
                }
                let mut steps: Vec<(kgq_graph::EdgeId, NodeId)> = view
                    .out(cur)
                    .iter()
                    .chain(view.inc(cur).iter())
                    .copied()
                    .collect();
                steps.sort_unstable_by_key(|&(e, _)| e.0);
                steps.dedup_by_key(|&mut (e, _)| e.0);
                for (e, m) in steps {
                    let mut w = word.clone();
                    w.push(e);
                    stack.push((m, w));
                }
            }
        }
    }

    #[test]
    fn display_round_trips_semantics((spec, expr) in graph_and_expr()) {
        // Display produces parser syntax; the reparsed expression has the
        // same answers (trees may differ in associativity only).
        let mut g = build(&spec);
        let text = format!("{}", expr.display(g.consts()));
        let reparsed = kgq_core::parse_expr(&text, g.consts_mut())
            .unwrap_or_else(|e| panic!("`{text}` failed to reparse: {e}"));
        let view = LabeledView::new(&g);
        for k in 0..=2usize {
            let a = enumerate_paths(&view, &expr, k);
            let b = enumerate_paths(&view, &reparsed, k);
            prop_assert_eq!(a, b, "text = {}", text);
        }
    }

    #[test]
    fn simplify_preserves_semantics((spec, expr) in graph_and_expr()) {
        let g = build(&spec);
        let simplified = kgq_core::simplify(&expr);
        prop_assert!(simplified.atom_count() <= expr.atom_count());
        let view = LabeledView::new(&g);
        for k in 0..=3usize {
            let a = enumerate_paths(&view, &expr, k);
            let b = enumerate_paths(&view, &simplified, k);
            prop_assert_eq!(a, b, "k={}", k);
        }
    }

    #[test]
    fn samples_are_valid_and_of_right_length((spec, expr) in graph_and_expr()) {
        use rand::SeedableRng;
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let k = 2;
        let sampler = UniformSampler::new(&view, &expr, k).unwrap();
        let nfa = Nfa::compile(&expr);
        let prod = Product::build(&view, &nfa);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            match sampler.sample(&mut rng) {
                Some(p) => {
                    prop_assert_eq!(p.len(), k);
                    prop_assert!(prod.accepts(p.start, &p.edges));
                }
                None => prop_assert_eq!(sampler.total(), 0),
            }
        }
    }
}
