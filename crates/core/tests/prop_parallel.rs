//! Property-based determinism tests for the parallel evaluation paths:
//! on random ER and BA graphs, every parallel scan must return exactly
//! the result of its sequential reference implementation — byte for
//! byte, at every thread count — and a warm query-cache hit must be
//! indistinguishable from a cold evaluation.

use kgq_core::cache::QueryCache;
use kgq_core::count::{count_paths_naive, ExactCounter};
use kgq_core::eval::Evaluator;
use kgq_core::model::LabeledView;
use kgq_core::parallel::set_threads;
use kgq_core::parser::parse_expr;
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_graph::LabeledGraph;
use proptest::prelude::*;

const ER_EXPRS: [&str; 4] = ["(p+q)*", "p/q^-", "?a/(p)*", "(p/q)*+q^-"];
const BA_EXPRS: [&str; 3] = ["(link)*", "link/link^-", "?v/(link+link^-)*"];

#[derive(Clone, Debug)]
enum Spec {
    Er {
        n: usize,
        m: usize,
        seed: u64,
        expr: usize,
    },
    Ba {
        n: usize,
        seed: u64,
        expr: usize,
    },
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (3usize..14, 2usize..30, 0u64..1000, 0..ER_EXPRS.len())
            .prop_map(|(n, m, seed, expr)| Spec::Er { n, m, seed, expr }),
        (4usize..14, 0u64..1000, 0..BA_EXPRS.len()).prop_map(|(n, seed, expr)| Spec::Ba {
            n,
            seed,
            expr
        }),
    ]
}

fn build(spec: &Spec) -> (LabeledGraph, kgq_core::PathExpr) {
    match *spec {
        Spec::Er { n, m, seed, expr } => {
            let mut g = gnm_labeled(n, m, &["a", "b"], &["p", "q"], seed);
            let e = parse_expr(ER_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
        Spec::Ba { n, seed, expr } => {
            let mut g = barabasi_albert(n, 2, "v", "link", seed);
            let e = parse_expr(BA_EXPRS[expr], g.consts_mut()).unwrap();
            (g, e)
        }
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_pairs_equal_sequential_at_every_thread_count(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let reference = ev.pairs_sequential();
        for &t in &THREAD_COUNTS {
            set_threads(t);
            prop_assert_eq!(&ev.pairs(), &reference, "threads={}", t);
        }
    }

    #[test]
    fn parallel_matching_starts_equal_sequential(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let reference = ev.matching_starts_sequential();
        for &t in &THREAD_COUNTS {
            set_threads(t);
            prop_assert_eq!(&ev.matching_starts(), &reference, "threads={}", t);
        }
    }

    #[test]
    fn naive_count_is_thread_count_invariant(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let k = 3;
        let exact = ExactCounter::new(&view, &expr).count(k).unwrap();
        for &t in &THREAD_COUNTS {
            set_threads(t);
            prop_assert_eq!(count_paths_naive(&view, &expr, k), exact, "threads={}", t);
        }
    }

    #[test]
    fn bidirectional_check_equals_forward_reference_at_every_thread_count(
        spec in spec_strategy(),
    ) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        for &t in &THREAD_COUNTS {
            set_threads(t);
            for a in g.base().nodes() {
                let reachable = ev.ends_from(a);
                for b in g.base().nodes() {
                    prop_assert_eq!(
                        ev.check(a, b),
                        reachable.binary_search(&b).is_ok(),
                        "threads={} {:?}->{:?}", t, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn bidirectional_witness_length_matches_sequential(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        for &t in &THREAD_COUNTS {
            set_threads(t);
            for a in g.base().nodes() {
                for b in g.base().nodes() {
                    let bidi = ev.shortest_witness(a, b);
                    let seq = ev.shortest_witness_sequential(a, b);
                    // Several shortest paths may exist, so compare
                    // existence and minimal length, not the hops.
                    prop_assert_eq!(
                        bidi.as_ref().map(|p| p.edges.len()),
                        seq.as_ref().map(|p| p.edges.len()),
                        "threads={} {:?}->{:?}", t, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn cache_hit_is_byte_identical_to_cold_evaluation(spec in spec_strategy()) {
        let (g, expr) = build(&spec);
        let view = LabeledView::new(&g);
        let cold_pairs = Evaluator::new(&view, &expr).pairs();
        let cold_starts = Evaluator::new(&view, &expr).matching_starts();
        let cache = QueryCache::new();
        cache.get_or_compile(&view, 0, &expr);
        let warm = cache.get_or_compile(&view, 0, &expr);
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(warm.evaluator().pairs(), cold_pairs);
        prop_assert_eq!(warm.evaluator().matching_starts(), cold_starts);
    }
}
