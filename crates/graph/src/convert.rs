//! Conversions between the three graph data models.
//!
//! Section 3 of the paper presents labeled graphs, property graphs and
//! vector-labeled graphs as a hierarchy: property graphs extend labeled
//! graphs, and vector-labeled graphs "unify the use of labels and
//! properties". These functions realize that unification concretely:
//!
//! * [`labeled_to_property`] — embed (no properties),
//! * [`property_to_labeled`] — project (drop `σ`),
//! * [`property_to_vector`] — flatten label + properties into a feature
//!   vector whose first row is the label and remaining rows are the
//!   property columns in sorted name order, with `⊥` for absent values
//!   (exactly the construction of Figure 2(c)),
//! * [`labeled_to_vector`] — the 1-dimensional special case,
//! * [`vector_to_property`] — the inverse of [`property_to_vector`].
//!
//! `property_to_vector` followed by `vector_to_property` is the identity on
//! labels and properties (checked by tests and property tests).

use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::property::PropertyGraph;
use crate::sym::Sym;
use crate::vector::VectorGraph;

/// Embeds a labeled graph as a property graph with an empty `σ`.
pub fn labeled_to_property(g: LabeledGraph) -> PropertyGraph {
    PropertyGraph::from_labeled(g)
}

/// Projects a property graph to its underlying labeled graph (drops `σ`).
pub fn property_to_labeled(g: PropertyGraph) -> LabeledGraph {
    g.into_labeled()
}

/// Flattens a property graph into a vector-labeled graph.
///
/// The resulting dimension is `1 + p` where `p` is the number of distinct
/// property names in the graph. Row 0 holds the label; row `i > 0` holds
/// the value of the `i`-th property name (sorted by name string), or `⊥`.
pub fn property_to_vector(g: &PropertyGraph) -> Result<VectorGraph, GraphError> {
    let lg = g.labeled();
    // Deterministic column order: property names sorted as strings.
    let mut prop_names: Vec<(String, Sym)> = g
        .property_alphabet()
        .into_iter()
        .map(|p| (lg.label_name(p).to_owned(), p))
        .collect();
    prop_names.sort();
    let dim = 1 + prop_names.len();
    let mut vg = VectorGraph::new(dim);
    {
        let mut names: Vec<&str> = vec!["label"];
        names.extend(prop_names.iter().map(|(s, _)| s.as_str()));
        vg.set_feature_names(&names)?;
    }
    let mut feats: Vec<String> = Vec::with_capacity(dim);
    for n in lg.base().nodes() {
        feats.clear();
        feats.push(lg.label_name(lg.node_label(n)).to_owned());
        for (_, p) in &prop_names {
            match g.node_prop(n, *p) {
                Some(v) => feats.push(lg.label_name(v).to_owned()),
                None => feats.push("⊥".to_owned()),
            }
        }
        let refs: Vec<&str> = feats.iter().map(|s| s.as_str()).collect();
        vg.add_node(lg.node_name(n), &refs)?;
    }
    for e in lg.base().edges() {
        feats.clear();
        feats.push(lg.label_name(lg.edge_label(e)).to_owned());
        for (_, p) in &prop_names {
            match g.edge_prop(e, *p) {
                Some(v) => feats.push(lg.label_name(v).to_owned()),
                None => feats.push("⊥".to_owned()),
            }
        }
        let refs: Vec<&str> = feats.iter().map(|s| s.as_str()).collect();
        let (s, d) = lg.base().endpoints(e);
        // Node ids are preserved (insertion order matches).
        vg.add_edge(lg.edge_name(e), s, d, &refs)?;
    }
    Ok(vg)
}

/// Flattens a labeled graph into a 1-dimensional vector-labeled graph.
pub fn labeled_to_vector(g: &LabeledGraph) -> Result<VectorGraph, GraphError> {
    let pg = PropertyGraph::from_labeled(g.clone());
    property_to_vector(&pg)
}

/// Reconstructs a property graph from a vector-labeled graph produced by
/// [`property_to_vector`]: row 0 becomes the label, every other non-`⊥`
/// row becomes a property named after the feature row.
pub fn vector_to_property(g: &VectorGraph) -> Result<PropertyGraph, GraphError> {
    let mut pg = PropertyGraph::new();
    let names = g.feature_names().to_vec();
    for n in g.base().nodes() {
        let label = g.consts().resolve(g.node_feature(n, 0)).to_owned();
        let id = g.node_name(n).to_owned();
        let new = pg.add_node(&id, &label)?;
        for i in 1..g.dim() {
            let v = g.node_feature(n, i);
            if v != Sym::BOTTOM {
                let val = g.consts().resolve(v).to_owned();
                pg.set_node_prop(new, &names[i], &val);
            }
        }
    }
    for e in g.base().edges() {
        let label = g.consts().resolve(g.edge_feature(e, 0)).to_owned();
        let id = g.consts().resolve(g.base().edge_id_sym(e)).to_owned();
        let (s, d) = g.base().endpoints(e);
        let new = pg.add_edge(&id, s, d, &label)?;
        for i in 1..g.dim() {
            let v = g.edge_feature(e, i);
            if v != Sym::BOTTOM {
                let val = g.consts().resolve(v).to_owned();
                pg.set_edge_prop(new, &names[i], &val);
            }
        }
    }
    Ok(pg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_property() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node("n1", "person").unwrap();
        let n2 = g.add_node("n2", "infected").unwrap();
        let n3 = g.add_node("n3", "bus").unwrap();
        let e1 = g.add_edge("e1", n1, n3, "rides").unwrap();
        let e2 = g.add_edge("e2", n1, n2, "contact").unwrap();
        g.set_node_prop(n1, "name", "Julia");
        g.set_node_prop(n1, "age", "33");
        g.set_node_prop(n2, "name", "Pedro");
        g.set_edge_prop(e1, "date", "3/3/21");
        g.set_edge_prop(e2, "date", "3/4/21");
        g
    }

    #[test]
    fn vectorization_schema_is_label_plus_sorted_props() {
        let pg = sample_property();
        let vg = property_to_vector(&pg).unwrap();
        assert_eq!(vg.dim(), 4); // label + {age, date, name}
        assert_eq!(
            vg.feature_names(),
            &["label", "age", "date", "name"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn vectorization_preserves_values_and_uses_bottom() {
        let pg = sample_property();
        let vg = property_to_vector(&pg).unwrap();
        let n1 = vg.node_named("n1").unwrap();
        assert_eq!(vg.feature_str(n1, 0), "person");
        assert_eq!(vg.feature_str(n1, 1), "33"); // age
        assert_eq!(vg.node_feature(n1, 2), Sym::BOTTOM); // no date on a node
        assert_eq!(vg.feature_str(n1, 3), "Julia");
        let n3 = vg.node_named("n3").unwrap();
        assert_eq!(vg.feature_str(n3, 0), "bus");
        assert_eq!(vg.node_feature(n3, 3), Sym::BOTTOM);
    }

    #[test]
    fn round_trip_property_vector_property() {
        let pg = sample_property();
        let vg = property_to_vector(&pg).unwrap();
        let back = vector_to_property(&vg).unwrap();
        assert_eq!(back.node_count(), pg.node_count());
        assert_eq!(back.edge_count(), pg.edge_count());
        for n in pg.labeled().base().nodes() {
            assert_eq!(
                back.labeled().label_name(back.labeled().node_label(n)),
                pg.labeled().label_name(pg.labeled().node_label(n))
            );
            for prop in ["name", "age"] {
                assert_eq!(back.node_prop_str(n, prop), pg.node_prop_str(n, prop));
            }
        }
        for e in pg.labeled().base().edges() {
            assert_eq!(back.edge_prop_str(e, "date"), pg.edge_prop_str(e, "date"));
            assert_eq!(
                pg.labeled().base().endpoints(e),
                back.labeled().base().endpoints(e)
            );
        }
    }

    #[test]
    fn labeled_to_vector_is_one_dimensional() {
        let mut lg = LabeledGraph::new();
        let a = lg.add_node("a", "x").unwrap();
        let b = lg.add_node("b", "y").unwrap();
        lg.add_edge("e", a, b, "z").unwrap();
        let vg = labeled_to_vector(&lg).unwrap();
        assert_eq!(vg.dim(), 1);
        assert_eq!(vg.feature_str(a, 0), "x");
    }

    #[test]
    fn labeled_property_projection_round_trip() {
        let mut lg = LabeledGraph::new();
        let a = lg.add_node("a", "x").unwrap();
        let b = lg.add_node("b", "y").unwrap();
        lg.add_edge("e", a, b, "z").unwrap();
        let pg = labeled_to_property(lg.clone());
        let back = property_to_labeled(pg);
        assert_eq!(back.node_count(), lg.node_count());
        assert_eq!(back.edge_count(), lg.edge_count());
        assert_eq!(
            back.label_name(back.node_label(a)),
            lg.label_name(lg.node_label(a))
        );
    }
}
