//! A small plain-text exchange format for labeled and property graphs.
//!
//! Line-oriented, whitespace-separated, `#` comments:
//!
//! ```text
//! node <id> <label>
//! edge <id> <src-id> <dst-id> <label>
//! nprop <node-id> <key> <value>
//! eprop <edge-id> <key> <value>
//! ```
//!
//! Identifiers, labels, keys and values may not contain whitespace (the
//! format is for test fixtures and experiment inputs, not general data).

use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::property::PropertyGraph;

/// Serializes a labeled graph.
pub fn write_labeled(g: &LabeledGraph) -> String {
    let mut out = String::new();
    for n in g.base().nodes() {
        out.push_str(&format!(
            "node {} {}\n",
            g.node_name(n),
            g.label_name(g.node_label(n))
        ));
    }
    for e in g.base().edges() {
        let (s, d) = g.base().endpoints(e);
        out.push_str(&format!(
            "edge {} {} {} {}\n",
            g.edge_name(e),
            g.node_name(s),
            g.node_name(d),
            g.label_name(g.edge_label(e))
        ));
    }
    out
}

/// Serializes a property graph (labeled part + `nprop`/`eprop` lines).
pub fn write_property(g: &PropertyGraph) -> String {
    let lg = g.labeled();
    let mut out = write_labeled(lg);
    for n in lg.base().nodes() {
        for &(p, v) in g.node_props(n) {
            out.push_str(&format!(
                "nprop {} {} {}\n",
                lg.node_name(n),
                lg.label_name(p),
                lg.label_name(v)
            ));
        }
    }
    for e in lg.base().edges() {
        for &(p, v) in g.edge_props(e) {
            out.push_str(&format!(
                "eprop {} {} {}\n",
                lg.edge_name(e),
                lg.label_name(p),
                lg.label_name(v)
            ));
        }
    }
    out
}

/// Parses the output of [`write_property`] (also accepts pure labeled
/// graphs, which simply have no property lines).
pub fn read_property(input: &str) -> Result<PropertyGraph, GraphError> {
    let mut g = PropertyGraph::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let err = |message: &str| GraphError::Parse {
            line: lineno,
            message: message.to_owned(),
        };
        match kind {
            "node" => {
                let id = parts.next().ok_or_else(|| err("node needs <id>"))?;
                let label = parts.next().ok_or_else(|| err("node needs <label>"))?;
                g.add_node(id, label)?;
            }
            "edge" => {
                let id = parts.next().ok_or_else(|| err("edge needs <id>"))?;
                let src = parts.next().ok_or_else(|| err("edge needs <src>"))?;
                let dst = parts.next().ok_or_else(|| err("edge needs <dst>"))?;
                let label = parts.next().ok_or_else(|| err("edge needs <label>"))?;
                let s = g
                    .labeled()
                    .node_named(src)
                    .ok_or_else(|| GraphError::UnknownNode(src.to_owned()))?;
                let d = g
                    .labeled()
                    .node_named(dst)
                    .ok_or_else(|| GraphError::UnknownNode(dst.to_owned()))?;
                g.add_edge(id, s, d, label)?;
            }
            "nprop" => {
                let id = parts.next().ok_or_else(|| err("nprop needs <node>"))?;
                let key = parts.next().ok_or_else(|| err("nprop needs <key>"))?;
                let value = parts.next().ok_or_else(|| err("nprop needs <value>"))?;
                let n = g
                    .labeled()
                    .node_named(id)
                    .ok_or_else(|| GraphError::UnknownNode(id.to_owned()))?;
                g.set_node_prop(n, key, value);
            }
            "eprop" => {
                let id = parts.next().ok_or_else(|| err("eprop needs <edge>"))?;
                let key = parts.next().ok_or_else(|| err("eprop needs <key>"))?;
                let value = parts.next().ok_or_else(|| err("eprop needs <value>"))?;
                let e = g
                    .labeled()
                    .edge_named(id)
                    .ok_or_else(|| GraphError::UnknownEdge(id.to_owned()))?;
                g.set_edge_prop(e, key, value);
            }
            other => {
                return Err(err(&format!("unknown record kind `{other}`")));
            }
        }
        if parts.next().is_some() {
            return Err(err("trailing tokens"));
        }
    }
    Ok(g)
}

/// Parses a labeled graph (property lines are rejected).
pub fn read_labeled(input: &str) -> Result<LabeledGraph, GraphError> {
    for (lineno, raw) in input.lines().enumerate() {
        let t = raw.trim();
        if t.starts_with("nprop") || t.starts_with("eprop") {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "property lines not allowed in a labeled graph".to_owned(),
            });
        }
    }
    Ok(read_property(input)?.into_labeled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::figure2_property;

    #[test]
    fn round_trip_figure2() {
        let g = figure2_property();
        let text = write_property(&g);
        let back = read_property(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        let n1 = back.labeled().node_named("n1").unwrap();
        assert_eq!(back.node_prop_str(n1, "name"), Some("Julia"));
        let e2 = back.labeled().edge_named("e2").unwrap();
        assert_eq!(back.edge_prop_str(e2, "date"), Some("3/4/21"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let g = read_property("# hello\n\nnode a person\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = read_property("node a person\nedge e1 a\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = read_property("frob x y\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_property("node a person extra\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn unknown_endpoints_are_errors() {
        let err = read_property("edge e a b x\n").unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(_)));
        let err = read_property("node a p\nnprop b k v\n").unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode(_)));
    }

    #[test]
    fn labeled_reader_rejects_props() {
        assert!(read_labeled("node a p\nnprop a k v\n").is_err());
        let g = read_labeled("node a p\nnode b q\nedge e a b r\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
