//! Compressed sparse row (CSR) snapshots.
//!
//! Query evaluation repeatedly scans adjacency; the per-node `Vec<EdgeId>`
//! lists of [`Multigraph`] are convenient for construction but poor for
//! traversal locality. [`Csr`] freezes a multigraph into flat offset/list
//! arrays, and [`LabelIndex`] additionally sorts each node's adjacency by
//! edge label so that "follow an edge labeled ℓ" — the core step of regular
//! path query evaluation (paper, Section 4) — is a binary-search range scan.

use crate::labeled::LabeledGraph;
use crate::multigraph::{EdgeId, Multigraph, NodeId};
use crate::sym::Sym;

/// Flat forward/backward adjacency for a multigraph.
#[derive(Clone, Debug)]
pub struct Csr {
    out_off: Vec<u32>,
    out_list: Vec<(EdgeId, NodeId)>,
    in_off: Vec<u32>,
    in_list: Vec<(EdgeId, NodeId)>,
}

impl Csr {
    /// Builds a CSR snapshot of `g`.
    pub fn build(g: &Multigraph) -> Self {
        let n = g.node_count();
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out_list = Vec::with_capacity(g.edge_count());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_list = Vec::with_capacity(g.edge_count());
        out_off.push(0);
        in_off.push(0);
        for v in g.nodes() {
            for &e in g.out_edges(v) {
                out_list.push((e, g.target(e)));
            }
            out_off.push(out_list.len() as u32);
            for &e in g.in_edges(v) {
                in_list.push((e, g.source(e)));
            }
            in_off.push(in_list.len() as u32);
        }
        Csr {
            out_off,
            out_list,
            in_off,
            in_list,
        }
    }

    /// Outgoing `(edge, target)` pairs of `v`.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        let a = self.out_off[v.index()] as usize;
        let b = self.out_off[v.index() + 1] as usize;
        &self.out_list[a..b]
    }

    /// Incoming `(edge, source)` pairs of `v`.
    #[inline]
    pub fn inc(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        let a = self.in_off[v.index()] as usize;
        let b = self.in_off[v.index() + 1] as usize;
        &self.in_list[a..b]
    }

    /// Number of nodes covered by the snapshot.
    pub fn node_count(&self) -> usize {
        self.out_off.len() - 1
    }
}

/// Label-sorted adjacency over a [`LabeledGraph`].
///
/// For each node, outgoing and incoming `(label, edge, neighbor)` triples
/// are sorted by label; [`LabelIndex::out_with_label`] returns the matching
/// range. This is the structure regular path query evaluation steps on.
#[derive(Clone, Debug)]
pub struct LabelIndex {
    out_off: Vec<u32>,
    out_list: Vec<(Sym, EdgeId, NodeId)>,
    in_off: Vec<u32>,
    in_list: Vec<(Sym, EdgeId, NodeId)>,
}

fn label_range(list: &[(Sym, EdgeId, NodeId)], label: Sym) -> &[(Sym, EdgeId, NodeId)] {
    let lo = list.partition_point(|&(l, _, _)| l < label);
    let hi = list.partition_point(|&(l, _, _)| l <= label);
    &list[lo..hi]
}

impl LabelIndex {
    /// Builds a label-sorted adjacency index for `g`.
    pub fn build(g: &LabeledGraph) -> Self {
        let base = g.base();
        let n = base.node_count();
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out_list = Vec::with_capacity(base.edge_count());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_list = Vec::with_capacity(base.edge_count());
        out_off.push(0);
        in_off.push(0);
        let mut scratch: Vec<(Sym, EdgeId, NodeId)> = Vec::new();
        for v in base.nodes() {
            scratch.clear();
            scratch.extend(
                base.out_edges(v)
                    .iter()
                    .map(|&e| (g.edge_label(e), e, base.target(e))),
            );
            scratch.sort_unstable();
            out_list.extend_from_slice(&scratch);
            out_off.push(out_list.len() as u32);

            scratch.clear();
            scratch.extend(
                base.in_edges(v)
                    .iter()
                    .map(|&e| (g.edge_label(e), e, base.source(e))),
            );
            scratch.sort_unstable();
            in_list.extend_from_slice(&scratch);
            in_off.push(in_list.len() as u32);
        }
        LabelIndex {
            out_off,
            out_list,
            in_off,
            in_list,
        }
    }

    /// All outgoing `(label, edge, target)` triples of `v`, label-sorted.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[(Sym, EdgeId, NodeId)] {
        let a = self.out_off[v.index()] as usize;
        let b = self.out_off[v.index() + 1] as usize;
        &self.out_list[a..b]
    }

    /// All incoming `(label, edge, source)` triples of `v`, label-sorted.
    #[inline]
    pub fn inc(&self, v: NodeId) -> &[(Sym, EdgeId, NodeId)] {
        let a = self.in_off[v.index()] as usize;
        let b = self.in_off[v.index() + 1] as usize;
        &self.in_list[a..b]
    }

    /// Outgoing edges of `v` labeled exactly `label`.
    #[inline]
    pub fn out_with_label(&self, v: NodeId, label: Sym) -> &[(Sym, EdgeId, NodeId)] {
        label_range(self.out(v), label)
    }

    /// Incoming edges of `v` labeled exactly `label` (used for `ℓ⁻`).
    #[inline]
    pub fn in_with_label(&self, v: NodeId, label: Sym) -> &[(Sym, EdgeId, NodeId)] {
        label_range(self.inc(v), label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "person").unwrap();
        let b = g.add_node("b", "person").unwrap();
        let c = g.add_node("c", "bus").unwrap();
        g.add_edge("e1", a, c, "rides").unwrap();
        g.add_edge("e2", b, c, "rides").unwrap();
        g.add_edge("e3", a, b, "contact").unwrap();
        g.add_edge("e4", a, b, "contact").unwrap();
        g.add_edge("e5", a, c, "owns").unwrap();
        g
    }

    #[test]
    fn csr_matches_multigraph_adjacency() {
        let g = sample();
        let csr = Csr::build(g.base());
        assert_eq!(csr.node_count(), 3);
        let a = g.node_named("a").unwrap();
        assert_eq!(csr.out(a).len(), 4);
        let c = g.node_named("c").unwrap();
        assert_eq!(csr.inc(c).len(), 3);
        assert!(csr.out(c).is_empty());
        // Every out entry points at the true target.
        for &(e, t) in csr.out(a) {
            assert_eq!(g.base().target(e), t);
        }
    }

    #[test]
    fn label_index_groups_by_label() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        let contact = g.sym("contact").unwrap();
        let rides = g.sym("rides").unwrap();
        assert_eq!(idx.out_with_label(a, contact).len(), 2);
        assert_eq!(idx.out_with_label(a, rides).len(), 1);
        let owns = g.sym("owns").unwrap();
        assert_eq!(idx.out_with_label(a, owns).len(), 1);
    }

    #[test]
    fn label_index_inverse_edges() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let c = g.node_named("c").unwrap();
        let rides = g.sym("rides").unwrap();
        let back = idx.in_with_label(c, rides);
        assert_eq!(back.len(), 2);
        for &(l, e, src) in back {
            assert_eq!(l, rides);
            assert_eq!(g.base().target(e), c);
            assert_eq!(g.base().source(e), src);
        }
    }

    #[test]
    fn missing_label_yields_empty_range() {
        let mut g = sample();
        let ghost = g.intern("ghost");
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        assert!(idx.out_with_label(a, ghost).is_empty());
        assert!(idx.in_with_label(a, ghost).is_empty());
    }

    #[test]
    fn adjacency_is_label_sorted() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        let out = idx.out(a);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
