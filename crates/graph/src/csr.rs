//! Compressed sparse row (CSR) snapshots.
//!
//! Query evaluation repeatedly scans adjacency; the per-node `Vec<EdgeId>`
//! lists of [`Multigraph`] are convenient for construction but poor for
//! traversal locality. [`Csr`] freezes a multigraph into flat offset/list
//! arrays, and [`LabelIndex`] additionally sorts each node's adjacency by
//! edge label and precomputes a per-(node, label) offset table so that
//! "follow an edge labeled ℓ" — the core step of regular path query
//! evaluation (paper, Section 4) — is a single O(1) slot lookup plus a
//! slice, with no per-step binary search.

use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::multigraph::{EdgeId, Multigraph, NodeId};
use crate::sym::Sym;

/// Checked conversion of an adjacency-array length to a `u32` offset.
///
/// The CSR offset arrays store `u32`; past 2³² entries an `as u32` cast
/// would silently wrap and make every subsequent slice lookup read the
/// wrong run. This is the single choke point all CSR builders go
/// through, so overflow surfaces as a typed [`GraphError::TooLarge`]
/// instead.
#[inline]
pub(crate) fn offset32(len: usize, what: &'static str) -> Result<u32, GraphError> {
    u32::try_from(len).map_err(|_| GraphError::TooLarge {
        what,
        entries: len as u64,
    })
}

/// Flat forward/backward adjacency for a multigraph.
#[derive(Clone, Debug)]
pub struct Csr {
    out_off: Vec<u32>,
    out_list: Vec<(EdgeId, NodeId)>,
    in_off: Vec<u32>,
    in_list: Vec<(EdgeId, NodeId)>,
}

impl Csr {
    /// Builds a CSR snapshot of `g`.
    ///
    /// Convenience wrapper over [`Csr::try_build`] for the in-memory
    /// views, whose graphs are bounded far below the offset width by
    /// construction; an overflow here aborts with the typed error's
    /// message rather than wrapping silently.
    pub fn build(g: &Multigraph) -> Self {
        match Self::try_build(g) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a CSR snapshot of `g`, reporting offset overflow as a
    /// typed error instead of wrapping past 2³² adjacency entries.
    pub fn try_build(g: &Multigraph) -> Result<Self, GraphError> {
        let n = g.node_count();
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out_list = Vec::with_capacity(g.edge_count());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_list = Vec::with_capacity(g.edge_count());
        out_off.push(0);
        in_off.push(0);
        for v in g.nodes() {
            for &e in g.out_edges(v) {
                out_list.push((e, g.target(e)));
            }
            out_off.push(offset32(out_list.len(), "CSR out adjacency")?);
            for &e in g.in_edges(v) {
                in_list.push((e, g.source(e)));
            }
            in_off.push(offset32(in_list.len(), "CSR in adjacency")?);
        }
        Ok(Csr {
            out_off,
            out_list,
            in_off,
            in_list,
        })
    }

    /// Outgoing `(edge, target)` pairs of `v`.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        let a = self.out_off[v.index()] as usize;
        let b = self.out_off[v.index() + 1] as usize;
        &self.out_list[a..b]
    }

    /// Incoming `(edge, source)` pairs of `v`.
    #[inline]
    pub fn inc(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        let a = self.in_off[v.index()] as usize;
        let b = self.in_off[v.index() + 1] as usize;
        &self.in_list[a..b]
    }

    /// Number of nodes covered by the snapshot.
    pub fn node_count(&self) -> usize {
        self.out_off.len() - 1
    }

    /// Heap footprint of the snapshot in bytes (offset + list arrays) —
    /// the raw-CSR baseline the packed format is measured against.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.out_off.len() * size_of::<u32>()
            + self.in_off.len() * size_of::<u32>()
            + self.out_list.len() * size_of::<(EdgeId, NodeId)>()
            + self.in_list.len() * size_of::<(EdgeId, NodeId)>()) as u64
    }
}

/// Label-sorted adjacency over a [`LabeledGraph`] with a per-(node, label)
/// offset table.
///
/// For each node, outgoing and incoming `(label, edge, neighbor)` triples
/// are sorted by label. Distinct edge labels additionally get dense ids
/// `0..L`, and a slot table of `(L + 1) · n` offsets records where each
/// label's run starts inside each node's adjacency (group-by-label CSR).
/// [`LabelIndex::out_with_label`] is therefore one O(1) slot lookup plus a
/// slice — no binary search on the hot path. This is the structure regular
/// path query evaluation steps on.
#[derive(Clone, Debug)]
pub struct LabelIndex {
    out_off: Vec<u32>,
    out_list: Vec<(Sym, EdgeId, NodeId)>,
    in_off: Vec<u32>,
    in_list: Vec<(Sym, EdgeId, NodeId)>,
    /// Dense label id for each `Sym` index, or `u32::MAX` when the symbol
    /// never labels an edge. Indexed by `Sym::index()` (may be shorter
    /// than the interner — out-of-range means "not a label").
    label_id: Vec<u32>,
    /// Number of distinct edge labels `L`.
    nlabels: u32,
    /// `(L + 1)`-stride slot table: `out_slot[v·(L+1) + l]` is the offset
    /// into `out_list` where label `l`'s run for node `v` begins, and slot
    /// `L` holds the node's end offset, so a run is always
    /// `out_slot[base + l] .. out_slot[base + l + 1]`.
    out_slot: Vec<u32>,
    in_slot: Vec<u32>,
}

impl LabelIndex {
    /// Builds a label-sorted adjacency index for `g`.
    ///
    /// Convenience wrapper over [`LabelIndex::try_build`]; an offset
    /// overflow aborts with the typed error's message rather than
    /// wrapping silently.
    pub fn build(g: &LabeledGraph) -> Self {
        match Self::try_build(g) {
            Ok(idx) => idx,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a label-sorted adjacency index for `g`, reporting offset
    /// overflow as a typed error instead of wrapping past 2³²
    /// adjacency entries.
    pub fn try_build(g: &LabeledGraph) -> Result<Self, GraphError> {
        let base = g.base();
        let n = base.node_count();

        // Dense-number the distinct edge labels in Sym order so per-node
        // runs appear in dense-id order after the sort below.
        let mut max_sym = 0usize;
        for e in base.edges() {
            max_sym = max_sym.max(g.edge_label(e).index());
        }
        let mut label_id = vec![
            u32::MAX;
            if base.edge_count() == 0 {
                0
            } else {
                max_sym + 1
            }
        ];
        for e in base.edges() {
            label_id[g.edge_label(e).index()] = 0;
        }
        let mut nlabels = 0u32;
        for slot in label_id.iter_mut() {
            if *slot == 0 {
                *slot = nlabels;
                nlabels += 1;
            }
        }

        let stride = nlabels as usize + 1;
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out_list = Vec::with_capacity(base.edge_count());
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_list = Vec::with_capacity(base.edge_count());
        let mut out_slot = Vec::with_capacity(n * stride);
        let mut in_slot = Vec::with_capacity(n * stride);
        out_off.push(0);
        in_off.push(0);
        let mut scratch: Vec<(Sym, EdgeId, NodeId)> = Vec::new();
        let fill_slots =
            |slots: &mut Vec<u32>, list: &[(Sym, EdgeId, NodeId)], node_start: usize| {
                // One pass over the node's sorted run: for each dense label,
                // record where its block starts (empty blocks collapse to the
                // next block's start, so every run is a contiguous slice).
                let run = &list[node_start..];
                let mut i = 0usize;
                for l in 0..nlabels {
                    while i < run.len() && label_id[run[i].0.index()] < l {
                        i += 1;
                    }
                    slots.push((node_start + i) as u32);
                }
                slots.push(list.len() as u32);
            };
        for v in base.nodes() {
            scratch.clear();
            scratch.extend(
                base.out_edges(v)
                    .iter()
                    .map(|&e| (g.edge_label(e), e, base.target(e))),
            );
            scratch.sort_unstable();
            let start = out_list.len();
            out_list.extend_from_slice(&scratch);
            let end = offset32(out_list.len(), "label-index out adjacency")?;
            fill_slots(&mut out_slot, &out_list, start);
            out_off.push(end);

            scratch.clear();
            scratch.extend(
                base.in_edges(v)
                    .iter()
                    .map(|&e| (g.edge_label(e), e, base.source(e))),
            );
            scratch.sort_unstable();
            let start = in_list.len();
            in_list.extend_from_slice(&scratch);
            let end = offset32(in_list.len(), "label-index in adjacency")?;
            fill_slots(&mut in_slot, &in_list, start);
            in_off.push(end);
        }
        Ok(LabelIndex {
            out_off,
            out_list,
            in_off,
            in_list,
            label_id,
            nlabels,
            out_slot,
            in_slot,
        })
    }

    /// All outgoing `(label, edge, target)` triples of `v`, label-sorted.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[(Sym, EdgeId, NodeId)] {
        let a = self.out_off[v.index()] as usize;
        let b = self.out_off[v.index() + 1] as usize;
        &self.out_list[a..b]
    }

    /// All incoming `(label, edge, source)` triples of `v`, label-sorted.
    #[inline]
    pub fn inc(&self, v: NodeId) -> &[(Sym, EdgeId, NodeId)] {
        let a = self.in_off[v.index()] as usize;
        let b = self.in_off[v.index() + 1] as usize;
        &self.in_list[a..b]
    }

    /// Dense id of `label`, if it labels at least one edge.
    #[inline]
    fn dense(&self, label: Sym) -> Option<usize> {
        match self.label_id.get(label.index()) {
            Some(&id) if id != u32::MAX => Some(id as usize),
            _ => None,
        }
    }

    /// The run of `list` holding label `l` (dense) for node `v`.
    #[inline]
    fn run<'a>(
        &self,
        slots: &[u32],
        list: &'a [(Sym, EdgeId, NodeId)],
        v: NodeId,
        l: usize,
    ) -> &'a [(Sym, EdgeId, NodeId)] {
        let base = v.index() * (self.nlabels as usize + 1);
        &list[slots[base + l] as usize..slots[base + l + 1] as usize]
    }

    /// Outgoing edges of `v` labeled exactly `label`: one slot lookup, no
    /// binary search.
    #[inline]
    pub fn out_with_label(&self, v: NodeId, label: Sym) -> &[(Sym, EdgeId, NodeId)] {
        match self.dense(label) {
            Some(l) => self.run(&self.out_slot, &self.out_list, v, l),
            None => &[],
        }
    }

    /// Incoming edges of `v` labeled exactly `label` (used for `ℓ⁻`).
    #[inline]
    pub fn in_with_label(&self, v: NodeId, label: Sym) -> &[(Sym, EdgeId, NodeId)] {
        match self.dense(label) {
            Some(l) => self.run(&self.in_slot, &self.in_list, v, l),
            None => &[],
        }
    }

    /// Number of distinct edge labels in the index.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.nlabels as usize
    }

    /// Number of nodes covered by the index.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_off.len() - 1
    }

    /// Dense id of `label`, if it labels at least one edge. Matches the
    /// dense numbering of [`crate::packed::PackedLabelIndex`] built
    /// from the same graph (both number used labels in `Sym` order).
    #[inline]
    pub fn dense_id(&self, label: Sym) -> Option<u32> {
        self.dense(label).map(|l| l as u32)
    }

    /// Outgoing run of `v` for the **dense** label id `l`.
    #[inline]
    pub fn out_with_dense(&self, v: NodeId, l: u32) -> &[(Sym, EdgeId, NodeId)] {
        self.run(&self.out_slot, &self.out_list, v, l as usize)
    }

    /// Incoming run of `v` for the **dense** label id `l`.
    #[inline]
    pub fn in_with_dense(&self, v: NodeId, l: u32) -> &[(Sym, EdgeId, NodeId)] {
        self.run(&self.in_slot, &self.in_list, v, l as usize)
    }

    /// Heap footprint in bytes (lists, offsets, slot tables) — the raw
    /// baseline the packed format is measured against.
    pub fn heap_bytes(&self) -> u64 {
        use std::mem::size_of;
        ((self.out_off.len() + self.in_off.len()) * size_of::<u32>()
            + (self.out_list.len() + self.in_list.len()) * size_of::<(Sym, EdgeId, NodeId)>()
            + (self.label_id.len() + self.out_slot.len() + self.in_slot.len()) * size_of::<u32>())
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "person").unwrap();
        let b = g.add_node("b", "person").unwrap();
        let c = g.add_node("c", "bus").unwrap();
        g.add_edge("e1", a, c, "rides").unwrap();
        g.add_edge("e2", b, c, "rides").unwrap();
        g.add_edge("e3", a, b, "contact").unwrap();
        g.add_edge("e4", a, b, "contact").unwrap();
        g.add_edge("e5", a, c, "owns").unwrap();
        g
    }

    #[test]
    fn csr_matches_multigraph_adjacency() {
        let g = sample();
        let csr = Csr::build(g.base());
        assert_eq!(csr.node_count(), 3);
        let a = g.node_named("a").unwrap();
        assert_eq!(csr.out(a).len(), 4);
        let c = g.node_named("c").unwrap();
        assert_eq!(csr.inc(c).len(), 3);
        assert!(csr.out(c).is_empty());
        // Every out entry points at the true target.
        for &(e, t) in csr.out(a) {
            assert_eq!(g.base().target(e), t);
        }
    }

    #[test]
    fn label_index_groups_by_label() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        let contact = g.sym("contact").unwrap();
        let rides = g.sym("rides").unwrap();
        assert_eq!(idx.out_with_label(a, contact).len(), 2);
        assert_eq!(idx.out_with_label(a, rides).len(), 1);
        let owns = g.sym("owns").unwrap();
        assert_eq!(idx.out_with_label(a, owns).len(), 1);
    }

    #[test]
    fn label_index_inverse_edges() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let c = g.node_named("c").unwrap();
        let rides = g.sym("rides").unwrap();
        let back = idx.in_with_label(c, rides);
        assert_eq!(back.len(), 2);
        for &(l, e, src) in back {
            assert_eq!(l, rides);
            assert_eq!(g.base().target(e), c);
            assert_eq!(g.base().source(e), src);
        }
    }

    #[test]
    fn missing_label_yields_empty_range() {
        let mut g = sample();
        let ghost = g.intern("ghost");
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        assert!(idx.out_with_label(a, ghost).is_empty());
        assert!(idx.in_with_label(a, ghost).is_empty());
    }

    #[test]
    fn adjacency_is_label_sorted() {
        let g = sample();
        let idx = LabelIndex::build(&g);
        let a = g.node_named("a").unwrap();
        let out = idx.out(a);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// The slot table must return exactly the range a binary search over
    /// the sorted triples would.
    fn bsearch_range(list: &[(Sym, EdgeId, NodeId)], label: Sym) -> &[(Sym, EdgeId, NodeId)] {
        let lo = list.partition_point(|&(l, _, _)| l < label);
        let hi = list.partition_point(|&(l, _, _)| l <= label);
        &list[lo..hi]
    }

    #[test]
    fn slot_table_matches_binary_search_on_a_generated_graph() {
        let g = crate::generate::gnm_labeled(40, 200, &["t"], &["p", "q", "r", "s"], 7);
        let idx = LabelIndex::build(&g);
        let mut labels: Vec<Sym> = ["p", "q", "r", "s", "t"]
            .iter()
            .filter_map(|s| g.sym(s))
            .collect();
        labels.push(Sym(u32::MAX - 1)); // never interned
        for v in g.base().nodes() {
            for &l in &labels {
                assert_eq!(idx.out_with_label(v, l), bsearch_range(idx.out(v), l));
                assert_eq!(idx.in_with_label(v, l), bsearch_range(idx.inc(v), l));
            }
        }
        assert!(idx.label_count() >= 2);
    }

    #[test]
    fn offset_overflow_is_a_typed_error_not_a_wrap() {
        // 2³² entries cannot be materialized in a test, so the checked
        // conversion itself is the unit under test: it is the single
        // choke point every CSR builder routes its offsets through.
        assert_eq!(offset32(u32::MAX as usize, "x"), Ok(u32::MAX));
        let too_big = u32::MAX as usize + 1;
        let err = offset32(too_big, "CSR out adjacency").unwrap_err();
        assert_eq!(
            err,
            GraphError::TooLarge {
                what: "CSR out adjacency",
                entries: too_big as u64,
            }
        );
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn try_build_round_trips_on_small_graphs() {
        let g = sample();
        let csr = Csr::try_build(g.base()).unwrap();
        assert_eq!(csr.node_count(), 3);
        let idx = LabelIndex::try_build(&g).unwrap();
        assert_eq!(idx.label_count(), 3);
    }

    #[test]
    fn empty_graph_and_label_free_lookups_are_safe() {
        let g = LabeledGraph::new();
        let idx = LabelIndex::build(&g);
        assert_eq!(idx.label_count(), 0);
        let mut g2 = sample();
        let ghost = g2.intern("zzz-unused");
        let idx2 = LabelIndex::build(&g2);
        let a = g2.node_named("a").unwrap();
        assert!(idx2.out_with_label(a, ghost).is_empty());
    }
}
