//! Induced subgraph extraction.

use crate::labeled::LabeledGraph;
use crate::multigraph::NodeId;
use crate::property::PropertyGraph;
use std::collections::HashSet;

/// The subgraph of `g` induced by `nodes`: those nodes (original
/// identifiers and labels preserved) plus every edge whose endpoints both
/// survive. Node/edge ids keep their **Const** names, so lookups by name
/// still work; dense indices are renumbered.
pub fn induced_subgraph(g: &LabeledGraph, nodes: &[NodeId]) -> LabeledGraph {
    let keep: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut out = LabeledGraph::new();
    for &n in nodes {
        out.add_node(g.node_name(n), g.label_name(g.node_label(n)))
            .expect("distinct node ids");
    }
    for e in g.base().edges() {
        let (s, d) = g.base().endpoints(e);
        if keep.contains(&s) && keep.contains(&d) {
            let sn = out.node_named(g.node_name(s)).expect("kept");
            let dn = out.node_named(g.node_name(d)).expect("kept");
            out.add_edge(g.edge_name(e), sn, dn, g.label_name(g.edge_label(e)))
                .expect("distinct edge ids");
        }
    }
    out
}

/// Induced subgraph of a property graph, carrying `σ` along.
pub fn induced_subgraph_property(g: &PropertyGraph, nodes: &[NodeId]) -> PropertyGraph {
    let lg = g.labeled();
    let keep: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut out = PropertyGraph::new();
    for &n in nodes {
        let new = out
            .add_node(lg.node_name(n), lg.label_name(lg.node_label(n)))
            .expect("distinct node ids");
        for &(p, v) in g.node_props(n) {
            let (p, v) = (lg.label_name(p).to_owned(), lg.label_name(v).to_owned());
            out.set_node_prop(new, &p, &v);
        }
    }
    for e in lg.base().edges() {
        let (s, d) = lg.base().endpoints(e);
        if keep.contains(&s) && keep.contains(&d) {
            let sn = out.labeled().node_named(lg.node_name(s)).expect("kept");
            let dn = out.labeled().node_named(lg.node_name(d)).expect("kept");
            let new = out
                .add_edge(lg.edge_name(e), sn, dn, lg.label_name(lg.edge_label(e)))
                .expect("distinct edge ids");
            for &(p, v) in g.edge_props(e) {
                let (p, v) = (lg.label_name(p).to_owned(), lg.label_name(v).to_owned());
                out.set_edge_prop(new, &p, &v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{figure2_labeled, figure2_property};

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = figure2_labeled();
        let riders = ["n1", "n2", "n3", "n4"];
        let nodes: Vec<NodeId> = riders.iter().map(|n| g.node_named(n).unwrap()).collect();
        let sub = induced_subgraph(&g, &nodes);
        assert_eq!(sub.node_count(), 4);
        // e1, e2, e3 (rides) and e4 (contact n1->n4) survive; lives/owns
        // edges lose an endpoint.
        assert_eq!(sub.edge_count(), 4);
        let n3 = sub.node_named("n3").unwrap();
        assert_eq!(sub.label_name(sub.node_label(n3)), "bus");
        assert!(sub.edge_named("e8").is_none());
    }

    #[test]
    fn empty_selection_gives_empty_graph() {
        let g = figure2_labeled();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.node_count(), 0);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn property_version_carries_sigma() {
        let g = figure2_property();
        let keep: Vec<NodeId> = ["n1", "n4"]
            .iter()
            .map(|n| g.labeled().node_named(n).unwrap())
            .collect();
        let sub = induced_subgraph_property(&g, &keep);
        let n1 = sub.labeled().node_named("n1").unwrap();
        assert_eq!(sub.node_prop_str(n1, "name"), Some("Julia"));
        let e4 = sub.labeled().edge_named("e4").unwrap();
        assert_eq!(sub.edge_prop_str(e4, "date"), Some("3/4/21"));
        assert_eq!(sub.edge_count(), 1);
    }
}
