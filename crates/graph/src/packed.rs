//! Delta-encoded, bit-packed adjacency for out-of-core graph scale.
//!
//! The flat [`crate::csr::LabelIndex`] stores 12 bytes per directed
//! adjacency entry per direction, plus a dense `(L+1)·n` slot table —
//! memory is the scale ceiling long before CPU is. This module trades a
//! little decode work for a ~4–7× smaller footprint:
//!
//! * per `(node, label)` the neighbor run is **sorted** and
//!   **delta-encoded**, then packed in blocks of up to 64 deltas with a
//!   per-block fixed bit width (a one-byte header per block);
//! * runs longer than one block carry a **skip table** of raw
//!   `(base value, byte offset)` entries, so point probes (`contains`)
//!   and galloping intersections decode one 64-entry block instead of
//!   the whole run;
//! * edge ids, when kept, ride in a parallel zigzag-delta stream —
//!   scale workloads that never consult edge identity can drop them at
//!   build time ([`PackOptions::edge_ids`]);
//! * everything — header, label names, offset arrays, run bytes — lives
//!   in **one contiguous little-endian byte blob** accessed through
//!   [`PackedView`], so an in-memory `Vec<u8>` and an mmap'd segment
//!   section decode through identical code, and a file image needs no
//!   deserialization step at all.
//!
//! Offsets into each data section are `u32` and every length that must
//! fit one goes through a checked conversion: overflow is a typed
//! [`GraphError::TooLarge`], never a silent wrap.
//!
//! ## Blob layout
//!
//! ```text
//! blob      := magic "KGQPIDX1" flags:u32 n_nodes:u32 n_labels:u32 n_edges:u64
//!              label_tab_off:u64 out_index_off:u64 out_data_off:u64
//!              in_index_off:u64 in_data_off:u64 total_len:u64
//!              label_tab out_index out_data [in_index in_data]
//! label_tab := (len:u32 utf8){n_labels}
//! *_index   := (n_nodes + 1) u32 byte offsets into *_data
//! *_data    := per node, ascending label: sub_run*
//! sub_run   := varint(label) varint(rest_len) rest
//! rest      := varint(count) [varint(neigh_len)] neigh [eids]
//! neigh     := varint(first) [varint(nblocks) (base:u32 off:u32){nblocks}] block*
//! block     := width:u8 ceil(len·width/8) bytes of LE bit-packed deltas
//! eids      := varint(first_eid) block*          (zigzag deltas, no skip)
//! ```
//!
//! `flags` bit 0 = edge-id streams present, bit 1 = inverse (incoming)
//! direction present. `neigh_len` frames the neighbor stream only when
//! an edge-id stream follows it; without edge ids the neighbor stream
//! runs to the end of `rest`, saving a varint on every run — at scale
//! the per-run framing, not the deltas, is where the bytes go.

use crate::csr::offset32;
use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::multigraph::Multigraph;

/// Leading magic of a packed adjacency blob.
pub const PACKED_MAGIC: &[u8; 8] = b"KGQPIDX1";

/// Deltas per bit-packed block; also the skip-table granularity.
pub const BLOCK: usize = 64;

const FLAG_EDGE_IDS: u32 = 1;
const FLAG_INVERSE: u32 = 2;
const HEADER_LEN: usize = 8 + 4 + 4 + 4 + 8 + 6 * 8;

/// Build-time choices for a packed index.
#[derive(Clone, Copy, Debug)]
pub struct PackOptions {
    /// Keep the per-run edge-id streams. RPQ label steps and BGP
    /// intersections never consult edge identity, so scale builds drop
    /// them; [`PackedLabelIndex::from_labeled`] keeps them for parity
    /// with the raw [`crate::csr::LabelIndex`].
    pub edge_ids: bool,
    /// Keep the incoming direction (needed for `ℓ⁻` steps).
    pub inverse: bool,
}

impl Default for PackOptions {
    fn default() -> Self {
        PackOptions {
            edge_ids: true,
            inverse: true,
        }
    }
}

// ---------------------------------------------------------------------
// varint + bit-packing primitives
// ---------------------------------------------------------------------

#[inline]
fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Appends `vals` at `width` bits each, little-endian bit order.
fn pack_bits(vals: &[u64], width: u8, buf: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut nbits = 0u32;
    for &v in vals {
        acc |= (v as u128) << nbits;
        nbits += width as u32;
        while nbits >= 8 {
            buf.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        buf.push(acc as u8);
    }
}

/// Decodes `count` values of `width` bits each, calling `f` on each.
#[inline]
fn unpack_bits(bytes: &[u8], width: u8, count: usize, mut f: impl FnMut(u64)) {
    if width == 0 {
        for _ in 0..count {
            f(0);
        }
        return;
    }
    debug_assert!(width <= 56, "block width {width} exceeds the decoder");
    let w = width as u32;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let mut acc = 0u64;
    let mut nbits = 0u32;
    let mut i = 0usize;
    for _ in 0..count {
        while nbits < w {
            acc |= (bytes[i] as u64) << nbits;
            i += 1;
            nbits += 8;
        }
        f(acc & mask);
        acc >>= w;
        nbits -= w;
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encodes `deltas` as width-prefixed blocks of up to [`BLOCK`] values.
fn encode_blocks(deltas: &[u64], buf: &mut Vec<u8>) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(deltas.len().div_ceil(BLOCK));
    let start = buf.len();
    for chunk in deltas.chunks(BLOCK) {
        offsets.push((buf.len() - start) as u32);
        let width = chunk.iter().map(|&d| bits_for(d)).max().unwrap_or(0);
        buf.push(width);
        pack_bits(chunk, width, buf);
    }
    offsets
}

/// Encodes one sorted neighbor run (`count ≥ 1`): first value, optional
/// skip table, delta blocks.
fn encode_neighbors(values: &[u32], buf: &mut Vec<u8>) {
    write_varint(buf, values[0] as u64);
    if values.len() == 1 {
        return;
    }
    let deltas: Vec<u64> = values.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
    let mut blocks = Vec::new();
    let offsets = encode_blocks(&deltas, &mut blocks);
    if offsets.len() > 1 {
        write_varint(buf, offsets.len() as u64);
        for (k, &off) in offsets.iter().enumerate() {
            // Base of block k = the absolute value preceding its first
            // delta, i.e. values[k·BLOCK].
            buf.extend_from_slice(&values[k * BLOCK].to_le_bytes());
            buf.extend_from_slice(&off.to_le_bytes());
        }
    }
    buf.extend_from_slice(&blocks);
}

/// Encodes the edge-id stream aligned with a neighbor run.
fn encode_eids(eids: &[u32], buf: &mut Vec<u8>) {
    write_varint(buf, eids[0] as u64);
    if eids.len() == 1 {
        return;
    }
    let deltas: Vec<u64> = eids
        .windows(2)
        .map(|w| zigzag(w[1] as i64 - w[0] as i64))
        .collect();
    let mut blocks = Vec::new();
    encode_blocks(&deltas, &mut blocks);
    buf.extend_from_slice(&blocks);
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// One direction's data section + index, built node-major.
struct DirBuilder {
    index: Vec<u32>,
    data: Vec<u8>,
}

impl DirBuilder {
    fn new(n_nodes: usize) -> Self {
        let mut index = Vec::with_capacity(n_nodes + 1);
        index.push(0);
        DirBuilder {
            index,
            data: Vec::new(),
        }
    }

    /// Appends one `(label, neighbors, eids)` sub-run for the current node.
    fn push_run(&mut self, label: u32, neighbors: &[u32], eids: Option<&[u32]>) {
        debug_assert!(!neighbors.is_empty());
        let mut rest = Vec::new();
        write_varint(&mut rest, neighbors.len() as u64);
        let mut neigh = Vec::new();
        encode_neighbors(neighbors, &mut neigh);
        if let Some(eids) = eids {
            write_varint(&mut rest, neigh.len() as u64);
            rest.extend_from_slice(&neigh);
            encode_eids(eids, &mut rest);
        } else {
            rest.extend_from_slice(&neigh);
        }
        write_varint(&mut self.data, label as u64);
        write_varint(&mut self.data, rest.len() as u64);
        self.data.extend_from_slice(&rest);
    }

    fn end_node(&mut self, what: &'static str) -> Result<(), GraphError> {
        self.index.push(offset32(self.data.len(), what)?);
        Ok(())
    }
}

/// A directed, labeled edge `(src, label, dst, edge id)` fed to the
/// packed builder. Label ids must be dense (`0..n_labels`).
pub type Quad = (u32, u32, u32, u32);

/// An owned packed label index: one contiguous blob (see the module
/// docs for the layout), plus the [`PackedView`] accessor over it.
#[derive(Clone, Debug)]
pub struct PackedLabelIndex {
    bytes: Vec<u8>,
}

impl PackedLabelIndex {
    /// Packs a [`LabeledGraph`] with edge ids and both directions —
    /// the drop-in, parity-checkable replacement for
    /// [`crate::csr::LabelIndex`]. Within each `(node, label)` run,
    /// entries are re-sorted by `(neighbor, edge)` (the raw index sorts
    /// by `(label, edge)`), so adjacency equality is per-run multiset
    /// equality.
    pub fn from_labeled(g: &LabeledGraph) -> Result<Self, GraphError> {
        let base = g.base();
        // Dense-number the edge labels in Sym order, exactly like
        // LabelIndex::build, so dense ids agree between the two.
        let mut used: Vec<u32> = base.edges().map(|e| g.edge_label(e).0).collect();
        used.sort_unstable();
        used.dedup();
        let labels: Vec<String> = used
            .iter()
            .map(|&s| g.consts().resolve(crate::sym::Sym(s)).to_owned())
            .collect();
        let dense = |s: u32| used.binary_search(&s).unwrap_or(0) as u32;
        let quads: Vec<Quad> = base
            .edges()
            .map(|e| {
                let (s, d) = base.endpoints(e);
                (s.0, dense(g.edge_label(e).0), d.0, e.0)
            })
            .collect();
        Self::from_quads(
            base.node_count() as u32,
            &labels,
            quads,
            PackOptions::default(),
        )
    }

    /// Packs a raw edge stream. `labels` names the dense label ids;
    /// every quad's label must be `< labels.len()` and every endpoint
    /// `< n_nodes`, otherwise a typed error is returned.
    pub fn from_quads(
        n_nodes: u32,
        labels: &[String],
        mut quads: Vec<Quad>,
        opts: PackOptions,
    ) -> Result<Self, GraphError> {
        let n_labels = offset32(labels.len(), "packed label table")?;
        offset32(quads.len(), "packed edge list")?;
        for &(s, l, d, _) in &quads {
            if s >= n_nodes || d >= n_nodes {
                return Err(GraphError::UnknownNode(format!(
                    "packed edge endpoint {} out of range (n = {n_nodes})",
                    if s >= n_nodes { s } else { d }
                )));
            }
            if l >= n_labels {
                return Err(GraphError::UnknownEdge(format!(
                    "packed edge label {l} out of range (L = {n_labels})"
                )));
            }
        }
        let n_edges = quads.len() as u64;

        let mut flags = 0u32;
        if opts.edge_ids {
            flags |= FLAG_EDGE_IDS;
        }
        if opts.inverse {
            flags |= FLAG_INVERSE;
        }

        // Out direction: sort by (src, label, dst, eid), emit per node.
        quads.sort_unstable();
        let out = build_direction(
            n_nodes,
            &quads,
            opts.edge_ids,
            |&(s, l, d, e)| (s, l, d, e),
            "packed out data",
        )?;
        // In direction: re-sort the same buffer by (dst, label, src, eid).
        let inv = if opts.inverse {
            quads.sort_unstable_by_key(|&(s, l, d, e)| (d, l, s, e));
            Some(build_direction(
                n_nodes,
                &quads,
                opts.edge_ids,
                |&(s, l, d, e)| (d, l, s, e),
                "packed in data",
            )?)
        } else {
            None
        };
        drop(quads);

        let mut label_tab = Vec::new();
        for name in labels {
            label_tab.extend_from_slice(&(name.len() as u32).to_le_bytes());
            label_tab.extend_from_slice(name.as_bytes());
        }

        let label_tab_off = HEADER_LEN as u64;
        let out_index_off = label_tab_off + label_tab.len() as u64;
        let out_data_off = out_index_off + 4 * (n_nodes as u64 + 1);
        let in_index_off = out_data_off + out.data.len() as u64;
        let (in_index_off, in_data_off, in_len) = match &inv {
            Some(inv) => (
                in_index_off,
                in_index_off + 4 * (n_nodes as u64 + 1),
                4 * (n_nodes as u64 + 1) + inv.data.len() as u64,
            ),
            None => (0, 0, 0),
        };
        let total_len = out_data_off + out.data.len() as u64 + in_len;

        let mut bytes = Vec::with_capacity(total_len as usize);
        bytes.extend_from_slice(PACKED_MAGIC);
        bytes.extend_from_slice(&flags.to_le_bytes());
        bytes.extend_from_slice(&n_nodes.to_le_bytes());
        bytes.extend_from_slice(&n_labels.to_le_bytes());
        bytes.extend_from_slice(&n_edges.to_le_bytes());
        bytes.extend_from_slice(&label_tab_off.to_le_bytes());
        bytes.extend_from_slice(&out_index_off.to_le_bytes());
        bytes.extend_from_slice(&out_data_off.to_le_bytes());
        bytes.extend_from_slice(&in_index_off.to_le_bytes());
        bytes.extend_from_slice(&in_data_off.to_le_bytes());
        bytes.extend_from_slice(&total_len.to_le_bytes());
        bytes.extend_from_slice(&label_tab);
        for &off in &out.index {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        bytes.extend_from_slice(&out.data);
        if let Some(inv) = inv {
            for &off in &inv.index {
                bytes.extend_from_slice(&off.to_le_bytes());
            }
            bytes.extend_from_slice(&inv.data);
        }
        debug_assert_eq!(bytes.len() as u64, total_len);
        Ok(PackedLabelIndex { bytes })
    }

    /// Wraps an existing blob after validating its structure.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, GraphError> {
        PackedView::parse(&bytes)?;
        Ok(PackedLabelIndex { bytes })
    }

    /// The accessor view.
    pub fn view(&self) -> PackedView<'_> {
        // The blob was validated (or built) by construction.
        match PackedView::parse(&self.bytes) {
            Ok(v) => v,
            Err(e) => panic!("owned packed blob failed to re-parse: {e}"),
        }
    }

    /// The raw blob (e.g. for embedding into a segment file).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the index, yielding the blob without a copy.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

fn build_direction(
    n_nodes: u32,
    quads: &[Quad],
    edge_ids: bool,
    key: impl Fn(&Quad) -> (u32, u32, u32, u32),
    what: &'static str,
) -> Result<DirBuilder, GraphError> {
    let mut dir = DirBuilder::new(n_nodes as usize);
    let mut neighbors = Vec::new();
    let mut eids = Vec::new();
    let mut i = 0usize;
    for v in 0..n_nodes {
        while i < quads.len() && key(&quads[i]).0 == v {
            let label = key(&quads[i]).1;
            neighbors.clear();
            eids.clear();
            while i < quads.len() {
                let (s, l, d, e) = key(&quads[i]);
                if s != v || l != label {
                    break;
                }
                neighbors.push(d);
                eids.push(e);
                i += 1;
            }
            dir.push_run(label, &neighbors, if edge_ids { Some(&eids) } else { None });
        }
        dir.end_node(what)?;
    }
    Ok(dir)
}

// ---------------------------------------------------------------------
// View + runs
// ---------------------------------------------------------------------

/// Borrowed accessor over a packed blob — works identically whether the
/// bytes live in an owned `Vec<u8>` or an mmap'd segment section.
#[derive(Clone, Copy, Debug)]
pub struct PackedView<'a> {
    flags: u32,
    n_nodes: u32,
    n_labels: u32,
    n_edges: u64,
    label_tab: &'a [u8],
    out_index: &'a [u8],
    out_data: &'a [u8],
    in_index: &'a [u8],
    in_data: &'a [u8],
    total_len: u64,
}

impl<'a> PackedView<'a> {
    /// Parses and structurally validates a blob header.
    pub fn parse(b: &'a [u8]) -> Result<Self, GraphError> {
        let bad = |m: &str| GraphError::BadImage(m.to_owned());
        if b.len() < HEADER_LEN || &b[..8] != PACKED_MAGIC {
            return Err(bad("missing KGQPIDX1 magic"));
        }
        let u32_at = |o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
        let u64_at = |o: usize| {
            let mut w = [0u8; 8];
            w.copy_from_slice(&b[o..o + 8]);
            u64::from_le_bytes(w)
        };
        let flags = u32_at(8);
        let n_nodes = u32_at(12);
        let n_labels = u32_at(16);
        let n_edges = u64_at(20);
        let label_tab_off = u64_at(28);
        let out_index_off = u64_at(36);
        let out_data_off = u64_at(44);
        let in_index_off = u64_at(52);
        let in_data_off = u64_at(60);
        let total_len = u64_at(68);
        if total_len as usize > b.len() {
            return Err(bad("blob shorter than its declared length"));
        }
        let b = &b[..total_len as usize];
        let section = |from: u64, to: u64, name: &str| -> Result<&'a [u8], GraphError> {
            if from > to || to > total_len {
                return Err(GraphError::BadImage(format!(
                    "{name} section out of bounds"
                )));
            }
            Ok(&b[from as usize..to as usize])
        };
        let index_len = 4 * (n_nodes as u64 + 1);
        let has_in = flags & FLAG_INVERSE != 0;
        let label_tab = section(label_tab_off, out_index_off, "label table")?;
        let out_index = section(out_index_off, out_index_off + index_len, "out index")?;
        let out_data_end = if has_in { in_index_off } else { total_len };
        let out_data = section(out_data_off, out_data_end, "out data")?;
        let (in_index, in_data) = if has_in {
            (
                section(in_index_off, in_index_off + index_len, "in index")?,
                section(in_data_off, total_len, "in data")?,
            )
        } else {
            (&b[0..0], &b[0..0])
        };
        let view = PackedView {
            flags,
            n_nodes,
            n_labels,
            n_edges,
            label_tab,
            out_index,
            out_data,
            in_index,
            in_data,
            total_len,
        };
        // Index offsets must be monotone and in-bounds; checking here
        // keeps the run accessors panic-free on any validated blob.
        for (index, data) in [(out_index, out_data), (in_index, in_data)] {
            let mut prev = 0u32;
            for k in 0..index.len() / 4 {
                let off = u32::from_le_bytes([
                    index[4 * k],
                    index[4 * k + 1],
                    index[4 * k + 2],
                    index[4 * k + 3],
                ]);
                if off < prev || off as usize > data.len() {
                    return Err(bad("non-monotone or out-of-bounds node offset"));
                }
                prev = off;
            }
        }
        Ok(view)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes as usize
    }

    /// Number of distinct edge labels.
    pub fn label_count(&self) -> usize {
        self.n_labels as usize
    }

    /// Number of packed edges.
    pub fn edge_count(&self) -> u64 {
        self.n_edges
    }

    /// Whether edge-id streams were kept at build time.
    pub fn has_edge_ids(&self) -> bool {
        self.flags & FLAG_EDGE_IDS != 0
    }

    /// Whether the incoming direction was kept at build time.
    pub fn has_inverse(&self) -> bool {
        self.flags & FLAG_INVERSE != 0
    }

    /// Total blob size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.total_len
    }

    /// The dense label names, in id order.
    pub fn label_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.n_labels as usize);
        let mut pos = 0usize;
        for _ in 0..self.n_labels {
            let b = self.label_tab;
            let len = u32::from_le_bytes([b[pos], b[pos + 1], b[pos + 2], b[pos + 3]]) as usize;
            pos += 4;
            names.push(String::from_utf8_lossy(&b[pos..pos + len]).into_owned());
            pos += len;
        }
        names
    }

    /// Dense id of the label named `name`, if present.
    pub fn label_by_name(&self, name: &str) -> Option<u32> {
        self.label_names()
            .iter()
            .position(|n| n == name)
            .map(|i| i as u32)
    }

    #[inline]
    fn node_range(index: &[u8], v: u32) -> (usize, usize) {
        let at = |k: usize| {
            u32::from_le_bytes([
                index[4 * k],
                index[4 * k + 1],
                index[4 * k + 2],
                index[4 * k + 3],
            ]) as usize
        };
        (at(v as usize), at(v as usize + 1))
    }

    fn run_in(&self, index: &'a [u8], data: &'a [u8], v: u32, label: u32) -> Option<Run<'a>> {
        if v >= self.n_nodes {
            return None;
        }
        let (mut pos, end) = Self::node_range(index, v);
        while pos < end {
            let l = read_varint(data, &mut pos) as u32;
            let rest_len = read_varint(data, &mut pos) as usize;
            if l == label {
                return Some(Run::parse(&data[pos..pos + rest_len], self.has_edge_ids()));
            }
            if l > label {
                return None;
            }
            pos += rest_len;
        }
        None
    }

    /// The outgoing run of `v` for dense label `label`, if non-empty.
    #[inline]
    pub fn out_run(&self, v: u32, label: u32) -> Option<Run<'a>> {
        self.run_in(self.out_index, self.out_data, v, label)
    }

    /// The incoming run of `v` for dense label `label`, if non-empty.
    #[inline]
    pub fn in_run(&self, v: u32, label: u32) -> Option<Run<'a>> {
        self.run_in(self.in_index, self.in_data, v, label)
    }

    /// Appends the sorted out-neighbors of `v` under `label` to `out`.
    #[inline]
    pub fn decode_out_into(&self, v: u32, label: u32, out: &mut Vec<u32>) {
        if let Some(run) = self.out_run(v, label) {
            run.decode_into(out);
        }
    }

    /// Appends the sorted in-neighbors of `v` under `label` to `out`.
    #[inline]
    pub fn decode_in_into(&self, v: u32, label: u32, out: &mut Vec<u32>) {
        if let Some(run) = self.in_run(v, label) {
            run.decode_into(out);
        }
    }

    /// Out-degree of `v` restricted to `label` (count only, no decode).
    pub fn out_degree(&self, v: u32, label: u32) -> usize {
        self.out_run(v, label).map_or(0, |r| r.len())
    }

    /// Appends `(neighbor, edge id)` pairs of the out run. Requires the
    /// blob to have been built with edge ids.
    pub fn decode_out_pairs_into(&self, v: u32, label: u32, out: &mut Vec<(u32, u32)>) {
        if let Some(run) = self.out_run(v, label) {
            run.decode_pairs_into(out);
        }
    }

    /// Appends `(neighbor, edge id)` pairs of the in run.
    pub fn decode_in_pairs_into(&self, v: u32, label: u32, out: &mut Vec<(u32, u32)>) {
        if let Some(run) = self.in_run(v, label) {
            run.decode_pairs_into(out);
        }
    }
}

/// One `(node, label)` run borrowed from a packed blob.
#[derive(Clone, Copy, Debug)]
pub struct Run<'a> {
    count: usize,
    first: u32,
    /// Raw `(base:u32, off:u32)` skip entries; empty for 1-block runs.
    skip: &'a [u8],
    blocks: &'a [u8],
    /// Edge-id section (first varint + blocks), if present.
    eids: Option<&'a [u8]>,
}

impl<'a> Run<'a> {
    fn parse(rest: &'a [u8], has_eids: bool) -> Run<'a> {
        let mut pos = 0usize;
        let count = read_varint(rest, &mut pos) as usize;
        let (neigh, eids) = if has_eids {
            let neigh_len = read_varint(rest, &mut pos) as usize;
            let neigh_end = pos + neigh_len;
            (&rest[pos..neigh_end], Some(&rest[neigh_end..]))
        } else {
            // Without an edge-id stream the neighbor bytes run to the
            // end of the sub-run; no inner framing needed.
            (&rest[pos..], None)
        };
        let mut np = 0usize;
        let first = read_varint(neigh, &mut np) as u32;
        let ndeltas = count - 1;
        let nblocks = ndeltas.div_ceil(BLOCK);
        let skip = if nblocks > 1 {
            let declared = read_varint(neigh, &mut np) as usize;
            debug_assert_eq!(declared, nblocks);
            let s = &neigh[np..np + 8 * declared];
            np += 8 * declared;
            s
        } else {
            &neigh[0..0]
        };
        Run {
            count,
            first,
            skip,
            blocks: &neigh[np..],
            eids,
        }
    }

    /// Number of entries in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the run holds no entries (never for stored runs).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends the run's sorted values to `out`.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.count);
        out.push(self.first);
        let mut prev = self.first;
        let mut remaining = self.count - 1;
        let mut pos = 0usize;
        while remaining > 0 {
            let take = remaining.min(BLOCK);
            let width = self.blocks[pos];
            pos += 1;
            let nbytes = (take * width as usize).div_ceil(8);
            unpack_bits(&self.blocks[pos..pos + nbytes], width, take, |d| {
                prev = prev.wrapping_add(d as u32);
                out.push(prev);
            });
            pos += nbytes;
            remaining -= take;
        }
    }

    /// Appends `(neighbor, edge id)` pairs to `out`. The run must carry
    /// an edge-id stream (see [`PackOptions::edge_ids`]).
    pub fn decode_pairs_into(&self, out: &mut Vec<(u32, u32)>) {
        let eids = match self.eids {
            Some(e) => e,
            None => panic!("packed run has no edge-id stream"),
        };
        let start = out.len();
        self.decode_into_pairs_neighbors(out);
        let mut pos = 0usize;
        let mut prev = read_varint(eids, &mut pos) as u32;
        out[start].1 = prev;
        let mut remaining = self.count - 1;
        let mut k = start + 1;
        while remaining > 0 {
            let take = remaining.min(BLOCK);
            let width = eids[pos];
            pos += 1;
            let nbytes = (take * width as usize).div_ceil(8);
            unpack_bits(&eids[pos..pos + nbytes], width, take, |z| {
                prev = (prev as i64 + unzigzag(z)) as u32;
                out[k].1 = prev;
                k += 1;
            });
            pos += nbytes;
            remaining -= take;
        }
    }

    fn decode_into_pairs_neighbors(&self, out: &mut Vec<(u32, u32)>) {
        out.reserve(self.count);
        out.push((self.first, 0));
        let mut prev = self.first;
        let mut remaining = self.count - 1;
        let mut pos = 0usize;
        while remaining > 0 {
            let take = remaining.min(BLOCK);
            let width = self.blocks[pos];
            pos += 1;
            let nbytes = (take * width as usize).div_ceil(8);
            unpack_bits(&self.blocks[pos..pos + nbytes], width, take, |d| {
                prev = prev.wrapping_add(d as u32);
                out.push((prev, 0));
            });
            pos += nbytes;
            remaining -= take;
        }
    }

    #[inline]
    fn skip_entry(&self, k: usize) -> (u32, u32) {
        let b = self.skip;
        (
            u32::from_le_bytes([b[8 * k], b[8 * k + 1], b[8 * k + 2], b[8 * k + 3]]),
            u32::from_le_bytes([b[8 * k + 4], b[8 * k + 5], b[8 * k + 6], b[8 * k + 7]]),
        )
    }

    /// Point probe: does the run contain `x`? Runs longer than one
    /// block consult the skip table and decode a single 64-delta block;
    /// short runs decode linearly. This is the galloping-intersection
    /// primitive for wedge-closing joins.
    pub fn contains(&self, x: u32) -> bool {
        if x == self.first {
            return true;
        }
        if x < self.first || self.count == 1 {
            return false;
        }
        let nskip = self.skip.len() / 8;
        let (mut base, mut pos, mut take) = (self.first, 0usize, (self.count - 1).min(BLOCK));
        if nskip > 1 {
            // Largest block whose base is < x; bases are block-leading
            // absolute values, so equality is already a hit.
            let (mut lo, mut hi) = (0usize, nskip);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.skip_entry(mid).0 < x {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo < nskip && self.skip_entry(lo).0 == x {
                return true;
            }
            if lo == 0 {
                // x below the first block's range start; only block 0
                // (whose base is `first`) can contain it.
                let (b, o) = self.skip_entry(0);
                base = b;
                pos = o as usize;
            } else {
                let k = lo - 1;
                let (b, o) = self.skip_entry(k);
                base = b;
                pos = o as usize;
                let covered = k * BLOCK;
                take = (self.count - 1 - covered).min(BLOCK);
            }
        }
        let width = self.blocks[pos];
        pos += 1;
        let nbytes = (take * width as usize).div_ceil(8);
        let mut found = false;
        let mut prev = base;
        unpack_bits(&self.blocks[pos..pos + nbytes], width, take, |d| {
            prev = prev.wrapping_add(d as u32);
            if prev == x {
                found = true;
            }
        });
        found
    }
}

// ---------------------------------------------------------------------
// PackedCsr — unlabeled convenience wrapper
// ---------------------------------------------------------------------

/// Packed counterpart of the unlabeled [`crate::csr::Csr`]: a packed
/// index with a single synthetic label holding every edge, edge ids
/// kept so `(edge, neighbor)` adjacency round-trips.
#[derive(Clone, Debug)]
pub struct PackedCsr {
    inner: PackedLabelIndex,
}

impl PackedCsr {
    /// Packs a [`Multigraph`]'s adjacency.
    pub fn build(g: &Multigraph) -> Result<Self, GraphError> {
        let quads: Vec<Quad> = g
            .edges()
            .map(|e| {
                let (s, d) = g.endpoints(e);
                (s.0, 0, d.0, e.0)
            })
            .collect();
        let inner = PackedLabelIndex::from_quads(
            g.node_count() as u32,
            &[String::new()],
            quads,
            PackOptions::default(),
        )?;
        Ok(PackedCsr { inner })
    }

    /// The underlying single-label view.
    pub fn view(&self) -> PackedView<'_> {
        self.inner.view()
    }

    /// Appends the sorted `(target, edge)` pairs of `v` to `out`.
    pub fn out_into(&self, v: u32, out: &mut Vec<(u32, u32)>) {
        self.view().decode_out_pairs_into(v, 0, out);
    }

    /// Appends the sorted `(source, edge)` pairs of `v` to `out`.
    pub fn in_into(&self, v: u32, out: &mut Vec<(u32, u32)>) {
        self.view().decode_in_pairs_into(v, 0, out);
    }

    /// Blob size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.inner.as_bytes().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{Csr, LabelIndex};
    use crate::generate::gnm_labeled;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn bitpack_round_trips_all_widths() {
        for width in 0u8..=56 {
            let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
            let vals: Vec<u64> = (0..129u64)
                .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) & mask)
                .collect();
            let mut buf = Vec::new();
            pack_bits(&vals, width, &mut buf);
            let mut got = Vec::new();
            unpack_bits(&buf, width, vals.len(), |v| got.push(v));
            assert_eq!(got, vals, "width {width}");
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i64, 1, -1, 5, -5, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    fn decode_run_bytes(values: &[u32]) -> Vec<u32> {
        let mut dir = DirBuilder::new(1);
        dir.push_run(0, values, None);
        dir.end_node("test").unwrap();
        let mut pos = 0usize;
        let _label = read_varint(&dir.data, &mut pos);
        let rest_len = read_varint(&dir.data, &mut pos) as usize;
        let run = Run::parse(&dir.data[pos..pos + rest_len], false);
        let mut out = Vec::new();
        run.decode_into(&mut out);
        out
    }

    #[test]
    fn runs_round_trip_across_block_boundaries() {
        for n in [1usize, 2, 63, 64, 65, 128, 129, 200, 1000] {
            let values: Vec<u32> = (0..n as u32).map(|i| i * 37 + (i % 3)).collect();
            assert_eq!(decode_run_bytes(&values), values, "n = {n}");
        }
        // Duplicates (parallel edges) → zero deltas.
        let values = vec![5u32; 100];
        assert_eq!(decode_run_bytes(&values), values);
    }

    #[test]
    fn contains_agrees_with_decode() {
        let values: Vec<u32> = (0..500u32).map(|i| i * 13 + (i % 7)).collect();
        let mut dir = DirBuilder::new(1);
        dir.push_run(0, &values, None);
        dir.end_node("test").unwrap();
        let mut pos = 0usize;
        read_varint(&dir.data, &mut pos);
        let rest_len = read_varint(&dir.data, &mut pos) as usize;
        let run = Run::parse(&dir.data[pos..pos + rest_len], false);
        for x in 0..7000u32 {
            assert_eq!(
                run.contains(x),
                values.binary_search(&x).is_ok(),
                "probe {x}"
            );
        }
    }

    #[test]
    fn packed_matches_raw_label_index_on_a_generated_graph() {
        let g = gnm_labeled(60, 400, &["t"], &["p", "q", "r"], 11);
        let raw = LabelIndex::build(&g);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let view = packed.view();
        assert_eq!(view.node_count(), g.node_count());
        assert_eq!(view.edge_count(), g.edge_count() as u64);
        let names = view.label_names();
        for v in 0..g.node_count() as u32 {
            for (l, name) in names.iter().enumerate() {
                let sym = g.sym(name).unwrap();
                let mut got: Vec<(u32, u32)> = Vec::new();
                view.decode_out_pairs_into(v, l as u32, &mut got);
                let mut want: Vec<(u32, u32)> = raw
                    .out_with_label(crate::multigraph::NodeId(v), sym)
                    .iter()
                    .map(|&(_, e, d)| (d.0, e.0))
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "out v={v} l={name}");
                let mut got: Vec<(u32, u32)> = Vec::new();
                view.decode_in_pairs_into(v, l as u32, &mut got);
                let mut want: Vec<(u32, u32)> = raw
                    .in_with_label(crate::multigraph::NodeId(v), sym)
                    .iter()
                    .map(|&(_, e, s)| (s.0, e.0))
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "in v={v} l={name}");
            }
        }
    }

    #[test]
    fn packed_csr_matches_raw_csr() {
        let g = gnm_labeled(40, 220, &["t"], &["p"], 3);
        let csr = Csr::build(g.base());
        let packed = PackedCsr::build(g.base()).unwrap();
        for v in 0..g.node_count() as u32 {
            let node = crate::multigraph::NodeId(v);
            let mut got = Vec::new();
            packed.out_into(v, &mut got);
            let mut want: Vec<(u32, u32)> =
                csr.out(node).iter().map(|&(e, d)| (d.0, e.0)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "out v={v}");
            let mut got = Vec::new();
            packed.in_into(v, &mut got);
            let mut want: Vec<(u32, u32)> =
                csr.inc(node).iter().map(|&(e, s)| (s.0, e.0)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "in v={v}");
        }
    }

    #[test]
    fn blob_survives_serialization_round_trip() {
        let g = gnm_labeled(30, 150, &["t"], &["a", "b"], 5);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let bytes = packed.as_bytes().to_vec();
        let re = PackedLabelIndex::from_bytes(bytes).unwrap();
        let (a, b) = (packed.view(), re.view());
        assert_eq!(a.edge_count(), b.edge_count());
        let mut x = Vec::new();
        let mut y = Vec::new();
        for v in 0..a.node_count() as u32 {
            for l in 0..a.label_count() as u32 {
                x.clear();
                y.clear();
                a.decode_out_into(v, l, &mut x);
                b.decode_out_into(v, l, &mut y);
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn truncated_or_corrupt_blobs_are_rejected() {
        let g = gnm_labeled(10, 30, &["t"], &["a"], 1);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let bytes = packed.as_bytes();
        assert!(PackedView::parse(&bytes[..HEADER_LEN - 1]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xff;
        assert!(PackedView::parse(&bad).is_err());
        // Truncating the payload under the declared length must fail.
        assert!(PackedView::parse(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn edge_id_free_blobs_are_smaller() {
        let g = gnm_labeled(100, 2000, &["t"], &["a", "b"], 9);
        let with = PackedLabelIndex::from_labeled(&g).unwrap();
        let base = g.base();
        let used: Vec<u32> = {
            let mut u: Vec<u32> = base.edges().map(|e| g.edge_label(e).0).collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        let quads: Vec<Quad> = base
            .edges()
            .map(|e| {
                let (s, d) = base.endpoints(e);
                let l = used.binary_search(&g.edge_label(e).0).unwrap() as u32;
                (s.0, l, d.0, e.0)
            })
            .collect();
        let labels: Vec<String> = used
            .iter()
            .map(|&s| g.consts().resolve(crate::sym::Sym(s)).to_owned())
            .collect();
        let without = PackedLabelIndex::from_quads(
            base.node_count() as u32,
            &labels,
            quads,
            PackOptions {
                edge_ids: false,
                inverse: true,
            },
        )
        .unwrap();
        assert!(without.as_bytes().len() < with.as_bytes().len());
        // Neighbor decode agrees regardless of the edge-id stream.
        let (a, b) = (with.view(), without.view());
        let mut x = Vec::new();
        let mut y = Vec::new();
        for v in 0..a.node_count() as u32 {
            for l in 0..a.label_count() as u32 {
                x.clear();
                y.clear();
                a.decode_out_into(v, l, &mut x);
                b.decode_out_into(v, l, &mut y);
                assert_eq!(x, y);
            }
        }
    }
}
