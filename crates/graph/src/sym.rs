//! Interned constants.
//!
//! The paper assumes a universal set **Const** of constants (strings) used
//! for node identifiers, edge identifiers, labels, property names and
//! property values. [`Interner`] maps each distinct string to a compact
//! [`Sym`] handle so that equality tests and hash lookups in query
//! evaluation never touch string data.

use std::collections::HashMap;
use std::fmt;

/// A handle to an interned constant from **Const**.
///
/// `Sym` is a plain `u32` index into the owning [`Interner`]; two syms from
/// the same interner are equal iff their strings are equal. The value
/// [`Sym::BOTTOM`] is reserved for the "no value" marker `⊥` used in
/// vector-labeled graphs (paper, Figure 2(c)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The reserved "absent value" constant `⊥` (always interned at index 0).
    pub const BOTTOM: Sym = Sym(0);

    /// Raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A string interner for the constant universe **Const**.
///
/// Index 0 is always the bottom marker `⊥`. Interning is idempotent:
/// `intern(s)` returns the same [`Sym`] for the same string.
///
/// ```
/// use kgq_graph::sym::{Interner, Sym};
/// let mut it = Interner::new();
/// let person = it.intern("person");
/// assert_eq!(person, it.intern("person"));
/// assert_eq!(it.resolve(person), "person");
/// assert_eq!(it.resolve(Sym::BOTTOM), "⊥");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    strings: Vec<String>,
    lookup: HashMap<String, Sym>,
}

impl Interner {
    /// Creates an interner containing only the reserved `⊥` constant.
    pub fn new() -> Self {
        let mut i = Interner {
            strings: Vec::new(),
            lookup: HashMap::new(),
        };
        let bottom = i.intern("⊥");
        debug_assert_eq!(bottom, Sym::BOTTOM);
        i
    }

    /// Interns `s`, returning its stable handle.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the handle for `s` if it has been interned before.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.lookup.get(s).copied()
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` does not belong to this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned constants (including `⊥`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if only the reserved constant is present.
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Iterates over `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_index_zero() {
        let it = Interner::new();
        assert_eq!(it.resolve(Sym::BOTTOM), "⊥");
        assert_eq!(it.len(), 1);
        assert!(it.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("rides");
        let b = it.intern("rides");
        let c = it.intern("contact");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(it.resolve(a), "rides");
        assert_eq!(it.resolve(c), "contact");
        assert_eq!(it.len(), 3);
        assert!(!it.is_empty());
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = Interner::new();
        assert_eq!(it.get("x"), None);
        let x = it.intern("x");
        assert_eq!(it.get("x"), Some(x));
    }

    #[test]
    fn iter_yields_in_order() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        let all: Vec<_> = it.iter().collect();
        assert_eq!(all, vec![(Sym::BOTTOM, "⊥"), (a, "a"), (b, "b")]);
    }

    #[test]
    fn sym_ordering_matches_interning_order() {
        let mut it = Interner::new();
        let a = it.intern("first");
        let b = it.intern("second");
        assert!(a < b);
        assert!(Sym::BOTTOM < a);
    }
}
