//! The running example of the paper — Figure 2 in all three models.
//!
//! The paper's Figure 2 shows one social/contact scenario ("people and
//! their contacts") as (a) a labeled graph, (b) a property graph, and (c)
//! a vector-labeled graph. The figure itself is an image, so this module
//! *reconstructs* a graph consistent with every fact the text states:
//!
//! * node labels `person`, `infected`, `bus`, plus an `address` and a
//!   `company` (the text of §4.2 mentions "the company that owns" bus `n3`),
//! * edge labels `rides`, `contact`, `lives`, `owns`,
//! * bus `n3` is used by several people (`rides`), and the regular
//!   expressions (2)/(3) of §4 have non-empty answers,
//! * properties: `name`/`age` on persons, `zip` on the address shared by
//!   two people who live together, `date` on `rides` and `contact` edges,
//!   with the contact date `3/4/21` used by expression (3),
//! * the vector model uses rows `f1=label, f2=name, f3=age, f4=zip,
//!   f5=date` with `⊥` for absent values, so that the paper's rewritten
//!   expression `(f1=person)/(f1=contact ∧ f5=3/4/21)/?(f1=infected)`
//!   works verbatim.

use crate::convert::property_to_vector;
use crate::labeled::LabeledGraph;
use crate::property::PropertyGraph;
use crate::vector::VectorGraph;

/// Figure 2(b): the property graph version of the running example.
///
/// Nodes: `n1` Julia (person), `n2` Pedro (infected), `n3` (bus),
/// `n4` Ana (person), `n5` (address, zip 8320000), `n6` Luis (infected),
/// `n7` (company), `n8` Rosa (person).
///
/// Edges: `e1: n1 -rides-> n3` (3/3/21), `e2: n2 -rides-> n3` (3/4/21),
/// `e3: n4 -rides-> n3` (3/4/21), `e4: n1 -contact-> n4` (3/4/21),
/// `e5: n4 -contact-> n6` (3/4/21), `e6: n4 -lives-> n5`,
/// `e7: n8 -lives-> n5`, `e8: n7 -owns-> n3`.
pub fn figure2_property() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let n1 = g.add_node("n1", "person").unwrap();
    let n2 = g.add_node("n2", "infected").unwrap();
    let n3 = g.add_node("n3", "bus").unwrap();
    let n4 = g.add_node("n4", "person").unwrap();
    let n5 = g.add_node("n5", "address").unwrap();
    let n6 = g.add_node("n6", "infected").unwrap();
    let n7 = g.add_node("n7", "company").unwrap();
    let n8 = g.add_node("n8", "person").unwrap();

    g.set_node_prop(n1, "name", "Julia");
    g.set_node_prop(n1, "age", "33");
    g.set_node_prop(n2, "name", "Pedro");
    g.set_node_prop(n2, "age", "40");
    g.set_node_prop(n4, "name", "Ana");
    g.set_node_prop(n4, "age", "27");
    g.set_node_prop(n5, "zip", "8320000");
    g.set_node_prop(n6, "name", "Luis");
    g.set_node_prop(n6, "age", "61");
    g.set_node_prop(n8, "name", "Rosa");
    g.set_node_prop(n8, "age", "19");

    let e1 = g.add_edge("e1", n1, n3, "rides").unwrap();
    let e2 = g.add_edge("e2", n2, n3, "rides").unwrap();
    let e3 = g.add_edge("e3", n4, n3, "rides").unwrap();
    let e4 = g.add_edge("e4", n1, n4, "contact").unwrap();
    let e5 = g.add_edge("e5", n4, n6, "contact").unwrap();
    let _e6 = g.add_edge("e6", n4, n5, "lives").unwrap();
    let _e7 = g.add_edge("e7", n8, n5, "lives").unwrap();
    let _e8 = g.add_edge("e8", n7, n3, "owns").unwrap();

    g.set_edge_prop(e1, "date", "3/3/21");
    g.set_edge_prop(e2, "date", "3/4/21");
    g.set_edge_prop(e3, "date", "3/4/21");
    g.set_edge_prop(e4, "date", "3/4/21");
    g.set_edge_prop(e5, "date", "3/4/21");
    g
}

/// Figure 2(a): the labeled-graph projection of [`figure2_property`].
pub fn figure2_labeled() -> LabeledGraph {
    figure2_property().into_labeled()
}

/// Figure 2(c): the vector-labeled version of [`figure2_property`].
///
/// Dimension 5 with rows `label, age, date, name, zip` (label first, then
/// property columns sorted by name, matching [`property_to_vector`]).
pub fn figure2_vector() -> VectorGraph {
    property_to_vector(&figure2_property()).expect("figure 2 vectorization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;

    #[test]
    fn figure2_has_eight_nodes_and_eight_edges() {
        let g = figure2_property();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn labels_match_the_text() {
        let g = figure2_labeled();
        for (node, label) in [
            ("n1", "person"),
            ("n2", "infected"),
            ("n3", "bus"),
            ("n5", "address"),
            ("n7", "company"),
        ] {
            let n = g.node_named(node).unwrap();
            assert_eq!(g.label_name(g.node_label(n)), label, "node {node}");
        }
    }

    #[test]
    fn two_people_share_an_address_with_zip() {
        let g = figure2_property();
        let n5 = g.labeled().node_named("n5").unwrap();
        assert_eq!(g.node_prop_str(n5, "zip"), Some("8320000"));
        let lives = g.labeled().sym("lives").unwrap();
        assert_eq!(g.labeled().edges_with_label(lives).len(), 2);
    }

    #[test]
    fn contact_on_march_4_exists() {
        let g = figure2_property();
        let e4 = g.labeled().edge_named("e4").unwrap();
        assert_eq!(g.edge_prop_str(e4, "date"), Some("3/4/21"));
        assert_eq!(
            g.labeled().label_name(g.labeled().edge_label(e4)),
            "contact"
        );
    }

    #[test]
    fn vector_model_has_expected_schema() {
        let g = figure2_vector();
        assert_eq!(g.dim(), 5);
        assert_eq!(g.feature_names()[0], "label");
        // The paper's f5 = date test must be expressible: date is a column.
        assert!(g.feature_names().iter().any(|n| n == "date"));
        let n3 = g.node_named("n3").unwrap();
        assert_eq!(g.feature_str(n3, 0), "bus");
        // The bus has no name/age/zip/date.
        for i in 1..5 {
            assert_eq!(g.node_feature(n3, i), Sym::BOTTOM);
        }
    }

    #[test]
    fn company_owns_the_bus() {
        let g = figure2_labeled();
        let owns = g.sym("owns").unwrap();
        let e = g.edges_with_label(owns);
        assert_eq!(e.len(), 1);
        let (s, d) = g.base().endpoints(e[0]);
        assert_eq!(g.node_name(s), "n7");
        assert_eq!(g.node_name(d), "n3");
    }
}
