//! Labeled graphs `(N, E, ρ, λ)` — Figure 2(a) of the paper.
//!
//! A labeled graph extends the base [`Multigraph`] with a total labeling
//! function `λ : (N ∪ E) → Const`. Following the paper we label *both*
//! nodes and edges (the "heterogeneous graph" convention), as opposed to
//! edge-labeled graphs where only edges carry labels.

use crate::error::GraphError;
use crate::multigraph::{EdgeId, Multigraph, NodeId};
use crate::sym::{Interner, Sym};

/// A labeled graph: a multigraph plus `λ` on nodes and edges.
///
/// The graph owns its own [`Interner`] for **Const**, so a `LabeledGraph`
/// is self-contained and printable.
///
/// ```
/// use kgq_graph::LabeledGraph;
/// let mut g = LabeledGraph::new();
/// let alice = g.add_node("alice", "person").unwrap();
/// let bus = g.add_node("b7", "bus").unwrap();
/// g.add_edge("e1", alice, bus, "rides").unwrap();
/// assert_eq!(g.label_name(g.node_label(alice)), "person");
/// ```
#[derive(Clone, Debug, Default)]
pub struct LabeledGraph {
    base: Multigraph,
    node_labels: Vec<Sym>,
    edge_labels: Vec<Sym>,
    consts: Interner,
    /// Mutations not visible in the base multigraph (relabelings); see
    /// [`LabeledGraph::generation`].
    relabels: u64,
}

impl LabeledGraph {
    /// Creates an empty labeled graph.
    pub fn new() -> Self {
        LabeledGraph {
            base: Multigraph::new(),
            node_labels: Vec::new(),
            edge_labels: Vec::new(),
            consts: Interner::new(),
            relabels: 0,
        }
    }

    /// A **generation stamp**: strictly increases on every mutation that
    /// can change query answers (insertions via the base multigraph, plus
    /// relabelings). Interning new constants does *not* bump the stamp —
    /// it changes no answer. Comparable only within this graph's history.
    pub fn generation(&self) -> u64 {
        self.base.generation() + self.relabels
    }

    /// Adds a node with **Const** identifier `id` and label `label`.
    pub fn add_node(&mut self, id: &str, label: &str) -> Result<NodeId, GraphError> {
        let id = self.consts.intern(id);
        let label = self.consts.intern(label);
        let n = self.base.add_node(id)?;
        self.node_labels.push(label);
        Ok(n)
    }

    /// Adds an edge `src → dst` with identifier `id` and label `label`.
    pub fn add_edge(
        &mut self,
        id: &str,
        src: NodeId,
        dst: NodeId,
        label: &str,
    ) -> Result<EdgeId, GraphError> {
        let id = self.consts.intern(id);
        let label = self.consts.intern(label);
        let e = self.base.add_edge(id, src, dst)?;
        self.edge_labels.push(label);
        Ok(e)
    }

    /// `λ(n)`: the label of node `n`.
    #[inline]
    pub fn node_label(&self, n: NodeId) -> Sym {
        self.node_labels[n.index()]
    }

    /// `λ(e)`: the label of edge `e`.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> Sym {
        self.edge_labels[e.index()]
    }

    /// Replaces the label of node `n` (used when deriving knowledge, e.g.
    /// marking a person as `infected`).
    pub fn relabel_node(&mut self, n: NodeId, label: &str) {
        self.node_labels[n.index()] = self.consts.intern(label);
        self.relabels += 1;
    }

    /// The underlying multigraph `(N, E, ρ)`.
    #[inline]
    pub fn base(&self) -> &Multigraph {
        &self.base
    }

    /// The constant universe of this graph.
    pub fn consts(&self) -> &Interner {
        &self.consts
    }

    /// Mutable access to the constant universe (for interning query constants
    /// consistently with the graph's own symbols).
    pub fn consts_mut(&mut self) -> &mut Interner {
        &mut self.consts
    }

    /// Interns `s` into this graph's constant universe.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.consts.intern(s)
    }

    /// Returns the symbol for `s` if present (does not intern).
    pub fn sym(&self, s: &str) -> Option<Sym> {
        self.consts.get(s)
    }

    /// Resolves a symbol back to its string.
    pub fn label_name(&self, s: Sym) -> &str {
        self.consts.resolve(s)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.base.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.base.edge_count()
    }

    /// Looks up a node by its **Const** identifier string.
    pub fn node_named(&self, id: &str) -> Option<NodeId> {
        self.consts.get(id).and_then(|s| self.base.node_by_sym(s))
    }

    /// Looks up an edge by its **Const** identifier string.
    pub fn edge_named(&self, id: &str) -> Option<EdgeId> {
        self.consts.get(id).and_then(|s| self.base.edge_by_sym(s))
    }

    /// Human-readable name of node `n` (its **Const** identifier).
    pub fn node_name(&self, n: NodeId) -> &str {
        self.consts.resolve(self.base.node_id_sym(n))
    }

    /// Human-readable name of edge `e` (its **Const** identifier).
    pub fn edge_name(&self, e: EdgeId) -> &str {
        self.consts.resolve(self.base.edge_id_sym(e))
    }

    /// All nodes carrying label `label`.
    pub fn nodes_with_label(&self, label: Sym) -> Vec<NodeId> {
        self.base
            .nodes()
            .filter(|n| self.node_label(*n) == label)
            .collect()
    }

    /// All edges carrying label `label`.
    pub fn edges_with_label(&self, label: Sym) -> Vec<EdgeId> {
        self.base
            .edges()
            .filter(|e| self.edge_label(*e) == label)
            .collect()
    }

    /// The set of distinct node labels, sorted.
    pub fn node_label_alphabet(&self) -> Vec<Sym> {
        let mut v: Vec<Sym> = self.node_labels.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The set of distinct edge labels, sorted.
    pub fn edge_label_alphabet(&self) -> Vec<Sym> {
        let mut v: Vec<Sym> = self.edge_labels.clone();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contacts() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "person").unwrap();
        let b = g.add_node("b", "infected").unwrap();
        let bus = g.add_node("bus1", "bus").unwrap();
        g.add_edge("e1", a, bus, "rides").unwrap();
        g.add_edge("e2", b, bus, "rides").unwrap();
        g.add_edge("e3", a, b, "contact").unwrap();
        g
    }

    #[test]
    fn labels_round_trip() {
        let g = contacts();
        let a = g.node_named("a").unwrap();
        assert_eq!(g.label_name(g.node_label(a)), "person");
        let e = g.edge_named("e3").unwrap();
        assert_eq!(g.label_name(g.edge_label(e)), "contact");
    }

    #[test]
    fn nodes_with_label_filters() {
        let g = contacts();
        let person = g.sym("person").unwrap();
        assert_eq!(g.nodes_with_label(person).len(), 1);
        let rides = g.sym("rides").unwrap();
        assert_eq!(g.edges_with_label(rides).len(), 2);
    }

    #[test]
    fn relabel_marks_infection() {
        let mut g = contacts();
        let a = g.node_named("a").unwrap();
        g.relabel_node(a, "infected");
        let infected = g.sym("infected").unwrap();
        assert_eq!(g.nodes_with_label(infected).len(), 2);
    }

    #[test]
    fn alphabets_are_sorted_and_deduped() {
        let g = contacts();
        let na = g.node_label_alphabet();
        assert_eq!(na.len(), 3); // person, infected, bus
        assert!(na.windows(2).all(|w| w[0] < w[1]));
        let ea = g.edge_label_alphabet();
        assert_eq!(ea.len(), 2); // rides, contact
    }

    #[test]
    fn generation_tracks_insertions_and_relabelings() {
        let mut g = contacts(); // 3 nodes + 3 edges
        assert_eq!(g.generation(), 6);
        let a = g.node_named("a").unwrap();
        g.relabel_node(a, "infected");
        assert_eq!(g.generation(), 7);
        g.intern("unused-constant");
        assert_eq!(g.generation(), 7);
    }

    #[test]
    fn names_resolve() {
        let g = contacts();
        let bus = g.node_named("bus1").unwrap();
        assert_eq!(g.node_name(bus), "bus1");
        assert_eq!(g.edge_name(g.edge_named("e1").unwrap()), "e1");
        assert_eq!(g.node_named("nope"), None);
    }
}
