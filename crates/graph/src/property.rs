//! Property graphs `(N, E, ρ, λ, σ)` — Figure 2(b) of the paper.
//!
//! A property graph extends a [`LabeledGraph`] with a partial function
//! `σ : (N ∪ E) × Const → Const`: `σ(o, p) = v` means property `p` of the
//! object (node or edge) `o` has value `v`. Each object has values for a
//! finite number of properties; we store them as small sorted vectors of
//! `(property, value)` pairs.

use crate::error::GraphError;
use crate::labeled::LabeledGraph;
use crate::multigraph::{EdgeId, NodeId};
use crate::sym::Sym;

/// A node or an edge — the domain `(N ∪ E)` of `σ`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Object {
    /// A node object.
    Node(NodeId),
    /// An edge object.
    Edge(EdgeId),
}

/// A property graph: a labeled graph plus `σ`.
///
/// ```
/// use kgq_graph::PropertyGraph;
/// let mut g = PropertyGraph::new();
/// let n = g.add_node("n1", "person").unwrap();
/// g.set_node_prop(n, "name", "Julia");
/// g.set_node_prop(n, "age", "33");
/// assert_eq!(g.node_prop_str(n, "age"), Some("33"));
/// assert_eq!(g.node_prop_str(n, "zip"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PropertyGraph {
    labeled: LabeledGraph,
    node_props: Vec<Vec<(Sym, Sym)>>,
    edge_props: Vec<Vec<(Sym, Sym)>>,
    /// Mutations of `σ` (property writes); see
    /// [`PropertyGraph::generation`].
    prop_writes: u64,
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        PropertyGraph::default()
    }

    /// Wraps an existing labeled graph with an empty `σ`.
    pub fn from_labeled(labeled: LabeledGraph) -> Self {
        let node_props = vec![Vec::new(); labeled.node_count()];
        let edge_props = vec![Vec::new(); labeled.edge_count()];
        PropertyGraph {
            labeled,
            node_props,
            edge_props,
            prop_writes: 0,
        }
    }

    /// A **generation stamp**: strictly increases on every mutation that
    /// can change query answers — insertions and relabelings (via the
    /// labeled layer, including through [`PropertyGraph::labeled_mut`])
    /// plus every property write. Comparable only within this graph's
    /// history.
    pub fn generation(&self) -> u64 {
        self.labeled.generation() + self.prop_writes
    }

    /// Advances the generation stamp without changing the graph — the
    /// external-invalidation hook for callers whose query answers
    /// depend on state *outside* this graph (e.g. `kgq serve` bumps the
    /// shared stamp when a committed mutation changes the triple store,
    /// so every cache entry keyed at the old generation becomes
    /// unreachable).
    pub fn touch(&mut self) {
        self.prop_writes += 1;
    }

    /// Adds a node with identifier `id` and label `label`.
    pub fn add_node(&mut self, id: &str, label: &str) -> Result<NodeId, GraphError> {
        let n = self.labeled.add_node(id, label)?;
        self.node_props.push(Vec::new());
        Ok(n)
    }

    /// Adds an edge with identifier `id` and label `label`.
    pub fn add_edge(
        &mut self,
        id: &str,
        src: NodeId,
        dst: NodeId,
        label: &str,
    ) -> Result<EdgeId, GraphError> {
        let e = self.labeled.add_edge(id, src, dst, label)?;
        self.edge_props.push(Vec::new());
        Ok(e)
    }

    fn set_prop(list: &mut Vec<(Sym, Sym)>, p: Sym, v: Sym) {
        match list.binary_search_by_key(&p, |&(k, _)| k) {
            Ok(i) => list[i].1 = v,
            Err(i) => list.insert(i, (p, v)),
        }
    }

    /// Sets `σ(node, prop) = value`.
    pub fn set_node_prop(&mut self, n: NodeId, prop: &str, value: &str) {
        let p = self.labeled.intern(prop);
        let v = self.labeled.intern(value);
        Self::set_prop(&mut self.node_props[n.index()], p, v);
        self.prop_writes += 1;
    }

    /// Sets `σ(edge, prop) = value`.
    pub fn set_edge_prop(&mut self, e: EdgeId, prop: &str, value: &str) {
        let p = self.labeled.intern(prop);
        let v = self.labeled.intern(value);
        Self::set_prop(&mut self.edge_props[e.index()], p, v);
        self.prop_writes += 1;
    }

    /// `σ(node, prop)` as a symbol.
    pub fn node_prop(&self, n: NodeId, prop: Sym) -> Option<Sym> {
        let list = &self.node_props[n.index()];
        list.binary_search_by_key(&prop, |&(k, _)| k)
            .ok()
            .map(|i| list[i].1)
    }

    /// `σ(edge, prop)` as a symbol.
    pub fn edge_prop(&self, e: EdgeId, prop: Sym) -> Option<Sym> {
        let list = &self.edge_props[e.index()];
        list.binary_search_by_key(&prop, |&(k, _)| k)
            .ok()
            .map(|i| list[i].1)
    }

    /// `σ(node, prop)` as a string, by property name.
    pub fn node_prop_str(&self, n: NodeId, prop: &str) -> Option<&str> {
        let p = self.labeled.sym(prop)?;
        self.node_prop(n, p).map(|v| self.labeled.label_name(v))
    }

    /// `σ(edge, prop)` as a string, by property name.
    pub fn edge_prop_str(&self, e: EdgeId, prop: &str) -> Option<&str> {
        let p = self.labeled.sym(prop)?;
        self.edge_prop(e, p).map(|v| self.labeled.label_name(v))
    }

    /// All `(property, value)` pairs of a node, sorted by property symbol.
    pub fn node_props(&self, n: NodeId) -> &[(Sym, Sym)] {
        &self.node_props[n.index()]
    }

    /// All `(property, value)` pairs of an edge, sorted by property symbol.
    pub fn edge_props(&self, e: EdgeId) -> &[(Sym, Sym)] {
        &self.edge_props[e.index()]
    }

    /// `σ(o, p)` for an arbitrary object.
    pub fn prop(&self, o: Object, p: Sym) -> Option<Sym> {
        match o {
            Object::Node(n) => self.node_prop(n, p),
            Object::Edge(e) => self.edge_prop(e, p),
        }
    }

    /// The underlying labeled graph `(N, E, ρ, λ)`.
    #[inline]
    pub fn labeled(&self) -> &LabeledGraph {
        &self.labeled
    }

    /// Mutable access to the underlying labeled graph.
    pub fn labeled_mut(&mut self) -> &mut LabeledGraph {
        &mut self.labeled
    }

    /// Consumes `self`, dropping `σ` (the projection to the labeled model).
    pub fn into_labeled(self) -> LabeledGraph {
        self.labeled
    }

    /// The set of distinct property names used anywhere in the graph, sorted.
    pub fn property_alphabet(&self) -> Vec<Sym> {
        let mut v: Vec<Sym> = self
            .node_props
            .iter()
            .chain(self.edge_props.iter())
            .flat_map(|list| list.iter().map(|&(p, _)| p))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labeled.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.labeled.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let n1 = g.add_node("n1", "person").unwrap();
        let n2 = g.add_node("n2", "person").unwrap();
        let e = g.add_edge("e1", n1, n2, "contact").unwrap();
        g.set_node_prop(n1, "name", "Julia");
        g.set_node_prop(n1, "age", "33");
        g.set_edge_prop(e, "date", "3/4/21");
        g
    }

    #[test]
    fn properties_are_partial() {
        let g = sample();
        let n2 = g.labeled().node_named("n2").unwrap();
        assert_eq!(g.node_prop_str(n2, "name"), None);
        let n1 = g.labeled().node_named("n1").unwrap();
        assert_eq!(g.node_prop_str(n1, "name"), Some("Julia"));
    }

    #[test]
    fn edge_properties_work() {
        let g = sample();
        let e = g.labeled().edge_named("e1").unwrap();
        assert_eq!(g.edge_prop_str(e, "date"), Some("3/4/21"));
        assert_eq!(g.edge_prop_str(e, "zip"), None);
    }

    #[test]
    fn overwriting_a_property_replaces_it() {
        let mut g = sample();
        let n1 = g.labeled().node_named("n1").unwrap();
        g.set_node_prop(n1, "age", "34");
        assert_eq!(g.node_prop_str(n1, "age"), Some("34"));
        assert_eq!(g.node_props(n1).len(), 2);
    }

    #[test]
    fn props_stay_sorted_by_symbol() {
        let g = sample();
        let n1 = g.labeled().node_named("n1").unwrap();
        let list = g.node_props(n1);
        assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn property_alphabet_collects_all() {
        let g = sample();
        let names: Vec<&str> = g
            .property_alphabet()
            .iter()
            .map(|&p| g.labeled().label_name(p))
            .collect();
        assert!(names.contains(&"name"));
        assert!(names.contains(&"age"));
        assert!(names.contains(&"date"));
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn object_accessor_dispatches() {
        let g = sample();
        let n1 = g.labeled().node_named("n1").unwrap();
        let e = g.labeled().edge_named("e1").unwrap();
        let name = g.labeled().sym("name").unwrap();
        let date = g.labeled().sym("date").unwrap();
        assert!(g.prop(Object::Node(n1), name).is_some());
        assert!(g.prop(Object::Edge(e), date).is_some());
        assert!(g.prop(Object::Edge(e), name).is_none());
    }

    #[test]
    fn generation_counts_inserts_relabels_and_prop_writes() {
        let mut g = sample(); // 2 nodes + 1 edge + 3 property writes
        assert_eq!(g.generation(), 6);
        let n1 = g.labeled().node_named("n1").unwrap();
        g.set_node_prop(n1, "age", "34");
        assert_eq!(g.generation(), 7);
        g.labeled_mut().relabel_node(n1, "infected");
        assert_eq!(g.generation(), 8);
    }

    #[test]
    fn from_labeled_preserves_structure() {
        let mut lg = LabeledGraph::new();
        let a = lg.add_node("a", "x").unwrap();
        let b = lg.add_node("b", "y").unwrap();
        lg.add_edge("e", a, b, "z").unwrap();
        let pg = PropertyGraph::from_labeled(lg);
        assert_eq!(pg.node_count(), 2);
        assert_eq!(pg.edge_count(), 1);
        assert!(pg.node_props(a).is_empty());
    }
}
