//! Error type shared by the graph-model crate.

use std::fmt;

/// Errors raised while constructing, converting or parsing graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced by an edge or lookup does not exist.
    UnknownNode(String),
    /// An edge id referenced by a lookup does not exist.
    UnknownEdge(String),
    /// A node or edge identifier (an element of **Const**) was reused.
    DuplicateId(String),
    /// A vector-labeled graph operation used a feature index `>= d`.
    FeatureOutOfRange { index: usize, dim: usize },
    /// A feature vector of the wrong dimension was supplied.
    DimensionMismatch { expected: usize, got: usize },
    /// Malformed input in the text exchange format.
    Parse { line: usize, message: String },
    /// A flat-array structure outgrew its offset width: `what` names the
    /// array, `entries` is the size that no longer fits in `u32`. Raised
    /// by the checked CSR/packed builders instead of silently wrapping
    /// offsets past 2³² entries.
    TooLarge { what: &'static str, entries: u64 },
    /// A packed adjacency image failed structural validation (bad magic,
    /// truncated section, offset out of bounds).
    BadImage(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node `{id}`"),
            GraphError::UnknownEdge(id) => write!(f, "unknown edge `{id}`"),
            GraphError::DuplicateId(id) => write!(f, "duplicate identifier `{id}`"),
            GraphError::FeatureOutOfRange { index, dim } => {
                write!(f, "feature index {index} out of range for dimension {dim}")
            }
            GraphError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature vector dimension mismatch: expected {expected}, got {got}"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::TooLarge { what, entries } => {
                write!(
                    f,
                    "{what} needs {entries} entries, which overflows its u32 offsets"
                )
            }
            GraphError::BadImage(msg) => write!(f, "bad packed graph image: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::UnknownNode("n9".into());
        assert_eq!(e.to_string(), "unknown node `n9`");
        let e = GraphError::FeatureOutOfRange { index: 7, dim: 5 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("5"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad edge".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
