//! # kgq-graph — graph data models
//!
//! Implements the three graph data models of Arenas, Gutierrez & Sequeda,
//! *Querying in the Age of Graph Databases and Knowledge Graphs* (SIGMOD
//! 2021), Section 3:
//!
//! * [`LabeledGraph`] — a multigraph `(N, E, ρ)` plus a labeling function
//!   `λ : (N ∪ E) → Const` (Figure 2(a)).
//! * [`PropertyGraph`] — a labeled graph plus a partial function
//!   `σ : (N ∪ E) × Const → Const` assigning property values (Figure 2(b)).
//! * [`VectorGraph`] — a multigraph plus `λ : (N ∪ E) → Const^d`, the
//!   vector-labeled model used as input for message-passing algorithms and
//!   graph neural networks (Figure 2(c)).
//!
//! All constants (the set **Const** of the paper) are interned as compact
//! [`Sym`] handles by an [`Interner`]; graphs store only `u32`-sized ids in
//! hot paths. The crate also provides:
//!
//! * conversions between the three models ([`convert`]),
//! * compressed sparse row snapshots for fast traversal ([`csr`]),
//! * deterministic random graph generators for workloads ([`generate`]),
//! * the running example graphs of the paper's Figure 2 ([`figures`]),
//! * a plain-text exchange format ([`io`]).

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod convert;
pub mod csr;
pub mod error;
pub mod figures;
pub mod generate;
pub mod io;
pub mod labeled;
pub mod multigraph;
pub mod packed;
pub mod property;
pub mod schema;
pub mod subgraph;
pub mod sym;
pub mod vector;

pub use csr::{Csr, LabelIndex};
pub use error::GraphError;
pub use labeled::LabeledGraph;
pub use multigraph::{EdgeId, Multigraph, NodeId};
pub use packed::{PackOptions, PackedCsr, PackedLabelIndex, PackedView, Run};
pub use property::PropertyGraph;
pub use schema::{GraphModel, SchemaSummary};
pub use subgraph::{induced_subgraph, induced_subgraph_property};
pub use sym::{Interner, Sym};
pub use vector::VectorGraph;
