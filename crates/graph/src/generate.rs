//! Deterministic workload generators.
//!
//! The paper has no benchmark datasets of its own (it is a tutorial), so
//! every experiment in `kgq-bench` runs on synthetic graphs produced here.
//! All generators take an explicit seed and are deterministic across runs.
//!
//! * [`gnm_labeled`] — Erdős–Rényi `G(n, m)` with uniform random labels.
//! * [`barabasi_albert`] — preferential-attachment graphs (heavy-tailed
//!   degrees, the "Web-like" regime of §2.2).
//! * [`path_graph`], [`cycle_graph`], [`grid_graph`], [`star_graph`],
//!   [`complete_graph`] — structured families used by unit tests and the
//!   analytics experiments.
//! * [`contact_network`] — the paper's epidemiological running example at
//!   scale: people, buses and addresses with `rides`/`contact`/`lives`
//!   edges, dated interactions and a seeded set of `infected` people.

use crate::labeled::LabeledGraph;
use crate::multigraph::NodeId;
use crate::property::PropertyGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, m)`: `n` nodes, `m` edges with uniformly random
/// endpoints, node labels from `node_labels` and edge labels from
/// `edge_labels`, both uniform.
pub fn gnm_labeled(
    n: usize,
    m: usize,
    node_labels: &[&str],
    edge_labels: &[&str],
    seed: u64,
) -> LabeledGraph {
    assert!(n > 0, "need at least one node");
    assert!(!node_labels.is_empty() && !edge_labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| {
            let label = node_labels[rng.gen_range(0..node_labels.len())];
            g.add_node(&format!("v{i}"), label).unwrap()
        })
        .collect();
    for j in 0..m {
        let s = nodes[rng.gen_range(0..n)];
        let d = nodes[rng.gen_range(0..n)];
        let label = edge_labels[rng.gen_range(0..edge_labels.len())];
        g.add_edge(&format!("e{j}"), s, d, label).unwrap();
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new node to `m_per` existing nodes chosen proportionally
/// to degree. Produces heavy-tailed degree distributions.
pub fn barabasi_albert(
    n: usize,
    m_per: usize,
    node_label: &str,
    edge_label: &str,
    seed: u64,
) -> LabeledGraph {
    assert!(m_per >= 1 && n > m_per, "need n > m_per >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LabeledGraph::new();
    let mut nodes: Vec<NodeId> = Vec::with_capacity(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoint_pool: Vec<NodeId> = Vec::new();
    let core = m_per + 1;
    let mut eid = 0usize;
    for i in 0..core {
        nodes.push(g.add_node(&format!("v{i}"), node_label).unwrap());
    }
    for i in 0..core {
        for j in 0..core {
            if i != j {
                g.add_edge(&format!("e{eid}"), nodes[i], nodes[j], edge_label)
                    .unwrap();
                eid += 1;
                endpoint_pool.push(nodes[i]);
                endpoint_pool.push(nodes[j]);
            }
        }
    }
    for i in core..n {
        let v = g.add_node(&format!("v{i}"), node_label).unwrap();
        nodes.push(v);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_per);
        while chosen.len() < m_per {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            g.add_edge(&format!("e{eid}"), v, t, edge_label).unwrap();
            eid += 1;
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    g
}

/// Barabási–Albert preferential attachment as a raw `u32` edge stream
/// `(src, label, dst)` — no string names, no interner, no per-edge
/// allocation — for graphs far beyond what [`barabasi_albert`]'s
/// `format!("v{i}")` naming can reach (10⁸ edges in seconds instead of
/// minutes and gigabytes of id strings). Same sampling scheme:
/// repeated-endpoint pool, `m_per` distinct targets per new node,
/// starting from an `(m_per + 1)`-clique. Labels are assigned
/// deterministically from the rng over `0..n_labels`.
///
/// Node ids are `0..n`, edge ids are implicit stream positions; the
/// result feeds [`crate::packed::PackedLabelIndex::from_quads`]
/// directly.
pub fn ba_edge_stream(n: u32, m_per: u32, n_labels: u32, seed: u64) -> Vec<(u32, u32, u32)> {
    assert!(m_per >= 1 && n > m_per, "need n > m_per >= 1");
    assert!(n_labels >= 1, "need at least one label");
    let mut rng = StdRng::seed_from_u64(seed);
    let core = m_per + 1;
    let n_edges = (core as usize * m_per as usize) + (n - core) as usize * m_per as usize;
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(n_edges);
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * n_edges);
    let label = move |rng: &mut StdRng| {
        if n_labels == 1 {
            0
        } else {
            rng.gen_range(0..n_labels)
        }
    };
    for i in 0..core {
        for j in 0..core {
            if i != j {
                edges.push((i, label(&mut rng), j));
                endpoint_pool.push(i);
                endpoint_pool.push(j);
            }
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(m_per as usize);
    for v in core..n {
        chosen.clear();
        while chosen.len() < m_per as usize {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for k in 0..chosen.len() {
            let t = chosen[k];
            edges.push((v, label(&mut rng), t));
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    edges
}

/// A directed path `v0 → v1 → … → v{n-1}`.
pub fn path_graph(n: usize, node_label: &str, edge_label: &str) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(&format!("v{i}"), node_label).unwrap())
        .collect();
    for i in 0..n.saturating_sub(1) {
        g.add_edge(&format!("e{i}"), nodes[i], nodes[i + 1], edge_label)
            .unwrap();
    }
    g
}

/// A directed cycle on `n` nodes.
pub fn cycle_graph(n: usize, node_label: &str, edge_label: &str) -> LabeledGraph {
    assert!(n >= 1);
    let mut g = path_graph(n, node_label, edge_label);
    if n > 1 {
        let last = g.node_named(&format!("v{}", n - 1)).unwrap();
        let first = g.node_named("v0").unwrap();
        g.add_edge("e_back", last, first, edge_label).unwrap();
    } else {
        let v = g.node_named("v0").unwrap();
        g.add_edge("e_back", v, v, edge_label).unwrap();
    }
    g
}

/// A `w × h` grid with `right` and `down` edges.
pub fn grid_graph(w: usize, h: usize, node_label: &str) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let mut ids = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            ids.push(g.add_node(&format!("v{x}_{y}"), node_label).unwrap());
        }
    }
    let mut eid = 0;
    for y in 0..h {
        for x in 0..w {
            let here = ids[y * w + x];
            if x + 1 < w {
                g.add_edge(&format!("e{eid}"), here, ids[y * w + x + 1], "right")
                    .unwrap();
                eid += 1;
            }
            if y + 1 < h {
                g.add_edge(&format!("e{eid}"), here, ids[(y + 1) * w + x], "down")
                    .unwrap();
                eid += 1;
            }
        }
    }
    g
}

/// A star: hub `v0` with `n-1` spokes `v0 → vi`.
pub fn star_graph(n: usize, node_label: &str, edge_label: &str) -> LabeledGraph {
    assert!(n >= 1);
    let mut g = LabeledGraph::new();
    let hub = g.add_node("v0", node_label).unwrap();
    for i in 1..n {
        let v = g.add_node(&format!("v{i}"), node_label).unwrap();
        g.add_edge(&format!("e{i}"), hub, v, edge_label).unwrap();
    }
    g
}

/// A complete directed graph (no self-loops) on `n` nodes.
pub fn complete_graph(n: usize, node_label: &str, edge_label: &str) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(&format!("v{i}"), node_label).unwrap())
        .collect();
    let mut eid = 0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(&format!("e{eid}"), nodes[i], nodes[j], edge_label)
                    .unwrap();
                eid += 1;
            }
        }
    }
    g
}

/// Parameters for [`contact_network`].
#[derive(Clone, Debug)]
pub struct ContactParams {
    /// Number of people.
    pub people: usize,
    /// Number of buses.
    pub buses: usize,
    /// Number of addresses (each shared by ~`people/addresses` residents).
    pub addresses: usize,
    /// Number of `rides` edges per person (each to a random bus).
    pub rides_per_person: usize,
    /// Number of `contact` edges per person (to random other people).
    pub contacts_per_person: usize,
    /// Fraction of people labeled `infected` instead of `person`.
    pub infected_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContactParams {
    fn default() -> Self {
        ContactParams {
            people: 50,
            buses: 5,
            addresses: 20,
            rides_per_person: 2,
            contacts_per_person: 2,
            infected_fraction: 0.1,
            seed: 42,
        }
    }
}

/// Generates a scaled-up version of the paper's Figure 2 scenario.
///
/// People are nodes labeled `person` or `infected` with `name`/`age`
/// properties; buses are `bus` nodes owned by `company` nodes; addresses
/// are `address` nodes with `zip` properties. Edges are `rides` (dated),
/// `contact` (dated) and `lives`.
pub fn contact_network(params: &ContactParams) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut g = PropertyGraph::new();
    let dates = ["3/1/21", "3/2/21", "3/3/21", "3/4/21", "3/5/21"];

    let mut people = Vec::with_capacity(params.people);
    for i in 0..params.people {
        let label = if rng.gen_bool(params.infected_fraction.clamp(0.0, 1.0)) {
            "infected"
        } else {
            "person"
        };
        let p = g.add_node(&format!("p{i}"), label).unwrap();
        g.set_node_prop(p, "name", &format!("person-{i}"));
        g.set_node_prop(p, "age", &format!("{}", 18 + (i * 7) % 60));
        people.push(p);
    }
    let mut buses = Vec::with_capacity(params.buses);
    for i in 0..params.buses {
        buses.push(g.add_node(&format!("b{i}"), "bus").unwrap());
    }
    // One company owning all buses keeps the §4.2 "owner" distractor paths.
    if !buses.is_empty() {
        let comp = g.add_node("c0", "company").unwrap();
        for (i, &b) in buses.iter().enumerate() {
            g.add_edge(&format!("own{i}"), comp, b, "owns").unwrap();
        }
    }
    let mut addresses = Vec::with_capacity(params.addresses);
    for i in 0..params.addresses {
        let a = g.add_node(&format!("a{i}"), "address").unwrap();
        g.set_node_prop(a, "zip", &format!("{}", 8_000_000 + i));
        addresses.push(a);
    }

    let mut eid = 0usize;
    for (i, &p) in people.iter().enumerate() {
        if !buses.is_empty() {
            for _ in 0..params.rides_per_person {
                let b = buses[rng.gen_range(0..buses.len())];
                let e = g.add_edge(&format!("r{eid}"), p, b, "rides").unwrap();
                g.set_edge_prop(e, "date", dates.choose(&mut rng).unwrap());
                eid += 1;
            }
        }
        for _ in 0..params.contacts_per_person {
            if params.people < 2 {
                break;
            }
            let mut q = i;
            while q == i {
                q = rng.gen_range(0..params.people);
            }
            let e = g
                .add_edge(&format!("k{eid}"), p, people[q], "contact")
                .unwrap();
            g.set_edge_prop(e, "date", dates.choose(&mut rng).unwrap());
            eid += 1;
        }
        if !addresses.is_empty() {
            let a = addresses[rng.gen_range(0..addresses.len())];
            g.add_edge(&format!("l{eid}"), p, a, "lives").unwrap();
            eid += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm_labeled(20, 40, &["x", "y"], &["p", "q"], 7);
        let b = gnm_labeled(20, 40, &["x", "y"], &["p", "q"], 7);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), 40);
        for e in a.base().edges() {
            assert_eq!(a.base().endpoints(e), b.base().endpoints(e));
            assert_eq!(a.label_name(a.edge_label(e)), b.label_name(b.edge_label(e)));
        }
        let c = gnm_labeled(20, 40, &["x", "y"], &["p", "q"], 8);
        let same = a
            .base()
            .edges()
            .all(|e| a.base().endpoints(e) == c.base().endpoints(e));
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn ba_degrees_are_heavy_tailed() {
        let g = barabasi_albert(200, 2, "v", "link", 1);
        assert_eq!(g.node_count(), 200);
        let max_deg = g
            .base()
            .nodes()
            .map(|n| g.base().in_degree(n) + g.base().out_degree(n))
            .max()
            .unwrap();
        // The early core should accumulate far more than m_per*2 links.
        assert!(max_deg > 20, "max degree {max_deg} too small for BA");
    }

    #[test]
    fn structured_families_have_right_shape() {
        let p = path_graph(5, "n", "next");
        assert_eq!(p.edge_count(), 4);
        let c = cycle_graph(5, "n", "next");
        assert_eq!(c.edge_count(), 5);
        let g = grid_graph(3, 4, "cell");
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 2 * 3 * 4 - 3 - 4); // 2wh - w - h
        let s = star_graph(6, "n", "spoke");
        assert_eq!(s.base().out_degree(s.node_named("v0").unwrap()), 5);
        let k = complete_graph(4, "n", "e");
        assert_eq!(k.edge_count(), 12);
    }

    #[test]
    fn cycle_of_one_is_a_self_loop() {
        let c = cycle_graph(1, "n", "next");
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.edge_count(), 1);
        let v = c.node_named("v0").unwrap();
        assert_eq!(c.base().endpoints(crate::multigraph::EdgeId(0)), (v, v));
    }

    #[test]
    fn contact_network_has_all_ingredients() {
        let g = contact_network(&ContactParams::default());
        let lg = g.labeled();
        for label in ["person", "bus", "address", "company"] {
            let s = lg.sym(label).unwrap();
            assert!(!lg.nodes_with_label(s).is_empty(), "missing {label}");
        }
        for label in ["rides", "contact", "lives", "owns"] {
            let s = lg.sym(label).unwrap();
            assert!(!lg.edges_with_label(s).is_empty(), "missing {label}");
        }
        // Every rides edge is dated.
        let rides = lg.sym("rides").unwrap();
        for e in lg.edges_with_label(rides) {
            assert!(g.edge_prop_str(e, "date").is_some());
        }
    }

    #[test]
    fn contact_network_infection_rate_roughly_respected() {
        let params = ContactParams {
            people: 500,
            infected_fraction: 0.2,
            ..ContactParams::default()
        };
        let g = contact_network(&params);
        let infected = g
            .labeled()
            .nodes_with_label(g.labeled().sym("infected").unwrap())
            .len();
        let frac = infected as f64 / 500.0;
        assert!((0.1..0.3).contains(&frac), "fraction {frac} out of range");
    }
}
