//! Schema summaries harvested from a concrete graph instance.
//!
//! The static analyzer (`kgq-core::analyze`) decides whether a boolean,
//! property, or feature test can *possibly* hold on a given graph. To do so
//! without re-walking the CSR per query it consults a [`SchemaSummary`]: the
//! label universes, the observed property key/value pairs, the feature
//! dimensionality, and coarse degree statistics. The summary is a pure
//! over-approximation of the instance — a symbol missing from a universe
//! proves a test unsatisfiable, while presence proves nothing.

use crate::labeled::LabeledGraph;
use crate::multigraph::Multigraph;
use crate::property::PropertyGraph;
use crate::sym::Sym;
use crate::vector::VectorGraph;

/// Which graph model the summary was harvested from.
///
/// The analyzer needs this because test semantics differ per view: a
/// property test is constant-false on a plain labeled graph, a feature test
/// is constant-false outside the vector model, and on vector graphs a bare
/// label test is sugar for `Feature(1, ·)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphModel {
    /// Labels only (paper Figure 2(a)).
    Labeled,
    /// Labels plus key/value properties (paper Figure 2(b)).
    Property,
    /// Fixed-width feature vectors (paper Figure 2(c)).
    Vector,
}

/// A cheap, query-independent summary of one graph instance.
///
/// All symbol vectors are sorted and deduplicated, so membership checks can
/// use binary search. Degree statistics cover the underlying multigraph
/// (labels are irrelevant to frontier cost).
#[derive(Clone, Debug)]
pub struct SchemaSummary {
    /// The graph model the summary describes.
    pub model: GraphModel,
    /// Distinct node labels (for [`GraphModel::Vector`]: distinct values of
    /// feature 1 on nodes, since `Label(l)` desugars to `Feature(1, l)`).
    pub node_labels: Vec<Sym>,
    /// Distinct edge labels (vector model: feature-1 values on edges).
    pub edge_labels: Vec<Sym>,
    /// Distinct property keys observed on any node.
    pub node_prop_keys: Vec<Sym>,
    /// Distinct property keys observed on any edge.
    pub edge_prop_keys: Vec<Sym>,
    /// Distinct `(key, value)` property pairs observed on nodes.
    pub node_prop_pairs: Vec<(Sym, Sym)>,
    /// Distinct `(key, value)` property pairs observed on edges.
    pub edge_prop_pairs: Vec<(Sym, Sym)>,
    /// Distinct `(index, value)` feature pairs on nodes (1-based index).
    pub node_features: Vec<(usize, Sym)>,
    /// Distinct `(index, value)` feature pairs on edges (1-based index).
    pub edge_features: Vec<(usize, Sym)>,
    /// Feature-vector width; `0` outside the vector model.
    pub feature_dim: usize,
    /// Number of nodes.
    pub node_count: usize,
    /// Number of edges.
    pub edge_count: usize,
    /// Largest out-degree of any node.
    pub max_out_degree: usize,
    /// Largest in-degree of any node.
    pub max_in_degree: usize,
}

fn sort_dedup<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort_unstable();
    v.dedup();
    v
}

fn degree_stats(g: &Multigraph) -> (usize, usize) {
    let mut max_out = 0;
    let mut max_in = 0;
    for n in g.nodes() {
        max_out = max_out.max(g.out_degree(n));
        max_in = max_in.max(g.in_degree(n));
    }
    (max_out, max_in)
}

impl SchemaSummary {
    /// Summarize a plain labeled graph.
    pub fn from_labeled(g: &LabeledGraph) -> SchemaSummary {
        let (max_out, max_in) = degree_stats(g.base());
        SchemaSummary {
            model: GraphModel::Labeled,
            node_labels: g.node_label_alphabet(),
            edge_labels: g.edge_label_alphabet(),
            node_prop_keys: Vec::new(),
            edge_prop_keys: Vec::new(),
            node_prop_pairs: Vec::new(),
            edge_prop_pairs: Vec::new(),
            node_features: Vec::new(),
            edge_features: Vec::new(),
            feature_dim: 0,
            node_count: g.node_count(),
            edge_count: g.edge_count(),
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }

    /// Summarize a property graph: labeled summary plus the observed
    /// property key and `(key, value)` universes, split by node/edge.
    pub fn from_property(g: &PropertyGraph) -> SchemaSummary {
        let mut s = SchemaSummary::from_labeled(g.labeled());
        s.model = GraphModel::Property;
        let base = g.labeled().base();
        let mut node_pairs = Vec::new();
        for n in base.nodes() {
            node_pairs.extend_from_slice(g.node_props(n));
        }
        let mut edge_pairs = Vec::new();
        for e in base.edges() {
            edge_pairs.extend_from_slice(g.edge_props(e));
        }
        s.node_prop_pairs = sort_dedup(node_pairs);
        s.edge_prop_pairs = sort_dedup(edge_pairs);
        s.node_prop_keys = sort_dedup(s.node_prop_pairs.iter().map(|&(k, _)| k).collect());
        s.edge_prop_keys = sort_dedup(s.edge_prop_pairs.iter().map(|&(k, _)| k).collect());
        s
    }

    /// Summarize a vector-labeled graph: the observed `(index, value)`
    /// feature universes, with feature 1 doubling as the label universe.
    pub fn from_vector(g: &VectorGraph) -> SchemaSummary {
        let base = g.base();
        let (max_out, max_in) = degree_stats(base);
        let mut node_feats = Vec::new();
        for n in base.nodes() {
            for (i, &v) in g.node_vector(n).iter().enumerate() {
                node_feats.push((i + 1, v));
            }
        }
        let mut edge_feats = Vec::new();
        for e in base.edges() {
            for (i, &v) in g.edge_vector(e).iter().enumerate() {
                edge_feats.push((i + 1, v));
            }
        }
        let node_feats = sort_dedup(node_feats);
        let edge_feats = sort_dedup(edge_feats);
        let first = |feats: &[(usize, Sym)]| {
            feats
                .iter()
                .filter(|&&(i, _)| i == 1)
                .map(|&(_, v)| v)
                .collect::<Vec<_>>()
        };
        SchemaSummary {
            model: GraphModel::Vector,
            node_labels: first(&node_feats),
            edge_labels: first(&edge_feats),
            node_prop_keys: Vec::new(),
            edge_prop_keys: Vec::new(),
            node_prop_pairs: Vec::new(),
            edge_prop_pairs: Vec::new(),
            node_features: node_feats,
            edge_features: edge_feats,
            feature_dim: g.dim(),
            node_count: g.node_count(),
            edge_count: g.edge_count(),
            max_out_degree: max_out,
            max_in_degree: max_in,
        }
    }

    /// Does any node carry this label (vector model: feature-1 value)?
    pub fn has_node_label(&self, l: Sym) -> bool {
        self.node_labels.binary_search(&l).is_ok()
    }

    /// Does any edge carry this label (vector model: feature-1 value)?
    pub fn has_edge_label(&self, l: Sym) -> bool {
        self.edge_labels.binary_search(&l).is_ok()
    }

    /// Was the `(key, value)` property pair observed on any node?
    pub fn has_node_prop_pair(&self, k: Sym, v: Sym) -> bool {
        self.node_prop_pairs.binary_search(&(k, v)).is_ok()
    }

    /// Was the `(key, value)` property pair observed on any edge?
    pub fn has_edge_prop_pair(&self, k: Sym, v: Sym) -> bool {
        self.edge_prop_pairs.binary_search(&(k, v)).is_ok()
    }

    /// Was the property key observed on any node?
    pub fn has_node_prop_key(&self, k: Sym) -> bool {
        self.node_prop_keys.binary_search(&k).is_ok()
    }

    /// Was the property key observed on any edge?
    pub fn has_edge_prop_key(&self, k: Sym) -> bool {
        self.edge_prop_keys.binary_search(&k).is_ok()
    }

    /// Was the 1-based `(index, value)` feature pair observed on any node?
    pub fn has_node_feature(&self, i: usize, v: Sym) -> bool {
        self.node_features.binary_search(&(i, v)).is_ok()
    }

    /// Was the 1-based `(index, value)` feature pair observed on any edge?
    pub fn has_edge_feature(&self, i: usize, v: Sym) -> bool {
        self.edge_features.binary_search(&(i, v)).is_ok()
    }

    /// Mean out-degree of the underlying multigraph (0 for empty graphs).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.edge_count as f64 / self.node_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{figure2_labeled, figure2_property, figure2_vector};

    #[test]
    fn labeled_universes_and_degrees() {
        let g = figure2_labeled();
        let s = SchemaSummary::from_labeled(&g);
        assert_eq!(s.model, GraphModel::Labeled);
        let person = g.sym("person").unwrap();
        let rides = g.sym("rides").unwrap();
        assert!(s.has_node_label(person));
        assert!(s.has_edge_label(rides));
        assert!(!s.has_edge_label(person));
        assert_eq!(s.node_count, g.node_count());
        assert!(s.max_out_degree >= 1 && s.max_in_degree >= 1);
        assert!(s.avg_degree() > 0.0);
    }

    #[test]
    fn property_pairs_are_split_by_object_kind() {
        let g = figure2_property();
        let s = SchemaSummary::from_property(&g);
        assert_eq!(s.model, GraphModel::Property);
        // Figure 2(b) has edge properties (ride dates) at minimum.
        assert!(!s.node_prop_pairs.is_empty() || !s.edge_prop_pairs.is_empty());
        for &(k, v) in &s.edge_prop_pairs {
            assert!(s.has_edge_prop_key(k));
            assert!(s.has_edge_prop_pair(k, v));
        }
        let bogus = Sym(u32::MAX);
        assert!(!s.has_node_prop_key(bogus));
    }

    #[test]
    fn vector_feature_one_doubles_as_label_universe() {
        let g = figure2_vector();
        let s = SchemaSummary::from_vector(&g);
        assert_eq!(s.model, GraphModel::Vector);
        assert_eq!(s.feature_dim, g.dim());
        for &(i, v) in &s.node_features {
            assert!(i >= 1 && i <= s.feature_dim);
            assert!(s.has_node_feature(i, v));
            if i == 1 {
                assert!(s.has_node_label(v));
            }
        }
    }
}
