//! The base multigraph `(N, E, ρ)`.
//!
//! Per the paper (Section 3), a multigraph is a tuple `(N, E, ρ)` where
//! `N ⊆ Const` is a set of nodes, `E ⊆ Const` a set of edges, and
//! `ρ : E → N × N` gives the endpoints of each edge. Multiple edges may
//! connect the same pair of nodes, and self-loops are allowed.
//!
//! Internally nodes and edges are dense `u32` ids ([`NodeId`], [`EdgeId`]);
//! the **Const** identity of each node/edge is kept as a [`Sym`] so the
//! formal model (identifiers drawn from the constant universe) is preserved.

use crate::error::GraphError;
use crate::sym::Sym;
use std::collections::HashMap;

/// Dense index of a node (`0..graph.node_count()`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// Dense index of an edge (`0..graph.edge_count()`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Index as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Index as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed multigraph `(N, E, ρ)` with identifiers from **Const**.
///
/// ```
/// use kgq_graph::{Multigraph, Interner};
/// let mut consts = Interner::new();
/// let mut g = Multigraph::new();
/// let n1 = g.add_node(consts.intern("n1")).unwrap();
/// let n2 = g.add_node(consts.intern("n2")).unwrap();
/// let e1 = g.add_edge(consts.intern("e1"), n1, n2).unwrap();
/// assert_eq!(g.endpoints(e1), (n1, n2));
/// assert_eq!(g.out_edges(n1), &[e1]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Multigraph {
    node_ids: Vec<Sym>,
    edge_ids: Vec<Sym>,
    /// ρ(e) = (source, target)
    endpoints: Vec<(NodeId, NodeId)>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
    by_node_id: HashMap<Sym, NodeId>,
    by_edge_id: HashMap<Sym, EdgeId>,
    /// Bumped on every successful mutation; see [`Multigraph::generation`].
    generation: u64,
}

impl Multigraph {
    /// Creates an empty multigraph.
    pub fn new() -> Self {
        Multigraph::default()
    }

    /// Creates an empty multigraph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Multigraph {
            node_ids: Vec::with_capacity(nodes),
            edge_ids: Vec::with_capacity(edges),
            endpoints: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
            by_node_id: HashMap::with_capacity(nodes),
            by_edge_id: HashMap::with_capacity(edges),
            generation: 0,
        }
    }

    /// A **generation stamp**: strictly increases on every successful
    /// mutation of this graph (node or edge insertion). Caches keyed by
    /// the stamp (e.g. `kgq-core`'s compiled-query cache) are invalidated
    /// by any mutation. Stamps are comparable only within one graph's
    /// history, not across graphs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Adds a node whose identifier in **Const** is `id`.
    ///
    /// Returns [`GraphError::DuplicateId`] if a node with the same constant
    /// identifier already exists.
    pub fn add_node(&mut self, id: Sym) -> Result<NodeId, GraphError> {
        if self.by_node_id.contains_key(&id) {
            return Err(GraphError::DuplicateId(format!("node #{}", id.0)));
        }
        let n = NodeId(self.node_ids.len() as u32);
        self.node_ids.push(id);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.by_node_id.insert(id, n);
        self.generation += 1;
        Ok(n)
    }

    /// Adds an edge `ρ(id) = (src, dst)`.
    pub fn add_edge(&mut self, id: Sym, src: NodeId, dst: NodeId) -> Result<EdgeId, GraphError> {
        if src.index() >= self.node_ids.len() {
            return Err(GraphError::UnknownNode(format!("{src:?}")));
        }
        if dst.index() >= self.node_ids.len() {
            return Err(GraphError::UnknownNode(format!("{dst:?}")));
        }
        if self.by_edge_id.contains_key(&id) {
            return Err(GraphError::DuplicateId(format!("edge #{}", id.0)));
        }
        let e = EdgeId(self.edge_ids.len() as u32);
        self.edge_ids.push(id);
        self.endpoints.push((src, dst));
        self.out[src.index()].push(e);
        self.inc[dst.index()].push(e);
        self.by_edge_id.insert(id, e);
        self.generation += 1;
        Ok(e)
    }

    /// Number of nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_ids.len()
    }

    /// `ρ(e)`: the `(source, target)` pair of `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Source node of `e`.
    #[inline]
    pub fn source(&self, e: EdgeId) -> NodeId {
        self.endpoints[e.index()].0
    }

    /// Target node of `e`.
    #[inline]
    pub fn target(&self, e: EdgeId) -> NodeId {
        self.endpoints[e.index()].1
    }

    /// Outgoing edges of `n`, in insertion order.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n.index()]
    }

    /// Incoming edges of `n`, in insertion order.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.inc[n.index()]
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inc[n.index()].len()
    }

    /// The **Const** identifier of node `n`.
    pub fn node_id_sym(&self, n: NodeId) -> Sym {
        self.node_ids[n.index()]
    }

    /// The **Const** identifier of edge `e`.
    pub fn edge_id_sym(&self, e: EdgeId) -> Sym {
        self.edge_ids[e.index()]
    }

    /// Looks up the node whose **Const** identifier is `id`.
    pub fn node_by_sym(&self, id: Sym) -> Option<NodeId> {
        self.by_node_id.get(&id).copied()
    }

    /// Looks up the edge whose **Const** identifier is `id`.
    pub fn edge_by_sym(&self, id: Sym) -> Option<EdgeId> {
        self.by_edge_id.get(&id).copied()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_ids.len() as u32).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_ids.len() as u32).map(EdgeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Interner;

    fn small() -> (Multigraph, Vec<NodeId>, Vec<EdgeId>) {
        let mut it = Interner::new();
        let mut g = Multigraph::new();
        let ns: Vec<_> = (0..4)
            .map(|i| g.add_node(it.intern(&format!("n{i}"))).unwrap())
            .collect();
        let es = vec![
            g.add_edge(it.intern("e0"), ns[0], ns[1]).unwrap(),
            g.add_edge(it.intern("e1"), ns[0], ns[1]).unwrap(), // parallel
            g.add_edge(it.intern("e2"), ns[1], ns[2]).unwrap(),
            g.add_edge(it.intern("e3"), ns[2], ns[2]).unwrap(), // self loop
        ];
        (g, ns, es)
    }

    #[test]
    fn counts_and_endpoints() {
        let (g, ns, es) = small();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.endpoints(es[0]), (ns[0], ns[1]));
        assert_eq!(g.source(es[2]), ns[1]);
        assert_eq!(g.target(es[2]), ns[2]);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let (g, ns, es) = small();
        assert_eq!(g.out_edges(ns[0]), &[es[0], es[1]]);
        assert_ne!(es[0], es[1]);
        assert_eq!(g.endpoints(es[0]), g.endpoints(es[1]));
    }

    #[test]
    fn self_loop_counts_in_and_out() {
        let (g, ns, es) = small();
        assert_eq!(g.out_degree(ns[2]), 1);
        assert_eq!(g.in_degree(ns[2]), 2); // e2 and the loop e3
        assert_eq!(g.in_edges(ns[2]), &[es[2], es[3]]);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut it = Interner::new();
        let mut g = Multigraph::new();
        let id = it.intern("x");
        g.add_node(id).unwrap();
        assert!(matches!(g.add_node(id), Err(GraphError::DuplicateId(_))));
    }

    #[test]
    fn edge_to_missing_node_rejected() {
        let mut it = Interner::new();
        let mut g = Multigraph::new();
        let n = g.add_node(it.intern("a")).unwrap();
        let bogus = NodeId(7);
        assert!(matches!(
            g.add_edge(it.intern("e"), n, bogus),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn sym_lookup_round_trips() {
        let mut it = Interner::new();
        let mut g = Multigraph::new();
        let id = it.intern("n1");
        let n = g.add_node(id).unwrap();
        assert_eq!(g.node_by_sym(id), Some(n));
        assert_eq!(g.node_id_sym(n), id);
        assert_eq!(g.node_by_sym(it.intern("missing")), None);
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _, _) = small();
        assert_eq!(g.nodes().count(), 4);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn generation_increases_per_mutation() {
        let mut it = Interner::new();
        let mut g = Multigraph::new();
        assert_eq!(g.generation(), 0);
        let a = g.add_node(it.intern("a")).unwrap();
        let b = g.add_node(it.intern("b")).unwrap();
        assert_eq!(g.generation(), 2);
        g.add_edge(it.intern("e"), a, b).unwrap();
        assert_eq!(g.generation(), 3);
        // Failed mutations leave the stamp unchanged.
        assert!(g.add_node(it.intern("a")).is_err());
        assert_eq!(g.generation(), 3);
    }
}
