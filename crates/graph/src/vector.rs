//! Vector-labeled graphs — Figure 2(c) of the paper.
//!
//! A vector-labeled graph of dimension `d ≥ 1` is `(N, E, ρ, λ)` where
//! `λ : (N ∪ E) → Const^d` assigns a *feature vector* of `d` constants to
//! every node and edge. The reserved constant `⊥` ([`Sym::BOTTOM`]) marks
//! rows without a value, exactly as in the paper's Figure 2(c). This model
//! unifies labels and properties and is the input format for
//! message-passing algorithms (Weisfeiler–Lehman) and graph neural
//! networks (Section 4.3).

use crate::error::GraphError;
use crate::multigraph::{EdgeId, Multigraph, NodeId};
use crate::sym::{Interner, Sym};

/// A vector-labeled graph of fixed dimension `d`.
///
/// Feature vectors are stored flattened (`node_feats[n*d .. (n+1)*d]`) for
/// locality. Optional *feature names* document what each row means (e.g.
/// `f1 = kind, f2 = name, …`); they are metadata only and play no role in
/// semantics.
///
/// ```
/// use kgq_graph::{VectorGraph, Sym};
/// let mut g = VectorGraph::new(2);
/// let bottom = "⊥";
/// let n = g.add_node("n1", &["person", "Julia"]).unwrap();
/// assert_eq!(g.feature_str(n, 0), "person");
/// let m = g.add_node("n2", &["bus", bottom]).unwrap();
/// assert_eq!(g.node_feature(m, 1), Sym::BOTTOM);
/// ```
#[derive(Clone, Debug)]
pub struct VectorGraph {
    base: Multigraph,
    dim: usize,
    node_feats: Vec<Sym>,
    edge_feats: Vec<Sym>,
    feature_names: Vec<String>,
    consts: Interner,
    /// Feature overwrites not visible in the base multigraph; see
    /// [`VectorGraph::generation`].
    feature_writes: u64,
}

impl VectorGraph {
    /// Creates an empty vector-labeled graph of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`; the paper requires `d ≥ 1`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "vector-labeled graphs require dimension d >= 1");
        VectorGraph {
            base: Multigraph::new(),
            dim,
            node_feats: Vec::new(),
            edge_feats: Vec::new(),
            feature_names: (1..=dim).map(|i| format!("f{i}")).collect(),
            consts: Interner::new(),
            feature_writes: 0,
        }
    }

    /// A **generation stamp**: strictly increases on every mutation that
    /// can change query answers (insertions plus feature overwrites).
    /// Comparable only within this graph's history.
    pub fn generation(&self) -> u64 {
        self.base.generation() + self.feature_writes
    }

    /// Names the feature rows (`names.len()` must equal `d`).
    pub fn set_feature_names(&mut self, names: &[&str]) -> Result<(), GraphError> {
        if names.len() != self.dim {
            return Err(GraphError::DimensionMismatch {
                expected: self.dim,
                got: names.len(),
            });
        }
        self.feature_names = names.iter().map(|s| (*s).to_owned()).collect();
        Ok(())
    }

    /// The dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature row names (`f1..fd` by default).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    fn intern_vec(&mut self, feats: &[&str]) -> Result<Vec<Sym>, GraphError> {
        if feats.len() != self.dim {
            return Err(GraphError::DimensionMismatch {
                expected: self.dim,
                got: feats.len(),
            });
        }
        Ok(feats.iter().map(|s| self.consts.intern(s)).collect())
    }

    /// Adds a node with identifier `id` and feature vector `feats`.
    pub fn add_node(&mut self, id: &str, feats: &[&str]) -> Result<NodeId, GraphError> {
        let v = self.intern_vec(feats)?;
        let id = self.consts.intern(id);
        let n = self.base.add_node(id)?;
        self.node_feats.extend_from_slice(&v);
        Ok(n)
    }

    /// Adds an edge with identifier `id` and feature vector `feats`.
    pub fn add_edge(
        &mut self,
        id: &str,
        src: NodeId,
        dst: NodeId,
        feats: &[&str],
    ) -> Result<EdgeId, GraphError> {
        let v = self.intern_vec(feats)?;
        let id = self.consts.intern(id);
        let e = self.base.add_edge(id, src, dst)?;
        self.edge_feats.extend_from_slice(&v);
        Ok(e)
    }

    /// `λ(n)_i` — the `i`-th feature (0-based) of node `n`.
    #[inline]
    pub fn node_feature(&self, n: NodeId, i: usize) -> Sym {
        debug_assert!(i < self.dim);
        self.node_feats[n.index() * self.dim + i]
    }

    /// `λ(e)_i` — the `i`-th feature (0-based) of edge `e`.
    #[inline]
    pub fn edge_feature(&self, e: EdgeId, i: usize) -> Sym {
        debug_assert!(i < self.dim);
        self.edge_feats[e.index() * self.dim + i]
    }

    /// The full feature vector `λ(n)`.
    pub fn node_vector(&self, n: NodeId) -> &[Sym] {
        &self.node_feats[n.index() * self.dim..(n.index() + 1) * self.dim]
    }

    /// The full feature vector `λ(e)`.
    pub fn edge_vector(&self, e: EdgeId) -> &[Sym] {
        &self.edge_feats[e.index() * self.dim..(e.index() + 1) * self.dim]
    }

    /// String form of `λ(n)_i`.
    pub fn feature_str(&self, n: NodeId, i: usize) -> &str {
        self.consts.resolve(self.node_feature(n, i))
    }

    /// Overwrites a single node feature (message-passing updates).
    pub fn set_node_feature(&mut self, n: NodeId, i: usize, value: &str) -> Result<(), GraphError> {
        if i >= self.dim {
            return Err(GraphError::FeatureOutOfRange {
                index: i,
                dim: self.dim,
            });
        }
        let v = self.consts.intern(value);
        self.node_feats[n.index() * self.dim + i] = v;
        self.feature_writes += 1;
        Ok(())
    }

    /// The underlying multigraph `(N, E, ρ)`.
    #[inline]
    pub fn base(&self) -> &Multigraph {
        &self.base
    }

    /// The constant universe of this graph.
    pub fn consts(&self) -> &Interner {
        &self.consts
    }

    /// Mutable constant universe (for interning query constants).
    pub fn consts_mut(&mut self) -> &mut Interner {
        &mut self.consts
    }

    /// Looks up a node by its **Const** identifier string.
    pub fn node_named(&self, id: &str) -> Option<NodeId> {
        self.consts.get(id).and_then(|s| self.base.node_by_sym(s))
    }

    /// Human-readable name of node `n`.
    pub fn node_name(&self, n: NodeId) -> &str {
        self.consts.resolve(self.base.node_id_sym(n))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.base.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.base.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorGraph {
        let mut g = VectorGraph::new(3);
        g.set_feature_names(&["kind", "name", "date"]).unwrap();
        let a = g.add_node("n1", &["person", "Julia", "⊥"]).unwrap();
        let b = g.add_node("n2", &["infected", "Pedro", "⊥"]).unwrap();
        g.add_edge("e1", a, b, &["contact", "⊥", "3/4/21"]).unwrap();
        g
    }

    #[test]
    fn dimension_enforced() {
        let mut g = VectorGraph::new(2);
        assert!(matches!(
            g.add_node("x", &["only-one"]),
            Err(GraphError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_dimension_rejected() {
        let _ = VectorGraph::new(0);
    }

    #[test]
    fn bottom_marks_missing_values() {
        let g = sample();
        let a = g.node_named("n1").unwrap();
        assert_eq!(g.node_feature(a, 2), Sym::BOTTOM);
        assert_ne!(g.node_feature(a, 0), Sym::BOTTOM);
    }

    #[test]
    fn edge_features_accessible() {
        let g = sample();
        let e = EdgeId(0);
        assert_eq!(g.consts().resolve(g.edge_feature(e, 0)), "contact");
        assert_eq!(g.consts().resolve(g.edge_feature(e, 2)), "3/4/21");
        assert_eq!(g.edge_vector(e).len(), 3);
    }

    #[test]
    fn feature_names_default_and_custom() {
        let g = VectorGraph::new(2);
        assert_eq!(g.feature_names(), &["f1".to_string(), "f2".to_string()]);
        let g = sample();
        assert_eq!(g.feature_names()[1], "name");
        let mut g2 = VectorGraph::new(2);
        assert!(g2.set_feature_names(&["a"]).is_err());
    }

    #[test]
    fn set_feature_updates_in_place() {
        let mut g = sample();
        let a = g.node_named("n1").unwrap();
        g.set_node_feature(a, 0, "infected").unwrap();
        assert_eq!(g.feature_str(a, 0), "infected");
        assert!(g.set_node_feature(a, 9, "x").is_err());
    }

    #[test]
    fn vectors_are_contiguous_slices() {
        let g = sample();
        let a = g.node_named("n1").unwrap();
        let v = g.node_vector(a);
        assert_eq!(v.len(), 3);
        assert_eq!(g.consts().resolve(v[1]), "Julia");
    }
}
