//! Property-based tests for the data-model layer: conversions and the
//! text format are lossless on arbitrary graphs.

use kgq_graph::convert::{property_to_vector, vector_to_property};
use kgq_graph::io::{read_property, write_property};
use kgq_graph::{NodeId, PropertyGraph};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["person", "bus", "address", "company"];
const EDGE_LABELS: [&str; 3] = ["rides", "contact", "lives"];
const PROPS: [&str; 3] = ["name", "age", "zip"];
const VALUES: [&str; 4] = ["x1", "x2", "x3", "x4"];

#[derive(Clone, Debug)]
struct Spec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
    node_props: Vec<(usize, usize, usize)>,
    edge_props: Vec<(usize, usize, usize)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..10).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..15),
            proptest::collection::vec((0..n, 0..PROPS.len(), 0..VALUES.len()), 0..12),
        )
            .prop_flat_map(move |(node_labels, edges, node_props)| {
                let m = edges.len();
                proptest::collection::vec((0..m.max(1), 0..PROPS.len(), 0..VALUES.len()), 0..8)
                    .prop_map(move |edge_props| Spec {
                        node_labels: node_labels.clone(),
                        edges: edges.clone(),
                        node_props: node_props.clone(),
                        edge_props: if m == 0 { Vec::new() } else { edge_props },
                    })
            })
    })
}

fn build(spec: &Spec) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = spec
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), LABELS[l]).unwrap())
        .collect();
    let edges: Vec<_> = spec
        .edges
        .iter()
        .enumerate()
        .map(|(i, &(s, d, l))| {
            g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
                .unwrap()
        })
        .collect();
    for &(n, p, v) in &spec.node_props {
        g.set_node_prop(nodes[n], PROPS[p], VALUES[v]);
    }
    for &(e, p, v) in &spec.edge_props {
        g.set_edge_prop(edges[e], PROPS[p], VALUES[v]);
    }
    g
}

fn props_equal(a: &PropertyGraph, b: &PropertyGraph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for n in a.labeled().base().nodes() {
        assert_eq!(
            a.labeled().label_name(a.labeled().node_label(n)),
            b.labeled().label_name(b.labeled().node_label(n))
        );
        for p in PROPS {
            assert_eq!(
                a.node_prop_str(n, p),
                b.node_prop_str(n, p),
                "node prop {p}"
            );
        }
    }
    for e in a.labeled().base().edges() {
        assert_eq!(
            a.labeled().base().endpoints(e),
            b.labeled().base().endpoints(e)
        );
        assert_eq!(
            a.labeled().label_name(a.labeled().edge_label(e)),
            b.labeled().label_name(b.labeled().edge_label(e))
        );
        for p in PROPS {
            assert_eq!(
                a.edge_prop_str(e, p),
                b.edge_prop_str(e, p),
                "edge prop {p}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vectorization_round_trips(spec in spec_strategy()) {
        let g = build(&spec);
        let vg = property_to_vector(&g).unwrap();
        let back = vector_to_property(&vg).unwrap();
        props_equal(&g, &back);
    }

    #[test]
    fn text_format_round_trips(spec in spec_strategy()) {
        let g = build(&spec);
        let text = write_property(&g);
        let back = read_property(&text).unwrap();
        props_equal(&g, &back);
    }

    #[test]
    fn vector_dim_is_one_plus_used_props(spec in spec_strategy()) {
        let g = build(&spec);
        let vg = property_to_vector(&g).unwrap();
        let used = g.property_alphabet().len();
        prop_assert_eq!(vg.dim(), 1 + used);
    }
}
