//! Property-based parity tests for the bit-packed adjacency
//! (`kgq_graph::packed`): on arbitrary random multigraphs the packed
//! decode must agree with the raw [`LabelIndex`] runs — neighbors,
//! edge ids, degrees and point probes — and the blob must survive a
//! serialization round trip byte-for-byte.

use kgq_graph::generate::ba_edge_stream;
use kgq_graph::packed::{PackOptions, Quad};
use kgq_graph::{LabelIndex, LabeledGraph, NodeId, PackedLabelIndex};
use proptest::prelude::*;

const EDGE_LABELS: [&str; 3] = ["a", "b", "c"];

#[derive(Clone, Debug)]
struct Spec {
    n: usize,
    edges: Vec<(usize, usize, usize)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (1usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..120)
            .prop_map(move |edges| Spec { n, edges })
    })
}

fn build(spec: &Spec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..spec.n)
        .map(|i| g.add_node(&format!("n{i}"), "v").unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

/// Sorted `(neighbor, edge id)` multiset of a raw run.
fn raw_pairs(run: &[(kgq_graph::Sym, kgq_graph::EdgeId, NodeId)]) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = run.iter().map(|&(_, e, d)| (d.0, e.0)).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed adjacency (with edge ids and the inverse direction)
    /// equals the raw LabelIndex on every `(node, label)` run.
    #[test]
    fn packed_decode_matches_raw_label_index(spec in spec_strategy()) {
        let g = build(&spec);
        let idx = LabelIndex::build(&g);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let view = packed.view();
        prop_assert_eq!(view.node_count(), spec.n);
        prop_assert_eq!(view.edge_count(), spec.edges.len() as u64);
        let n_labels = view.label_count() as u32;
        let mut neigh = Vec::new();
        let mut pairs = Vec::new();
        for v in 0..spec.n as u32 {
            for l in 0..n_labels {
                // Out direction: neighbors, (neighbor, eid) pairs,
                // degree, and point probes.
                let raw = raw_pairs(idx.out_with_dense(NodeId(v), l));
                pairs.clear();
                view.decode_out_pairs_into(v, l, &mut pairs);
                pairs.sort_unstable();
                prop_assert_eq!(&pairs, &raw, "out pairs at v={} l={}", v, l);
                neigh.clear();
                view.decode_out_into(v, l, &mut neigh);
                let mut expect: Vec<u32> = raw.iter().map(|&(d, _)| d).collect();
                expect.sort_unstable();
                prop_assert_eq!(&neigh, &expect, "out neighbors at v={} l={}", v, l);
                prop_assert_eq!(view.out_degree(v, l), expect.len());
                if let Some(run) = view.out_run(v, l) {
                    for &x in expect.iter() {
                        prop_assert!(run.contains(x));
                    }
                    for probe in [0u32, spec.n as u32 / 2, spec.n as u32 - 1] {
                        prop_assert_eq!(
                            run.contains(probe),
                            expect.binary_search(&probe).is_ok(),
                            "contains({}) at v={} l={}", probe, v, l
                        );
                    }
                } else {
                    prop_assert!(expect.is_empty());
                }
                // In direction.
                let raw_in = raw_pairs(idx.in_with_dense(NodeId(v), l));
                pairs.clear();
                view.decode_in_pairs_into(v, l, &mut pairs);
                pairs.sort_unstable();
                prop_assert_eq!(&pairs, &raw_in, "in pairs at v={} l={}", v, l);
            }
        }
    }

    /// The blob is self-describing: `from_bytes(as_bytes)` re-validates
    /// and decodes identically, and label names survive.
    #[test]
    fn packed_blob_round_trips(spec in spec_strategy()) {
        let g = build(&spec);
        let packed = PackedLabelIndex::from_labeled(&g).unwrap();
        let bytes = packed.as_bytes().to_vec();
        let re = PackedLabelIndex::from_bytes(bytes.clone()).unwrap();
        prop_assert_eq!(re.as_bytes(), &bytes[..]);
        let names = packed.view().label_names();
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(re.view().label_by_name(name), Some(i as u32));
        }
    }

    /// The minimal scale build (no edge ids) still decodes the same
    /// neighbor sets, only dropping the id stream.
    #[test]
    fn no_edge_id_build_keeps_neighbors(seed in 0u64..500, n in 20u32..200) {
        let stream = ba_edge_stream(n, 3, 2, seed);
        let quads: Vec<Quad> = stream
            .iter()
            .enumerate()
            .map(|(i, &(s, l, d))| (s, l, d, i as u32))
            .collect();
        let labels = vec!["l0".to_string(), "l1".to_string()];
        let full = PackedLabelIndex::from_quads(
            n, &labels, quads.clone(), PackOptions::default()).unwrap();
        let lean = PackedLabelIndex::from_quads(
            n, &labels, quads, PackOptions { edge_ids: false, inverse: true }).unwrap();
        prop_assert!(lean.as_bytes().len() < full.as_bytes().len());
        let (fv, lv) = (full.view(), lean.view());
        prop_assert!(!lv.has_edge_ids());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for v in 0..n {
            for l in 0..2 {
                a.clear();
                fv.decode_out_into(v, l, &mut a);
                b.clear();
                lv.decode_out_into(v, l, &mut b);
                prop_assert_eq!(&a, &b, "out at v={} l={}", v, l);
                a.clear();
                fv.decode_in_into(v, l, &mut a);
                b.clear();
                lv.decode_in_into(v, l, &mut b);
                prop_assert_eq!(&a, &b, "in at v={} l={}", v, l);
            }
        }
    }
}
