//! Property-based equivalence: the relational-algebra RPQ baseline and
//! the product-automaton engine compute the same pair semantics on
//! arbitrary graphs and expressions.

use kgq_core::eval::Evaluator;
use kgq_core::expr::{PathExpr, Test};
use kgq_core::model::LabeledView;
use kgq_graph::{LabeledGraph, NodeId};
use kgq_relbase::rpq_join_pairs;
use proptest::prelude::*;

const NODE_LABELS: [&str; 2] = ["a", "b"];
const EDGE_LABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct GraphSpec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..8).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..NODE_LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 1..14),
        )
            .prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build(spec: &GraphSpec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    // Intern every label up front so strategies can reference them even
    // when a random graph does not use one.
    for l in NODE_LABELS.iter().chain(EDGE_LABELS.iter()) {
        g.intern(l);
    }
    let nodes: Vec<NodeId> = spec
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), NODE_LABELS[l]).unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

fn expr_strategy(g: &LabeledGraph) -> impl Strategy<Value = PathExpr> {
    let nl: Vec<_> = NODE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let el: Vec<_> = EDGE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
    let leaf = prop_oneof![
        (0..nl.len()).prop_map({
            let nl = nl.clone();
            move |i| PathExpr::NodeTest(Test::Label(nl[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Forward(Test::Label(el[i]))
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| PathExpr::Backward(Test::Label(el[i]))
        }),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.concat(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.alt(b)),
            inner.prop_map(|a| a.star()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn joins_equal_product_pairs(
        (spec, expr) in graph_strategy().prop_flat_map(|spec| {
            let g = build(&spec);
            let e = expr_strategy(&g);
            (Just(spec), e)
        })
    ) {
        let g = build(&spec);
        let view = LabeledView::new(&g);
        let from_joins = rpq_join_pairs(&view, &expr).unwrap();
        let mut from_product = Evaluator::new(&view, &expr).pairs();
        from_product.sort_unstable();
        prop_assert_eq!(from_joins, from_product);
    }
}
