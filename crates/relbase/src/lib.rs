//! # kgq-relbase — graphs in a relational database
//!
//! Section 2.2 of the reproduced paper: "Classical relational databases
//! are flexible enough to represent a graph, e.g. by a two attribute
//! relation storing its edges. In this representation, nodes are entries
//! and paths are constructed by successive joins. Why then do we need
//! graph databases? … joins are expensive and thus, reasoning about paths
//! becomes very costly."
//!
//! This crate makes that baseline concrete:
//!
//! * [`relation`] — a tiny set-semantics relational engine (selection,
//!   projection, hash join, union, difference);
//! * [`rpq`] — regular path queries compiled to relational algebra:
//!   edge labels become binary relations, concatenation a join +
//!   projection, alternation a union, Kleene star a semi-naive
//!   transitive closure. The result is the `(start, end)` pair semantics,
//!   directly comparable against the native product-automaton evaluation
//!   in `kgq-core` (experiment E9).

//! ```
//! use kgq_relbase::Relation;
//!
//! let edges = Relation::from_rows(2, vec![vec![1, 2], vec![2, 3]]);
//! let two_hop = edges.join(&edges, &[(1, 0)]).project(&[0, 2]);
//! assert!(two_hop.contains(&[1, 3]));
//! ```

pub mod relation;
pub mod rpq;

pub use relation::Relation;
pub use rpq::{rpq_join_pairs, UnsupportedExpr};
