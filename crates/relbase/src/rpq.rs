//! Regular path queries by relational algebra over the edge table.
//!
//! The §2.2 baseline: store the graph as relations (one binary relation
//! per edge label), and evaluate a path expression bottom-up into a
//! binary `(start, end)` relation:
//!
//! * `?test`     → σ over the node table, as an identity relation;
//! * `test`      → the union of matching edge relations;
//! * `test⁻`     → the swapped projection;
//! * `r / r`     → join on the middle attribute + projection;
//! * `r + r`     → union;
//! * `r*`        → semi-naive transitive closure ∪ identity.
//!
//! The pair semantics matches `kgq_core::Evaluator::pairs`, which the
//! tests verify; the benches measure the cost gap the paper alludes to.

use crate::relation::Relation;
use kgq_core::expr::{PathExpr, Test};
use kgq_core::model::PathGraph;
use kgq_graph::{EdgeId, NodeId};
use std::fmt;

/// Expressions the relational baseline cannot evaluate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsupportedExpr {
    /// Currently nothing is unsupported; kept for API stability.
    Never,
}

impl fmt::Display for UnsupportedExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported expression")
    }
}

impl std::error::Error for UnsupportedExpr {}

/// Identity relation over nodes satisfying a test.
fn node_rel<G: PathGraph>(g: &G, t: &Test) -> Relation {
    Relation::from_rows(
        2,
        (0..g.node_count() as u32)
            .map(NodeId)
            .filter(|&n| g.node_test(n, t))
            .map(|n| vec![u64::from(n.0), u64::from(n.0)]),
    )
}

/// Binary relation of edges satisfying a test, forward orientation.
fn edge_rel<G: PathGraph>(g: &G, t: &Test, forward: bool) -> Relation {
    Relation::from_rows(
        2,
        (0..g.edge_count() as u32)
            .map(EdgeId)
            .filter(|&e| g.edge_test(e, t))
            .map(|e| {
                let (s, d) = g.endpoints(e);
                if forward {
                    vec![u64::from(s.0), u64::from(d.0)]
                } else {
                    vec![u64::from(d.0), u64::from(s.0)]
                }
            }),
    )
}

/// Compose two binary relations: `R(x,y) ⋈ S(y,z) → π_{x,z}`.
fn compose(a: &Relation, b: &Relation) -> Relation {
    a.join(b, &[(1, 0)]).project(&[0, 2])
}

/// Semi-naive transitive-reflexive closure of a binary relation over the
/// node universe `0..n`.
fn star(r: &Relation, n: usize) -> Relation {
    let mut closure = Relation::from_rows(2, (0..n as u64).map(|v| vec![v, v]));
    let mut delta = r.clone().difference(&closure);
    closure = closure.union(&delta);
    while !delta.is_empty() {
        let next = compose(&delta, r);
        delta = next.difference(&closure);
        closure = closure.union(&delta);
    }
    closure
}

fn eval<G: PathGraph>(g: &G, expr: &PathExpr) -> Relation {
    match expr {
        PathExpr::NodeTest(t) => node_rel(g, t),
        PathExpr::Forward(t) => edge_rel(g, t, true),
        PathExpr::Backward(t) => edge_rel(g, t, false),
        PathExpr::Concat(a, b) => compose(&eval(g, a), &eval(g, b)),
        PathExpr::Alt(a, b) => eval(g, a).union(&eval(g, b)),
        PathExpr::Star(inner) => star(&eval(g, inner), g.node_count()),
    }
}

/// Evaluates `expr` over `g` by relational algebra, returning all
/// `(start, end)` pairs connected by a conforming path, sorted.
pub fn rpq_join_pairs<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
) -> Result<Vec<(NodeId, NodeId)>, UnsupportedExpr> {
    let rel = eval(g, expr);
    let mut pairs: Vec<(NodeId, NodeId)> = rel
        .iter()
        .map(|row| (NodeId(row[0] as u32), NodeId(row[1] as u32)))
        .collect();
    pairs.sort_unstable();
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::eval::Evaluator;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{cycle_graph, gnm_labeled, path_graph};

    fn compare(g: &mut kgq_graph::LabeledGraph, text: &str) {
        let e = parse_expr(text, g.consts_mut()).unwrap();
        let view = LabeledView::new(g);
        let from_joins = rpq_join_pairs(&view, &e).unwrap();
        let mut from_product = Evaluator::new(&view, &e).pairs();
        from_product.sort_unstable();
        assert_eq!(from_joins, from_product, "expr={text}");
    }

    #[test]
    fn agrees_with_product_on_figure2() {
        for text in [
            "?person/rides/?bus/rides^-/?infected",
            "rides/rides^-",
            "(contact)*",
            "?person/(lives + contact)/?infected",
            "{!rides & !lives}^-",
            "?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person",
        ] {
            let mut g = figure2_labeled();
            compare(&mut g, text);
        }
    }

    #[test]
    fn agrees_with_product_on_random_graphs() {
        for seed in 0..4 {
            let mut g = gnm_labeled(12, 30, &["a", "b"], &["p", "q"], seed);
            for text in ["(p)*", "p/q^-", "(p+q)*", "?a/p/?b", "p/p/p"] {
                compare(&mut g, text);
            }
        }
    }

    #[test]
    fn star_closure_on_cycle_is_complete() {
        let mut g = cycle_graph(5, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let pairs = rpq_join_pairs(&view, &e).unwrap();
        assert_eq!(pairs.len(), 25);
    }

    #[test]
    fn star_on_path_is_upper_triangle() {
        let mut g = path_graph(4, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let pairs = rpq_join_pairs(&view, &e).unwrap();
        // (i, j) with i <= j: 4+3+2+1.
        assert_eq!(pairs.len(), 10);
    }

    #[test]
    fn property_tests_evaluate_via_the_view() {
        // Property tests work because the *view* interprets them — the
        // relational baseline is model-generic like the product engine.
        let pg = kgq_graph::figures::figure2_property();
        let mut consts_holder = pg.clone();
        let e = parse_expr(
            "?person/{contact & [date='3/4/21']}/?infected",
            consts_holder.labeled_mut().consts_mut(),
        )
        .unwrap();
        let view = kgq_core::model::PropertyView::new(&consts_holder);
        let pairs = rpq_join_pairs(&view, &e).unwrap();
        assert_eq!(pairs.len(), 1);
    }
}
