//! A minimal set-semantics relational engine.
//!
//! Rows are vectors of `u64` values (node ids, interned symbols — the
//! engine is value-agnostic). All operators materialize their results;
//! duplicate elimination is eager, matching the set semantics of the
//! relational algebra the paper's §2.2 baseline assumes.

use std::collections::{HashMap, HashSet};

/// A relation: a set of fixed-arity rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    rows: HashSet<Vec<u64>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn empty(arity: usize) -> Relation {
        Relation {
            arity,
            rows: HashSet::new(),
        }
    }

    /// Builds a relation from rows.
    ///
    /// # Panics
    /// Panics if rows disagree on arity.
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Vec<u64>>) -> Relation {
        let mut r = Relation::empty(arity);
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// Inserts one row; returns `false` for duplicates.
    pub fn insert(&mut self, row: Vec<u64>) -> bool {
        assert_eq!(row.len(), self.arity, "arity mismatch");
        self.rows.insert(row)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, row: &[u64]) -> bool {
        self.rows.contains(row)
    }

    /// Iterates over rows (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Vec<u64>> {
        self.rows.iter()
    }

    /// Rows sorted lexicographically (deterministic output).
    pub fn sorted_rows(&self) -> Vec<Vec<u64>> {
        let mut v: Vec<Vec<u64>> = self.rows.iter().cloned().collect();
        v.sort_unstable();
        v
    }

    /// σ — keep rows satisfying the predicate.
    pub fn select<F: Fn(&[u64]) -> bool>(&self, pred: F) -> Relation {
        Relation {
            arity: self.arity,
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// π — keep the given columns in order (may repeat or drop columns).
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(cols.iter().all(|&c| c < self.arity), "column out of range");
        let rows: HashSet<Vec<u64>> = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect();
        Relation {
            arity: cols.len(),
            rows,
        }
    }

    /// ⋈ — hash join on `on = [(left_col, right_col)]` equality pairs.
    /// Output columns: all of `self`, then the non-join columns of
    /// `other` in order.
    pub fn join(&self, other: &Relation, on: &[(usize, usize)]) -> Relation {
        assert!(on.iter().all(|&(l, r)| l < self.arity && r < other.arity));
        let right_keep: Vec<usize> = (0..other.arity)
            .filter(|c| !on.iter().any(|&(_, rc)| rc == *c))
            .collect();
        let arity = self.arity + right_keep.len();
        // Build on the smaller input.
        let mut index: HashMap<Vec<u64>, Vec<&Vec<u64>>> = HashMap::new();
        for row in &other.rows {
            let key: Vec<u64> = on.iter().map(|&(_, rc)| row[rc]).collect();
            index.entry(key).or_default().push(row);
        }
        let mut rows = HashSet::new();
        for lrow in &self.rows {
            let key: Vec<u64> = on.iter().map(|&(lc, _)| lrow[lc]).collect();
            if let Some(matches) = index.get(&key) {
                for rrow in matches {
                    let mut out = lrow.clone();
                    out.extend(right_keep.iter().map(|&c| rrow[c]));
                    rows.insert(out);
                }
            }
        }
        Relation { arity, rows }
    }

    /// ∪ — set union (same arity required).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Relation {
            arity: self.arity,
            rows,
        }
    }

    /// ∖ — set difference (same arity required).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        Relation {
            arity: self.arity,
            rows: self.rows.difference(&other.rows).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Relation {
        Relation::from_rows(2, vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![1, 3]])
    }

    #[test]
    fn set_semantics_dedupe() {
        let mut r = Relation::empty(2);
        assert!(r.insert(vec![1, 2]));
        assert!(!r.insert(vec![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::empty(2);
        r.insert(vec![1]);
    }

    #[test]
    fn select_filters() {
        let r = edges().select(|row| row[0] == 1);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[1, 3]));
    }

    #[test]
    fn project_drops_and_dedupes() {
        let r = edges().project(&[0]);
        assert_eq!(r.arity(), 1);
        assert_eq!(r.len(), 3); // {1, 2, 3}
        let swapped = edges().project(&[1, 0]);
        assert!(swapped.contains(&[2, 1]));
    }

    #[test]
    fn join_composes_paths() {
        // edges ⋈ edges on (dst = src): 2-hop pairs with middle column.
        let e = edges();
        let two_hop = e.join(&e, &[(1, 0)]).project(&[0, 2]);
        assert_eq!(
            two_hop.sorted_rows(),
            vec![vec![1, 3], vec![1, 4], vec![2, 4],]
        );
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let e = edges();
        let none = Relation::from_rows(2, vec![vec![9, 9]]);
        assert!(e.join(&none, &[(1, 0)]).is_empty());
    }

    #[test]
    fn union_and_difference() {
        let a = Relation::from_rows(1, vec![vec![1], vec![2]]);
        let b = Relation::from_rows(1, vec![vec![2], vec![3]]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b).sorted_rows(), vec![vec![1]]);
    }

    #[test]
    fn multi_column_join_keys() {
        let a = Relation::from_rows(3, vec![vec![1, 2, 3], vec![1, 2, 4]]);
        let b = Relation::from_rows(3, vec![vec![1, 2, 9], vec![9, 9, 9]]);
        let j = a.join(&b, &[(0, 0), (1, 1)]);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.len(), 2);
        assert!(j.contains(&[1, 2, 3, 9]));
    }
}
