//! Static analysis of parsed queries against a graph's schema summary.
//!
//! Mirrors `kgq_core::analyze` for the pattern-matching fragment: the
//! labels, property keys and `(key, value)` pairs a query mentions are
//! checked against a [`SchemaSummary`] harvested from the target graph,
//! and provably-empty queries are flagged with `Deny` diagnostics so
//! [`crate::exec::execute_cached`] can short-circuit without compiling a
//! prefilter. The emitted [`Report`] reuses the core diagnostic and
//! rendering machinery, so `kgq cypher --explain` prints the same
//! severity/caret/verdict shape as `kgq query --explain`.
//!
//! Soundness: every `Deny` here is a proof of emptiness under the
//! executor's semantics —
//!
//! * a label absent from the label alphabet matches no node/edge
//!   ([`crate::exec`]'s `node_label_ok` compares against actual labels);
//! * `WHERE` comparisons follow Cypher's NULL semantics (a missing
//!   property satisfies neither `=` nor `<>`), so an unknown property
//!   key — or an unbound variable — falsifies its conjunct everywhere;
//! * properties are single-valued, so `v.p = 'a' AND v.p = 'b'` and
//!   `v.p = 'a' AND v.p <> 'a'` are contradictions;
//! * a variable used as both a node and a relationship binding can
//!   never be bound consistently.

use crate::ast::{CmpOp, Query};
use kgq_core::analyze::{ComplexityClass, Diagnostic, PlanAdvice, Report, Severity};
use kgq_graph::schema::SchemaSummary;
use kgq_graph::PropertyGraph;

/// Byte span of the first occurrence of `name` in the query text.
fn span_in(source: Option<&str>, name: &str) -> Option<(usize, usize)> {
    source.and_then(|text| text.find(name).map(|p| (p, name.len())))
}

/// Variable kind under the executor's binding rules.
#[derive(Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Node,
    Rel,
}

/// Runs every pattern-fragment analysis on `query` against `g`'s schema
/// and assembles a [`Report`] (with `language: None` — language facts
/// are an RPQ notion).
///
/// `source`, when given, is the original query text; it enables byte-span
/// carets in rendered diagnostics. The report's `provably_empty` flag is
/// the executor's short-circuit signal: when set, `execute` over this
/// graph is guaranteed to return zero rows.
pub fn analyze_query(g: &PropertyGraph, query: &Query, source: Option<&str>) -> Report {
    let schema = SchemaSummary::from_property(g);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut empty = false;
    let push = |diags: &mut Vec<Diagnostic>, d: Diagnostic| {
        if !diags.iter().any(|x| x.message == d.message) {
            diags.push(d);
        }
    };

    // Pattern labels against the label alphabets.
    for pattern in &query.patterns {
        for node in &pattern.nodes {
            if let Some(label) = &node.label {
                let known = g
                    .labeled()
                    .sym(label)
                    .is_some_and(|s| schema.has_node_label(s));
                if !known {
                    empty = true;
                    push(
                        &mut diags,
                        Diagnostic {
                            severity: Severity::Deny,
                            code: "unknown-label",
                            message: format!("label `{label}` labels no node in this graph"),
                            span: span_in(source, label),
                        },
                    );
                }
            }
        }
        for rel in &pattern.rels {
            if let Some(label) = &rel.label {
                let known = g
                    .labeled()
                    .sym(label)
                    .is_some_and(|s| schema.has_edge_label(s));
                if !known {
                    empty = true;
                    push(
                        &mut diags,
                        Diagnostic {
                            severity: Severity::Deny,
                            code: "unknown-label",
                            message: format!(
                                "label `{label}` labels no relationship in this graph"
                            ),
                            span: span_in(source, label),
                        },
                    );
                }
            }
        }
    }

    // Variable kinds: a var bound as both node and relationship can
    // never re-bind consistently, so the pattern has no solutions.
    let node_vars = query.node_vars();
    let rel_vars = query.rel_vars();
    for v in &node_vars {
        if rel_vars.contains(v) {
            empty = true;
            push(
                &mut diags,
                Diagnostic {
                    severity: Severity::Deny,
                    code: "var-kind-conflict",
                    message: format!(
                        "variable `{v}` is bound as both a node and a relationship; \
                         the bindings can never agree"
                    ),
                    span: span_in(source, v),
                },
            );
        }
    }

    // WHERE conjuncts under NULL semantics.
    let kind_of = |v: &str| -> Option<VarKind> {
        if node_vars.contains(&v) {
            Some(VarKind::Node)
        } else if rel_vars.contains(&v) {
            Some(VarKind::Rel)
        } else {
            None
        }
    };
    for cond in &query.conditions {
        let Some(kind) = kind_of(&cond.var) else {
            empty = true;
            push(
                &mut diags,
                Diagnostic {
                    severity: Severity::Deny,
                    code: "unbound-variable",
                    message: format!(
                        "WHERE references `{}`, which MATCH never binds; \
                         the comparison is NULL (false) in every solution",
                        cond.var
                    ),
                    span: span_in(source, &cond.var),
                },
            );
            continue;
        };
        let key = g.labeled().sym(&cond.prop);
        let key_known = key.is_some_and(|k| match kind {
            VarKind::Node => schema.has_node_prop_key(k),
            VarKind::Rel => schema.has_edge_prop_key(k),
        });
        if !key_known {
            empty = true;
            let what = match kind {
                VarKind::Node => "node",
                VarKind::Rel => "relationship",
            };
            push(
                &mut diags,
                Diagnostic {
                    severity: Severity::Deny,
                    code: "unknown-property",
                    message: format!(
                        "no {what} has a `{}` property; under NULL semantics \
                         neither `=` nor `<>` can hold",
                        cond.prop
                    ),
                    span: span_in(source, &cond.prop),
                },
            );
            continue;
        }
        if cond.op == CmpOp::Eq {
            let pair_known =
                key.zip(g.labeled().sym(&cond.value))
                    .is_some_and(|(k, v)| match kind {
                        VarKind::Node => schema.has_node_prop_pair(k, v),
                        VarKind::Rel => schema.has_edge_prop_pair(k, v),
                    });
            if !pair_known {
                empty = true;
                push(
                    &mut diags,
                    Diagnostic {
                        severity: Severity::Deny,
                        code: "unsat-where",
                        message: format!(
                            "`{}.{} = '{}'` matches nothing: the pair never \
                             occurs in this graph",
                            cond.var, cond.prop, cond.value
                        ),
                        span: span_in(source, &cond.value),
                    },
                );
            }
        }
    }

    // Contradictory conjunct pairs over the same single-valued property.
    for (i, a) in query.conditions.iter().enumerate() {
        for b in &query.conditions[i + 1..] {
            if a.var != b.var || a.prop != b.prop {
                continue;
            }
            let contradiction = match (a.op, b.op) {
                (CmpOp::Eq, CmpOp::Eq) => a.value != b.value,
                (CmpOp::Eq, CmpOp::Ne) | (CmpOp::Ne, CmpOp::Eq) => a.value == b.value,
                (CmpOp::Ne, CmpOp::Ne) => false,
            };
            if contradiction {
                empty = true;
                push(
                    &mut diags,
                    Diagnostic {
                        severity: Severity::Deny,
                        code: "contradictory-where",
                        message: format!(
                            "`{}.{}` is single-valued: the WHERE conjuncts on it \
                             contradict each other",
                            a.var, a.prop
                        ),
                        span: span_in(source, &a.prop),
                    },
                );
            }
        }
    }

    // RETURN of an unbound variable projects empty strings — legal but
    // almost certainly a typo.
    for item in &query.returns {
        let v = match item {
            crate::ast::ReturnItem::Var(v) => v,
            crate::ast::ReturnItem::Prop(v, _) => v,
        };
        if kind_of(v).is_none() {
            push(
                &mut diags,
                Diagnostic {
                    severity: Severity::Warn,
                    code: "unbound-variable",
                    message: format!(
                        "RETURN references `{v}`, which MATCH never binds; \
                         it projects as an empty string"
                    ),
                    span: span_in(source, v),
                },
            );
        }
    }

    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));

    // Plan: fully labeled chains run through the bit-parallel prefilter
    // kernel; anything else falls back to plain backtracking.
    let plan = if !empty && query.patterns.iter().all(|p| p.fully_labeled()) {
        PlanAdvice::BitParallel
    } else {
        PlanAdvice::Sequential
    };

    Report {
        diagnostics: diags,
        language: None,
        plan,
        classes: vec![("match", ComplexityClass::NpHard)],
        provably_empty: empty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::parser::parse_query;
    use kgq_graph::figures::figure2_property;

    fn report_for(text: &str) -> (Report, usize) {
        let g = figure2_property();
        let q = parse_query(text).unwrap();
        let rows = execute(&g, &q).len();
        (analyze_query(&g, &q, Some(text)), rows)
    }

    #[test]
    fn unknown_node_label_is_provably_empty() {
        let text = "MATCH (p:ghost) RETURN p";
        let (r, rows) = report_for(text);
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        let rendered = r.render(text);
        assert!(rendered.contains("deny[unknown-label]"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
        assert!(rendered.contains("NP-hard"), "{rendered}");
    }

    #[test]
    fn unknown_edge_label_is_provably_empty() {
        let (r, rows) = report_for("MATCH (p:person)-[:teleports]->(b:bus) RETURN p");
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("relationship")));
    }

    #[test]
    fn contradictory_where_conjuncts() {
        let (r, rows) = report_for("MATCH (p:person) WHERE p.age = '33' AND p.age = '34' RETURN p");
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == "contradictory-where"));

        let (r2, rows2) =
            report_for("MATCH (p:person) WHERE p.age = '33' AND p.age <> '33' RETURN p");
        assert!(r2.is_provably_empty());
        assert_eq!(rows2, 0);
    }

    #[test]
    fn compatible_where_conjuncts_are_not_flagged() {
        let (r, _) = report_for("MATCH (p:person) WHERE p.age <> '33' AND p.age <> '34' RETURN p");
        assert!(!r.is_provably_empty());
        let (r2, rows) = report_for("MATCH (p:person) WHERE p.age = '33' RETURN p.name");
        assert!(!r2.is_provably_empty());
        assert!(r2.diagnostics.is_empty());
        assert_eq!(rows, 1);
    }

    #[test]
    fn unknown_property_key_and_value_deny_under_null_semantics() {
        // `shoe_size` is not a property key anywhere.
        let (r, rows) = report_for("MATCH (p:person) WHERE p.shoe_size = '44' RETURN p");
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        assert!(r.diagnostics.iter().any(|d| d.code == "unknown-property"));

        // `age` exists, but nobody is 7.
        let (r2, rows2) = report_for("MATCH (p:person) WHERE p.age = '7' RETURN p");
        assert!(r2.is_provably_empty());
        assert_eq!(rows2, 0);
        assert!(r2.diagnostics.iter().any(|d| d.code == "unsat-where"));

        // `<>` against an unseen value is satisfiable (anyone with an age).
        let (r3, rows3) = report_for("MATCH (p:person) WHERE p.age <> '7' RETURN p");
        assert!(!r3.is_provably_empty());
        assert!(rows3 > 0);
    }

    #[test]
    fn unbound_variables_deny_in_where_and_warn_in_return() {
        let text = "MATCH (p:person) WHERE q.age = '33' RETURN p";
        let (r, rows) = report_for(text);
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == "unbound-variable" && d.severity == Severity::Deny));

        let (r2, _) = report_for("MATCH (p:person) RETURN p, q");
        assert!(!r2.is_provably_empty());
        assert!(r2
            .diagnostics
            .iter()
            .any(|d| d.code == "unbound-variable" && d.severity == Severity::Warn));
    }

    #[test]
    fn var_kind_conflict_is_empty() {
        let (r, rows) = report_for("MATCH (x:person)-[x:rides]->(b:bus) RETURN b");
        assert!(r.is_provably_empty());
        assert_eq!(rows, 0);
        assert!(r.diagnostics.iter().any(|d| d.code == "var-kind-conflict"));
    }

    #[test]
    fn plan_reflects_prefilter_applicability() {
        let (r, _) = report_for("MATCH (p:person)-[:rides]->(b:bus) RETURN p, b");
        assert_eq!(r.plan, PlanAdvice::BitParallel);
        assert!(r.render("…").contains("NP-hard"));

        let (r2, _) = report_for("MATCH (p)-[:rides]->(b:bus) RETURN p, b");
        assert_eq!(r2.plan, PlanAdvice::Sequential);
    }
}
