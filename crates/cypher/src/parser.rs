//! Parser for the MATCH/WHERE/RETURN fragment.
//!
//! Keywords are case-insensitive; identifiers are `[A-Za-z_][A-Za-z0-9_]*`;
//! string literals are single-quoted.

use crate::ast::{
    CmpOp, Condition, Direction, NodePattern, PathPattern, Query, RelPattern, ReturnItem,
};
use std::fmt;

/// Parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Description.
    pub message: String,
    /// The token the parser was looking for, when a single one applies.
    pub expected: Option<String>,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl QueryParseError {
    /// Renders the error with a caret marking its byte position in
    /// `input`, in the same shape as `kgq_core::parser::ParseError::render`:
    ///
    /// ```text
    /// query parse error at byte 8: expected `)`
    ///   MATCH (a RETURN a
    ///           ^ expected `)`
    /// ```
    pub fn render(&self, input: &str) -> String {
        let pos = self.pos.min(input.len());
        let line_start = input[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = input[pos..]
            .find('\n')
            .map(|i| pos + i)
            .unwrap_or(input.len());
        let line = &input[line_start..line_end];
        let pad = " ".repeat(pos - line_start);
        let hint = match &self.expected {
            Some(e) => format!(" expected {e}"),
            None => String::new(),
        };
        format!("{self}\n  {line}\n  {pad}^{hint}")
    }
}

impl std::error::Error for QueryParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: &str) -> Result<T, QueryParseError> {
        Err(QueryParseError {
            pos: self.pos,
            message: message.to_owned(),
            expected: None,
        })
    }

    /// Like [`P::err`] but records the single token that would have
    /// advanced the parse, for the caret hint in
    /// [`QueryParseError::render`].
    fn err_expected<T>(&self, message: &str, expected: &str) -> Result<T, QueryParseError> {
        Err(QueryParseError {
            pos: self.pos,
            message: message.to_owned(),
            expected: Some(expected.to_owned()),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        // `get` (not `[..]`) so a multi-byte character straddling the
        // keyword length is a non-match, not a slice panic.
        if rest
            .get(..kw.len())
            .is_some_and(|p| p.eq_ignore_ascii_case(kw))
        {
            // Keyword boundary: next char must not be identifier-like.
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let mut len = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                len = i + c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return self.err_expected("expected an identifier", "an identifier");
        }
        let s = rest[..len].to_owned();
        self.pos += len;
        Ok(s)
    }

    fn string_literal(&mut self) -> Result<String, QueryParseError> {
        self.skip_ws();
        if !self.src[self.pos..].starts_with('\'') {
            return self.err_expected("expected a quoted string", "a quoted string");
        }
        let start = self.pos + 1;
        match self.src[start..].find('\'') {
            Some(end) => {
                let s = self.src[start..start + end].to_owned();
                self.pos = start + end + 1;
                Ok(s)
            }
            None => self.err("unterminated string literal"),
        }
    }

    fn node_pattern(&mut self) -> Result<NodePattern, QueryParseError> {
        if !self.eat("(") {
            return self.err_expected("expected `(`", "`(`");
        }
        let var = if matches!(self.peek(), Some(c) if c.is_alphabetic() || c == '_') {
            Some(self.ident()?)
        } else {
            None
        };
        let label = if self.eat(":") {
            Some(self.ident()?)
        } else {
            None
        };
        if !self.eat(")") {
            return self.err_expected("expected `)`", "`)`");
        }
        Ok(NodePattern { var, label })
    }

    fn rel_pattern(&mut self) -> Result<Option<RelPattern>, QueryParseError> {
        self.skip_ws();
        let left = self.eat("<-");
        if !left && !self.eat("-") {
            return Ok(None);
        }
        let (var, label) = if self.eat("[") {
            let var = if matches!(self.peek(), Some(c) if c.is_alphabetic() || c == '_') {
                Some(self.ident()?)
            } else {
                None
            };
            let label = if self.eat(":") {
                Some(self.ident()?)
            } else {
                None
            };
            if !self.eat("]") {
                return self.err_expected("expected `]`", "`]`");
            }
            (var, label)
        } else {
            (None, None)
        };
        let direction = if left {
            if !self.eat("-") {
                return self.err_expected("expected `-` closing `<-[..]-`", "`-`");
            }
            Direction::Left
        } else if self.eat("->") {
            Direction::Right
        } else {
            return self.err_expected(
                "expected `->` (undirected patterns are not supported)",
                "`->`",
            );
        };
        Ok(Some(RelPattern {
            var,
            label,
            direction,
        }))
    }

    fn path_pattern(&mut self) -> Result<PathPattern, QueryParseError> {
        let mut pattern = PathPattern::default();
        pattern.nodes.push(self.node_pattern()?);
        while let Some(rel) = self.rel_pattern()? {
            pattern.rels.push(rel);
            pattern.nodes.push(self.node_pattern()?);
        }
        Ok(pattern)
    }

    fn condition(&mut self) -> Result<Condition, QueryParseError> {
        let var = self.ident()?;
        if !self.eat(".") {
            return self.err_expected("expected `.` in property access", "`.`");
        }
        let prop = self.ident()?;
        let op = if self.eat("<>") {
            CmpOp::Ne
        } else if self.eat("=") {
            CmpOp::Eq
        } else {
            return self.err("expected `=` or `<>`");
        };
        let value = self.string_literal()?;
        Ok(Condition {
            var,
            prop,
            op,
            value,
        })
    }

    fn return_item(&mut self) -> Result<ReturnItem, QueryParseError> {
        let var = self.ident()?;
        if self.eat(".") {
            let prop = self.ident()?;
            Ok(ReturnItem::Prop(var, prop))
        } else {
            Ok(ReturnItem::Var(var))
        }
    }
}

/// Parses a MATCH/WHERE/RETURN query.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = P { src: input, pos: 0 };
    if !p.eat_keyword("MATCH") {
        return p.err_expected("query must start with MATCH", "MATCH");
    }
    let mut patterns = vec![p.path_pattern()?];
    while p.eat(",") {
        patterns.push(p.path_pattern()?);
    }
    let mut conditions = Vec::new();
    if p.eat_keyword("WHERE") {
        conditions.push(p.condition()?);
        while p.eat_keyword("AND") {
            conditions.push(p.condition()?);
        }
    }
    if !p.eat_keyword("RETURN") {
        return p.err_expected("expected RETURN", "RETURN");
    }
    let mut returns = vec![p.return_item()?];
    while p.eat(",") {
        returns.push(p.return_item()?);
    }
    p.skip_ws();
    if p.pos != input.len() {
        return p.err("trailing input");
    }
    Ok(Query {
        patterns,
        conditions,
        returns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_doc_example() {
        let q = parse_query(
            "MATCH (a:person)-[r:rides]->(b:bus), (c:infected)-[:rides]->(b) \
             WHERE a.age = '33' AND r.date <> '3/3/21' \
             RETURN a, a.name, b",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.patterns[0].nodes.len(), 2);
        assert_eq!(q.patterns[0].rels[0].label.as_deref(), Some("rides"));
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[1].op, CmpOp::Ne);
        assert_eq!(q.returns.len(), 3);
        assert_eq!(q.bound_vars(), vec!["a", "b", "r", "c"]); // nodes first per pattern
    }

    #[test]
    fn left_arrows_and_anonymous_elements() {
        let q = parse_query("MATCH (a)<-[:owns]-(), ()-->(a) RETURN a").unwrap();
        assert_eq!(q.patterns[0].rels[0].direction, Direction::Left);
        assert!(q.patterns[0].nodes[1].var.is_none());
        // `-->` is a bare right arrow with no bracket.
        assert_eq!(q.patterns[1].rels[0].direction, Direction::Right);
        assert!(q.patterns[1].rels[0].label.is_none());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("match (a) return a").is_ok());
        assert!(parse_query("MaTcH (a) rEtUrN a").is_ok());
    }

    #[test]
    fn keyword_boundaries_respected() {
        // `matcher` must not lex as the MATCH keyword.
        let err = parse_query("matcher (a) RETURN a").unwrap_err();
        assert!(err.message.contains("MATCH"));
    }

    #[test]
    fn non_ascii_input_never_panics() {
        // Fuzz-found: a multi-byte character straddling a keyword-length
        // prefix used to panic the byte slice in `eat_keyword`.
        let err = parse_query("MATCH (a) RETURÉx").unwrap_err();
        assert!(err.message.contains("RETURN"));
        for input in ["É", "MATCH (É) RETURN É", "MATCH (a) WHERÉ", "ÀÁÂ (a)"] {
            let _ = parse_query(input);
        }
        // Unicode identifiers are accepted (the ident scanner is
        // char-based already).
        let q = parse_query("MATCH (é:bus) RETURN é").unwrap();
        assert_eq!(q.patterns[0].nodes[0].var.as_deref(), Some("é"));
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_query("MATCH (a RETURN a").unwrap_err();
        assert!(err.message.contains(")"));
        let err = parse_query("MATCH (a)-(b) RETURN a").unwrap_err();
        assert!(err.message.contains("->"));
        let err = parse_query("MATCH (a) WHERE a.x = unquoted RETURN a").unwrap_err();
        assert!(err.message.contains("quoted"));
        let err = parse_query("MATCH (a) RETURN a extra").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = parse_query("MATCH (a) RETURN a.").unwrap_err();
        assert!(err.message.contains("identifier"));
    }
}
