//! # kgq-cypher — declarative pattern matching for property graphs
//!
//! Section 3 of the reproduced paper presents property graphs as the
//! model "widely used in graph databases \[28, 49, 59, 67\]", citing
//! Cypher and PGQL as its query languages. This crate implements a
//! Cypher-inspired subset over [`kgq_graph::PropertyGraph`]:
//!
//! ```text
//! MATCH (a:person)-[r:rides]->(b:bus), (c:infected)-[:rides]->(b)
//! WHERE a.age = '33' AND r.date <> '3/3/21'
//! RETURN a, a.name, b
//! ```
//!
//! * node patterns `(var:label)` — the label and the variable are both
//!   optional;
//! * relationship patterns `-[var:label]->` and `<-[var:label]-`
//!   (direction matters; label/variable optional);
//! * `WHERE` with `=` / `<>` comparisons of properties against string
//!   literals, combined with `AND`;
//! * `RETURN` of variables (bound node/edge names) and property lookups.
//!
//! Matching uses Cypher's *relationship isomorphism* semantics: within
//! one solution, no relationship (edge) is used twice, while nodes may
//! repeat. Evaluation is backtracking search, extending the most
//! constrained pattern element first.
//!
//! ```
//! use kgq_graph::figures::figure2_property;
//! use kgq_cypher::{execute, parse_query};
//!
//! let g = figure2_property();
//! let q = parse_query("MATCH (p:person) WHERE p.age = '33' RETURN p.name").unwrap();
//! assert_eq!(execute(&g, &q), vec![vec!["Julia".to_string()]]);
//! ```

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod parser;

pub use analyze::analyze_query;
pub use ast::{Direction, Query};
pub use exec::{execute, execute_cached, execute_governed, Row};
pub use parser::{parse_query, QueryParseError};
