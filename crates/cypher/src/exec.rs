//! Query execution: backtracking pattern matching over a property graph.
//!
//! Semantics follow Cypher's conventions:
//!
//! * **homomorphic nodes, isomorphic relationships** — a node may be
//!   bound by several variables, but no edge is used twice within one
//!   solution (re-using the *same* relationship variable is the
//!   exception: it must re-bind the identical edge);
//! * `WHERE` comparisons against a missing property are not satisfied
//!   (Cypher's NULL semantics: neither `=` nor `<>` is true).
//!
//! Governed execution ([`execute_governed`]) threads a
//! [`kgq_core::govern::Governor`] through the whole pipeline: prefilter
//! compilation, the prefilter reachability scan, and every step of the
//! backtracking search, which stops at a budget boundary and returns the
//! rows found so far as a typed partial result.

use crate::ast::{CmpOp, Direction, PathPattern, Query, ReturnItem};
use kgq_core::cache::QueryCache;
use kgq_core::expr::{PathExpr, Test};
use kgq_core::govern::{isolate, EvalError, Governed, Governor, Interrupt, Ticker};
use kgq_core::model::PropertyView;
use kgq_graph::{EdgeId, NodeId, PropertyGraph};
use std::collections::HashMap;

/// One result row: a string per `RETURN` item (node/edge identifiers for
/// variables, property values — empty when absent — for lookups).
pub type Row = Vec<String>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Binding {
    Node(NodeId),
    Edge(EdgeId),
}

struct Ctx<'a> {
    g: &'a PropertyGraph,
    query: &'a Query,
    env: HashMap<String, Binding>,
    used_edges: Vec<EdgeId>,
    out: Vec<Row>,
    /// Per-pattern sorted lists of admissible start nodes (from the
    /// compiled product's bit-parallel `matching_starts` scan); `None`
    /// means no prefilter for that pattern. Sorted `Vec` + binary search
    /// beats a `HashSet` here: the lists are built once, probed many
    /// times, and stay cache-resident.
    start_filter: Vec<Option<Vec<NodeId>>>,
    /// Step accounting for governed execution (a no-op ticker otherwise).
    ticker: Ticker<'a>,
    /// Result accounting for governed execution.
    gov: Option<&'a Governor>,
}

/// Executes a parsed query against a property graph.
///
/// Returns one row per solution, in a deterministic (search) order.
/// Unknown variables in `WHERE`/`RETURN` simply never match / produce
/// empty strings — mirroring the forgiving behavior of the text format.
pub fn execute(g: &PropertyGraph, query: &Query) -> Vec<Row> {
    let filters = vec![None; query.patterns.len()];
    execute_with_filters(g, query, filters)
}

/// How a pattern chain translates into a path expression for pruning.
enum Prefilter {
    /// Some element is unlabeled — no sound expression, skip pruning.
    NotApplicable,
    /// A label string absent from the graph's constant universe: the
    /// pattern (and hence the query) cannot match at all.
    Empty,
    /// The chain as a path expression; its `matching_starts` set
    /// over-approximates the pattern's start nodes.
    Expr(PathExpr),
}

/// Translates a fully labeled pattern chain
/// `(:l0)-[:e1]->(:l1)…` into `?l0/e1/?l1/…`. Relationship uniqueness
/// and cross-pattern variable joins make actual Cypher matches a
/// *subset* of the expression's answers, so pruning start candidates to
/// `matching_starts` of this expression never loses a solution.
fn pattern_prefilter(g: &PropertyGraph, pattern: &PathPattern) -> Prefilter {
    let all_labeled = pattern.nodes.iter().all(|n| n.label.is_some())
        && pattern.rels.iter().all(|r| r.label.is_some());
    if !all_labeled {
        return Prefilter::NotApplicable;
    }
    let sym = |label: &Option<String>| label.as_deref().and_then(|l| g.labeled().sym(l));
    let Some(first) = sym(&pattern.nodes[0].label) else {
        return Prefilter::Empty;
    };
    let mut expr = PathExpr::NodeTest(Test::Label(first));
    for (rel, node) in pattern.rels.iter().zip(&pattern.nodes[1..]) {
        let (Some(rl), Some(nl)) = (sym(&rel.label), sym(&node.label)) else {
            return Prefilter::Empty;
        };
        let step = match rel.direction {
            Direction::Right => PathExpr::Forward(Test::Label(rl)),
            Direction::Left => PathExpr::Backward(Test::Label(rl)),
        };
        expr = PathExpr::Concat(Box::new(expr), Box::new(step));
        expr = PathExpr::Concat(
            Box::new(expr),
            Box::new(PathExpr::NodeTest(Test::Label(nl))),
        );
    }
    Prefilter::Expr(expr)
}

/// Executes a parsed query, pruning each fully labeled pattern chain
/// through `cache`: the chain is compiled to a path expression (reusing
/// a cached graph × NFA product when the graph generation matches) and
/// start candidates are restricted to its `matching_starts` set. Falls
/// back to plain [`execute`] behavior for chains with unlabeled
/// elements. Results are identical to [`execute`].
pub fn execute_cached(g: &PropertyGraph, query: &Query, cache: &QueryCache) -> Vec<Row> {
    // Static analysis first: a provably-empty query (unknown label,
    // contradictory WHERE, …) returns without compiling anything, and
    // the skipped compilation is visible in the cache stats.
    let report = crate::analyze::analyze_query(g, query, None);
    if report.is_provably_empty() {
        cache.note_short_circuit();
        return Vec::new();
    }
    let generation = g.generation();
    let view = PropertyView::new(g);
    let mut filters: Vec<Option<Vec<NodeId>>> = Vec::with_capacity(query.patterns.len());
    for pattern in &query.patterns {
        match pattern_prefilter(g, pattern) {
            Prefilter::NotApplicable => filters.push(None),
            Prefilter::Empty => return Vec::new(),
            Prefilter::Expr(e) => {
                // `matching_starts` runs on the 64-source bit-parallel
                // reachability kernel, so the prefilter costs one sweep
                // over the product per 64 candidate nodes (unless the
                // analyzer advised a sequential scan for this graph).
                let compiled = cache.get_or_compile(&view, generation, &e);
                let mut starts = compiled.evaluator().matching_starts_planned(report.plan);
                starts.sort_unstable();
                if starts.is_empty() {
                    // MATCH patterns are conjunctive: one unmatchable
                    // chain empties the whole result.
                    return Vec::new();
                }
                filters.push(Some(starts));
            }
        }
    }
    execute_with_filters(g, query, filters)
}

fn execute_with_filters(
    g: &PropertyGraph,
    query: &Query,
    start_filter: Vec<Option<Vec<NodeId>>>,
) -> Vec<Row> {
    let mut ctx = Ctx {
        g,
        query,
        env: HashMap::new(),
        used_edges: Vec::new(),
        out: Vec::new(),
        start_filter,
        ticker: Ticker::none(),
        gov: None,
    };
    match match_pattern(&mut ctx, 0) {
        Ok(()) => ctx.out,
        Err(i) => unreachable!("ungoverned match interrupted: {i}"),
    }
}

/// Governed [`execute_cached`]: prefilter compilation, the prefilter
/// scans, and the backtracking search all run under `gov`. Exhaustion
/// mid-search returns the rows found so far as a
/// [`kgq_core::govern::Completion::Partial`] result (rows appear in the
/// same deterministic search order as [`execute`], so the partial value
/// is a prefix of the full row list); worker panics surface as
/// [`EvalError::Panic`].
pub fn execute_governed(
    g: &PropertyGraph,
    query: &Query,
    cache: &QueryCache,
    gov: &Governor,
) -> Result<Governed<Vec<Row>>, EvalError> {
    // Same analyzer short-circuit as `execute_cached`: a provably-empty
    // query completes instantly without charging the governor.
    let report = crate::analyze::analyze_query(g, query, None);
    if report.is_provably_empty() {
        cache.note_short_circuit();
        return Ok(Governed::complete(Vec::new()));
    }
    let generation = g.generation();
    let view = PropertyView::new(g);
    let mut filters: Vec<Option<Vec<NodeId>>> = Vec::with_capacity(query.patterns.len());
    for pattern in &query.patterns {
        match pattern_prefilter(g, pattern) {
            Prefilter::NotApplicable => filters.push(None),
            Prefilter::Empty => return Ok(Governed::complete(Vec::new())),
            Prefilter::Expr(e) => {
                let compiled = match cache.get_or_compile_governed(&view, generation, &e, gov) {
                    Ok(c) => c,
                    Err(EvalError::Interrupted(why)) => {
                        return Ok(Governed::partial(Vec::new(), why))
                    }
                    Err(e) => return Err(e),
                };
                // The prefilter is only sound when complete — a partial
                // start set would prune real solutions. The governor is
                // sticky, so after a trip the search below stops at its
                // first tick anyway. Unmetered: prefilter start nodes are
                // not user-visible rows, so they must not consume the
                // caller's result budget.
                let starts = compiled
                    .evaluator()
                    .matching_starts_governed_unmetered(gov)?;
                if starts.is_partial() {
                    return Ok(Governed::partial(
                        Vec::new(),
                        match starts.completion {
                            kgq_core::govern::Completion::Partial(why) => why,
                            kgq_core::govern::Completion::Complete => unreachable!(),
                        },
                    ));
                }
                let mut starts = starts.value;
                starts.sort_unstable();
                if starts.is_empty() {
                    return Ok(Governed::complete(Vec::new()));
                }
                filters.push(Some(starts));
            }
        }
    }
    isolate(|| {
        #[cfg(feature = "fault-injection")]
        kgq_core::govern::fault::hit("cypher::match");
        let mut ctx = Ctx {
            g,
            query,
            env: HashMap::new(),
            used_edges: Vec::new(),
            out: Vec::new(),
            start_filter: filters,
            ticker: Ticker::new(gov),
            gov: Some(gov),
        };
        Ok(match match_pattern(&mut ctx, 0) {
            Ok(()) => Governed::complete(ctx.out),
            Err(why) => Governed::partial(ctx.out, why),
        })
    })
}

fn node_label_ok(g: &PropertyGraph, n: NodeId, label: &Option<String>) -> bool {
    match label {
        None => true,
        Some(l) => g.labeled().label_name(g.labeled().node_label(n)) == l,
    }
}

fn edge_label_ok(g: &PropertyGraph, e: EdgeId, label: &Option<String>) -> bool {
    match label {
        None => true,
        Some(l) => g.labeled().label_name(g.labeled().edge_label(e)) == l,
    }
}

fn bind_node(ctx: &mut Ctx<'_>, var: &Option<String>, n: NodeId) -> Result<Option<String>, ()> {
    match var {
        None => Ok(None),
        Some(v) => match ctx.env.get(v) {
            Some(Binding::Node(bound)) if *bound == n => Ok(None),
            Some(_) => Err(()),
            None => {
                ctx.env.insert(v.clone(), Binding::Node(n));
                Ok(Some(v.clone()))
            }
        },
    }
}

fn match_pattern(ctx: &mut Ctx<'_>, pat_idx: usize) -> Result<(), Interrupt> {
    if pat_idx == ctx.query.patterns.len() {
        if where_holds(ctx) {
            if let Some(gov) = ctx.gov {
                gov.charge_results(1)?;
            }
            let row = project(ctx);
            ctx.out.push(row);
        }
        return Ok(());
    }
    let pattern = &ctx.query.patterns[pat_idx];
    let first = &pattern.nodes[0];
    // Starting candidates: the pre-bound node, or all label-matching nodes.
    let candidates: Vec<NodeId> = match first.var.as_ref().and_then(|v| ctx.env.get(v)) {
        Some(Binding::Node(n)) => vec![*n],
        Some(Binding::Edge(_)) => return Ok(()),
        None => {
            let filter = ctx.start_filter.get(pat_idx).and_then(|f| f.as_ref());
            ctx.g
                .labeled()
                .base()
                .nodes()
                .filter(|&n| node_label_ok(ctx.g, n, &first.label))
                .filter(|n| filter.is_none_or(|f| f.binary_search(n).is_ok()))
                .collect()
        }
    };
    for n in candidates {
        ctx.ticker.tick()?;
        if !node_label_ok(ctx.g, n, &first.label) {
            continue;
        }
        let undo = bind_node(ctx, &first.var, n);
        if let Ok(undo) = undo {
            match_step(ctx, pat_idx, 0, n)?;
            if let Some(v) = undo {
                ctx.env.remove(&v);
            }
        }
    }
    Ok(())
}

fn match_step(
    ctx: &mut Ctx<'_>,
    pat_idx: usize,
    rel_idx: usize,
    at: NodeId,
) -> Result<(), Interrupt> {
    let pattern = &ctx.query.patterns[pat_idx];
    if rel_idx == pattern.rels.len() {
        return match_pattern(ctx, pat_idx + 1);
    }
    let rel = pattern.rels[rel_idx].clone();
    let next_node = pattern.nodes[rel_idx + 1].clone();
    // Candidate edges incident to `at` in the right direction.
    let base = ctx.g.labeled().base();
    let candidates: Vec<(EdgeId, NodeId)> = match rel.direction {
        Direction::Right => base
            .out_edges(at)
            .iter()
            .map(|&e| (e, base.target(e)))
            .collect(),
        Direction::Left => base
            .in_edges(at)
            .iter()
            .map(|&e| (e, base.source(e)))
            .collect(),
    };
    for (e, m) in candidates {
        ctx.ticker.tick()?;
        if !edge_label_ok(ctx.g, e, &rel.label) {
            continue;
        }
        if !node_label_ok(ctx.g, m, &next_node.label) {
            continue;
        }
        // Relationship bindings and uniqueness.
        let mut bound_var_here = None;
        match rel.var.as_ref().map(|v| (v, ctx.env.get(v))) {
            Some((_, Some(Binding::Edge(bound)))) => {
                // Re-using a relationship variable: must be the same edge
                // (uniqueness does not apply to itself).
                if *bound != e {
                    continue;
                }
            }
            Some((_, Some(Binding::Node(_)))) => continue,
            Some((v, None)) => {
                if ctx.used_edges.contains(&e) {
                    continue;
                }
                ctx.env.insert(v.clone(), Binding::Edge(e));
                bound_var_here = Some(v.clone());
                ctx.used_edges.push(e);
            }
            None => {
                if ctx.used_edges.contains(&e) {
                    continue;
                }
                ctx.used_edges.push(e);
            }
        }
        let track_edge = bound_var_here.is_some() || rel.var.is_none();
        if let Ok(undo_node) = bind_node(ctx, &next_node.var, m) {
            // On interrupt the whole search is abandoned and `ctx.out`
            // returned as-is, so skipping the undo bookkeeping is fine.
            match_step(ctx, pat_idx, rel_idx + 1, m)?;
            if let Some(v) = undo_node {
                ctx.env.remove(&v);
            }
        }
        if let Some(v) = bound_var_here {
            ctx.env.remove(&v);
        }
        if track_edge {
            ctx.used_edges.pop();
        }
    }
    Ok(())
}

fn prop_of(ctx: &Ctx<'_>, var: &str, prop: &str) -> Option<String> {
    match ctx.env.get(var)? {
        Binding::Node(n) => ctx.g.node_prop_str(*n, prop).map(str::to_owned),
        Binding::Edge(e) => ctx.g.edge_prop_str(*e, prop).map(str::to_owned),
    }
}

fn where_holds(ctx: &Ctx<'_>) -> bool {
    ctx.query.conditions.iter().all(|c| {
        match prop_of(ctx, &c.var, &c.prop) {
            None => false, // NULL comparisons are never true
            Some(v) => match c.op {
                CmpOp::Eq => v == c.value,
                CmpOp::Ne => v != c.value,
            },
        }
    })
}

fn project(ctx: &Ctx<'_>) -> Row {
    ctx.query
        .returns
        .iter()
        .map(|item| match item {
            ReturnItem::Var(v) => match ctx.env.get(v) {
                Some(Binding::Node(n)) => ctx.g.labeled().node_name(*n).to_owned(),
                Some(Binding::Edge(e)) => ctx.g.labeled().edge_name(*e).to_owned(),
                None => String::new(),
            },
            ReturnItem::Prop(v, p) => prop_of(ctx, v, p).unwrap_or_default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use kgq_graph::figures::figure2_property;

    fn run(query: &str) -> Vec<Row> {
        let g = figure2_property();
        let q = parse_query(query).unwrap();
        let mut rows = execute(&g, &q);
        rows.sort();
        rows
    }

    #[test]
    fn single_node_pattern_by_label() {
        let rows = run("MATCH (p:person) RETURN p");
        assert_eq!(rows, vec![vec!["n1"], vec!["n4"], vec!["n8"]]);
    }

    #[test]
    fn relationship_pattern_with_direction() {
        let rows = run("MATCH (p:person)-[:rides]->(b:bus) RETURN p, b");
        assert_eq!(rows, vec![vec!["n1", "n3"], vec!["n4", "n3"]]);
        // Reversed arrow: same answers from the bus side.
        let rows = run("MATCH (b:bus)<-[:rides]-(p:person) RETURN p, b");
        assert_eq!(rows, vec![vec!["n1", "n3"], vec!["n4", "n3"]]);
    }

    #[test]
    fn multi_pattern_join_finds_exposure() {
        // The paper's expression (2) as a Cypher-style query.
        let rows = run(
            "MATCH (p:person)-[:rides]->(b:bus), (i:infected)-[:rides]->(b) \
             RETURN p, i",
        );
        assert_eq!(rows, vec![vec!["n1", "n2"], vec!["n4", "n2"]]);
    }

    #[test]
    fn where_filters_on_node_and_edge_properties() {
        let rows = run("MATCH (p:person) WHERE p.age = '33' RETURN p.name");
        assert_eq!(rows, vec![vec!["Julia"]]);
        let rows = run("MATCH (p)-[r:rides]->(b:bus) WHERE r.date <> '3/3/21' RETURN p");
        // e1 (n1, 3/3/21) is excluded; e2 (n2) and e3 (n4) survive.
        assert_eq!(rows, vec![vec!["n2"], vec!["n4"]]);
    }

    #[test]
    fn missing_property_fails_both_operators() {
        // The bus has no age: neither = nor <> matches (NULL semantics).
        assert!(run("MATCH (b:bus) WHERE b.age = '1' RETURN b").is_empty());
        assert!(run("MATCH (b:bus) WHERE b.age <> '1' RETURN b").is_empty());
    }

    #[test]
    fn relationship_uniqueness_within_a_match() {
        // Two co-rider patterns over the same bus: the two rides edges
        // must be distinct, so p <> q pairs only (no self-pairs via the
        // same edge).
        let rows = run("MATCH (p)-[:rides]->(b:bus)<-[:rides]-(q) RETURN p, q");
        for row in &rows {
            assert_ne!(row[0], row[1], "same edge reused for both hops");
        }
        // n1/n2, n1/n4, n2/n4 in both orders = 6 rows.
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn repeated_relationship_variable_rebinds_same_edge() {
        let rows = run("MATCH (p)-[r:rides]->(b), (p)-[r]->(b) RETURN p, r");
        // Each rides edge matches once (r forced equal across patterns).
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn node_homomorphism_is_allowed() {
        // The same node can play two roles.
        let rows = run("MATCH (a:person), (b:person) RETURN a, b");
        assert_eq!(rows.len(), 9); // 3 × 3 including a = b
    }

    #[test]
    fn property_projection_of_missing_value_is_empty() {
        let rows = run("MATCH (b:bus) RETURN b, b.name");
        assert_eq!(rows, vec![vec!["n3".to_owned(), String::new()]]);
    }

    #[test]
    fn anonymous_patterns_work() {
        let rows = run("MATCH (:company)-[:owns]->(b) RETURN b");
        assert_eq!(rows, vec![vec!["n3"]]);
    }

    #[test]
    fn cached_execution_matches_plain_execution() {
        let g = figure2_property();
        let cache = QueryCache::new();
        for query in [
            "MATCH (p:person) RETURN p",
            "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
            "MATCH (b:bus)<-[:rides]-(p:person) RETURN p, b",
            "MATCH (p:person)-[:rides]->(b:bus), (i:infected)-[:rides]->(b) RETURN p, i",
            "MATCH (p)-[:rides]->(b:bus)<-[:rides]-(q) RETURN p, q",
            "MATCH (p:person) WHERE p.age = '33' RETURN p.name",
            "MATCH (:company)-[:owns]->(b) RETURN b",
        ] {
            let q = parse_query(query).unwrap();
            assert_eq!(execute_cached(&g, &q, &cache), execute(&g, &q), "{query}");
        }
    }

    #[test]
    fn cached_execution_reuses_compiled_patterns() {
        let g = figure2_property();
        let cache = QueryCache::new();
        let q = parse_query("MATCH (p:person)-[:rides]->(b:bus) RETURN p, b").unwrap();
        execute_cached(&g, &q, &cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        execute_cached(&g, &q, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn unknown_label_short_circuits_to_empty() {
        let g = figure2_property();
        let cache = QueryCache::new();
        let q = parse_query("MATCH (p:ghost)-[:rides]->(b:bus) RETURN p").unwrap();
        assert!(execute_cached(&g, &q, &cache).is_empty());
        // Nothing was compiled: the label is not even in the universe.
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn mutation_invalidates_cached_patterns() {
        let mut g = figure2_property();
        let cache = QueryCache::new();
        let q = parse_query("MATCH (p:person)-[:rides]->(b:bus) RETURN p, b").unwrap();
        let before = execute_cached(&g, &q, &cache);
        let p9 = g.add_node("n9", "person").unwrap();
        let bus = g.labeled().node_named("n3").unwrap();
        g.add_edge("e9", p9, bus, "rides").unwrap();
        let after = execute_cached(&g, &q, &cache);
        // The new rider is visible: the stale product was not reused.
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(cache.misses(), 2);
    }
}
