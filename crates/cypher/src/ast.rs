//! Abstract syntax of the MATCH/WHERE/RETURN fragment.

/// Relationship direction in a pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// `-[..]->`
    Right,
    /// `<-[..]-`
    Left,
}

/// A node pattern `(var:label)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodePattern {
    /// Binding variable, if named.
    pub var: Option<String>,
    /// Required label, if present.
    pub label: Option<String>,
}

/// A relationship pattern `-[var:label]->` / `<-[var:label]-`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelPattern {
    /// Binding variable, if named.
    pub var: Option<String>,
    /// Required edge label, if present.
    pub label: Option<String>,
    /// Arrow direction.
    pub direction: Direction,
}

/// One linear path pattern: `node (rel node)*`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PathPattern {
    /// The node patterns, one more than `rels`.
    pub nodes: Vec<NodePattern>,
    /// The relationship patterns between consecutive nodes.
    pub rels: Vec<RelPattern>,
}

impl PathPattern {
    /// True when every node and every relationship carries a label, i.e.
    /// the chain translates into a sound path-expression prefilter.
    pub fn fully_labeled(&self) -> bool {
        self.nodes.iter().all(|n| n.label.is_some()) && self.rels.iter().all(|r| r.label.is_some())
    }
}

/// Comparison operator in `WHERE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

/// One `WHERE` conjunct: `var.prop <op> 'literal'`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Condition {
    /// Variable whose property is inspected.
    pub var: String,
    /// Property name.
    pub prop: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: String,
}

/// A `RETURN` item: a bound variable or a property of one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReturnItem {
    /// `var` — the node/edge identifier.
    Var(String),
    /// `var.prop` — a property value (empty string when absent).
    Prop(String, String),
}

/// A full query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The comma-separated path patterns of the MATCH clause.
    pub patterns: Vec<PathPattern>,
    /// The WHERE conjuncts (empty when no WHERE clause).
    pub conditions: Vec<Condition>,
    /// The RETURN items (at least one).
    pub returns: Vec<ReturnItem>,
}

impl Query {
    /// Variables bound to nodes by the MATCH clause.
    pub fn node_vars(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        for p in &self.patterns {
            for n in &p.nodes {
                if let Some(v) = &n.var {
                    if !vars.contains(&v.as_str()) {
                        vars.push(v);
                    }
                }
            }
        }
        vars
    }

    /// Variables bound to relationships by the MATCH clause.
    pub fn rel_vars(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        for p in &self.patterns {
            for r in &p.rels {
                if let Some(v) = &r.var {
                    if !vars.contains(&v.as_str()) {
                        vars.push(v);
                    }
                }
            }
        }
        vars
    }

    /// All variables bound by the MATCH clause.
    pub fn bound_vars(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        for p in &self.patterns {
            for n in &p.nodes {
                if let Some(v) = &n.var {
                    if !vars.contains(&v.as_str()) {
                        vars.push(v);
                    }
                }
            }
            for r in &p.rels {
                if let Some(v) = &r.var {
                    if !vars.contains(&v.as_str()) {
                        vars.push(v);
                    }
                }
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_vars_deduplicate_across_patterns() {
        let q = Query {
            patterns: vec![
                PathPattern {
                    nodes: vec![
                        NodePattern {
                            var: Some("a".into()),
                            label: None,
                        },
                        NodePattern {
                            var: Some("b".into()),
                            label: None,
                        },
                    ],
                    rels: vec![RelPattern {
                        var: Some("r".into()),
                        label: None,
                        direction: Direction::Right,
                    }],
                },
                PathPattern {
                    nodes: vec![NodePattern {
                        var: Some("a".into()),
                        label: None,
                    }],
                    rels: vec![],
                },
            ],
            conditions: vec![],
            returns: vec![ReturnItem::Var("a".into())],
        };
        assert_eq!(q.bound_vars(), vec!["a", "b", "r"]);
    }
}
