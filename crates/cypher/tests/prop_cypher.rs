//! Property-based equivalence tests for the Cypher-style matcher on
//! arbitrary property graphs.

use kgq_cypher::{execute, parse_query};
use kgq_graph::{NodeId, PropertyGraph};
use proptest::prelude::*;

const LABELS: [&str; 2] = ["person", "bus"];
const EDGE_LABELS: [&str; 2] = ["rides", "contact"];

#[derive(Clone, Debug)]
struct Spec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (1usize..8).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..14),
        )
            .prop_map(|(node_labels, edges)| Spec { node_labels, edges })
    })
}

fn build(s: &Spec) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = s
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), LABELS[l]).unwrap())
        .collect();
    for (i, &(a, b, l)) in s.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[a], nodes[b], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_edge_pattern_matches_raw_edges(s in spec()) {
        let g = build(&s);
        let q = parse_query("MATCH (a:person)-[:rides]->(b) RETURN a, b").unwrap();
        let mut got: Vec<(String, String)> = execute(&g, &q)
            .into_iter()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        got.sort();
        // Ground truth directly from the graph (per-edge, so parallel
        // edges yield duplicate pairs — matching does too).
        let lg = g.labeled();
        let person = lg.sym("person");
        let rides = lg.sym("rides");
        let mut expected: Vec<(String, String)> = lg
            .base()
            .edges()
            .filter(|&e| Some(lg.edge_label(e)) == rides)
            .filter(|&e| Some(lg.node_label(lg.base().source(e))) == person)
            .map(|e| {
                let (a, b) = lg.base().endpoints(e);
                (lg.node_name(a).to_owned(), lg.node_name(b).to_owned())
            })
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn direction_reversal_is_an_involution(s in spec()) {
        let g = build(&s);
        let fwd = parse_query("MATCH (a)-[:contact]->(b) RETURN a, b").unwrap();
        let bwd = parse_query("MATCH (b)<-[:contact]-(a) RETURN a, b").unwrap();
        let mut f: Vec<_> = execute(&g, &fwd);
        let mut b: Vec<_> = execute(&g, &bwd);
        f.sort();
        b.sort();
        prop_assert_eq!(f, b);
    }

    #[test]
    fn two_hop_respects_edge_uniqueness(s in spec()) {
        let g = build(&s);
        let q = parse_query("MATCH (a)-[r:rides]->(b)<-[t:rides]-(c) RETURN r, t").unwrap();
        for row in execute(&g, &q) {
            prop_assert_ne!(&row[0], &row[1], "edge reused within one match");
        }
    }
}
