//! Fault injection through the Cypher executor (requires
//! `--features fault-injection`): an injected panic inside the governed
//! backtracking search must surface as a typed [`EvalError::Panic`] and
//! leave the shared query cache reusable.
#![cfg(feature = "fault-injection")]

use kgq_core::cache::QueryCache;
use kgq_core::govern::{fault, EvalError, Governor};
use kgq_cypher::{execute_cached, execute_governed, parse_query};
use kgq_graph::figures::figure2_property;

#[test]
fn injected_match_panic_is_typed_and_the_cache_survives() {
    let g = figure2_property();
    let q = parse_query("MATCH (p:person)-[:rides]->(b:bus) RETURN p, b").unwrap();
    let cache = QueryCache::new();
    let reference = execute_cached(&g, &q, &cache);

    fault::arm("cypher::match", fault::Action::Panic, 0);
    let err = execute_governed(&g, &q, &cache, &Governor::unlimited()).unwrap_err();
    fault::clear();
    match err {
        EvalError::Panic(msg) => assert!(msg.contains("injected fault at cypher::match")),
        other => panic!("expected a typed panic, got {other}"),
    }

    // The cache kept its compiled prefilter and the next run is correct.
    let again = execute_governed(&g, &q, &cache, &Governor::unlimited()).unwrap();
    assert!(!again.is_partial());
    assert_eq!(again.value, reference);
}
