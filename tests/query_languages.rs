//! Cross-language integration: the same questions asked in the path
//! language (RPQ), SPARQL-style BGPs, Cypher-style MATCH, first-order
//! logic and relational algebra all agree.

use kgq::core::{eval_pairs, parse_expr, LabeledView, PropertyView};
use kgq::cypher::{execute, parse_query};
use kgq::graph::generate::{contact_network, ContactParams};
use kgq::rdf::{labeled_to_rdf, Bgp, RDF_TYPE};
use kgq::relbase::rpq_join_pairs;

#[test]
fn exposure_query_in_four_languages() {
    let pg = contact_network(&ContactParams {
        people: 30,
        buses: 3,
        infected_fraction: 0.2,
        seed: 33,
        ..ContactParams::default()
    });

    // 1. RPQ over the property graph.
    let mut g = pg.clone();
    let expr = parse_expr(
        "?person/rides/?bus/rides^-/?infected",
        g.labeled_mut().consts_mut(),
    )
    .unwrap();
    let view = PropertyView::new(&g);
    let mut rpq: Vec<(String, String)> = eval_pairs(&view, &expr)
        .into_iter()
        .map(|(a, b)| {
            (
                g.labeled().node_name(a).to_owned(),
                g.labeled().node_name(b).to_owned(),
            )
        })
        .collect();
    rpq.sort();
    rpq.dedup();

    // 2. Cypher-style MATCH over the property graph.
    let q =
        parse_query("MATCH (p:person)-[:rides]->(b:bus), (i:infected)-[:rides]->(b) RETURN p, i")
            .unwrap();
    let mut cypher: Vec<(String, String)> = execute(&pg, &q)
        .into_iter()
        .map(|row| (row[0].clone(), row[1].clone()))
        .collect();
    cypher.sort();
    cypher.dedup();

    // 3. SPARQL-style BGP over the RDF projection.
    let mut st = labeled_to_rdf(pg.labeled());
    let mut bgp = Bgp::new();
    bgp.add(&mut st, "?p", RDF_TYPE, "person");
    bgp.add(&mut st, "?i", RDF_TYPE, "infected");
    bgp.add(&mut st, "?b", RDF_TYPE, "bus");
    bgp.add(&mut st, "?p", "rides", "?b");
    bgp.add(&mut st, "?i", "rides", "?b");
    let mut sparql: Vec<(String, String)> = bgp
        .solve(&st)
        .into_iter()
        .map(|b| {
            (
                st.term_str(b["p"]).to_owned(),
                st.term_str(b["i"]).to_owned(),
            )
        })
        .collect();
    sparql.sort();
    sparql.dedup();

    // 4. Relational algebra over the labeled view.
    let mut joins: Vec<(String, String)> = rpq_join_pairs(&view, &expr)
        .unwrap()
        .into_iter()
        .map(|(a, b)| {
            (
                g.labeled().node_name(a).to_owned(),
                g.labeled().node_name(b).to_owned(),
            )
        })
        .collect();
    joins.sort();
    joins.dedup();

    assert!(!rpq.is_empty(), "want a non-trivial instance");
    assert_eq!(rpq, cypher, "RPQ vs Cypher");
    assert_eq!(rpq, sparql, "RPQ vs BGP");
    assert_eq!(rpq, joins, "RPQ vs relational");
}

#[test]
fn property_conditions_agree_between_cypher_and_rpq() {
    let pg = kgq::graph::figures::figure2_property();
    // Dated contact: expression (3) vs MATCH/WHERE.
    let mut g = pg.clone();
    let expr = parse_expr(
        "?person/{contact & [date='3/4/21']}/?infected",
        g.labeled_mut().consts_mut(),
    )
    .unwrap();
    let view = PropertyView::new(&g);
    let mut rpq: Vec<(String, String)> = eval_pairs(&view, &expr)
        .into_iter()
        .map(|(a, b)| {
            (
                g.labeled().node_name(a).to_owned(),
                g.labeled().node_name(b).to_owned(),
            )
        })
        .collect();
    rpq.sort();

    let q = parse_query(
        "MATCH (p:person)-[c:contact]->(i:infected) WHERE c.date = '3/4/21' RETURN p, i",
    )
    .unwrap();
    let mut cypher: Vec<(String, String)> = execute(&pg, &q)
        .into_iter()
        .map(|row| (row[0].clone(), row[1].clone()))
        .collect();
    cypher.sort();

    assert_eq!(rpq, vec![("n4".to_owned(), "n6".to_owned())]);
    assert_eq!(rpq, cypher);
}

#[test]
fn labeled_view_also_supports_rpq_against_cypher() {
    let pg = kgq::graph::figures::figure2_property();
    let mut lg = pg.labeled().clone();
    let expr = parse_expr("?company/owns/?bus", lg.consts_mut()).unwrap();
    let view = LabeledView::new(&lg);
    let rpq = eval_pairs(&view, &expr);
    assert_eq!(rpq.len(), 1);

    let q = parse_query("MATCH (c:company)-[:owns]->(b:bus) RETURN c, b").unwrap();
    let rows = execute(&pg, &q);
    assert_eq!(rows, vec![vec!["n7".to_owned(), "n3".to_owned()]]);
}
