//! Cross-model integration: the three data models and the RDF
//! correspondence answer equivalent queries identically.

use kgq::core::{eval_pairs, parse_expr, LabeledView, PropertyView, VectorView};
use kgq::graph::convert::{property_to_vector, vector_to_property};
use kgq::graph::figures::{figure2_labeled, figure2_property, figure2_vector};
use kgq::graph::generate::{contact_network, ContactParams};
use kgq::graph::io::{read_property, write_property};
use kgq::rdf::{labeled_to_rdf, parse_ntriples, rdf_to_labeled, write_ntriples};

#[test]
fn label_queries_agree_across_all_three_models() {
    let mut lg = figure2_labeled();
    let mut pg = figure2_property();
    let mut vg = figure2_vector();
    for text in [
        "?person/rides/?bus/rides^-/?infected",
        "(contact)*",
        "?person/(lives + contact)/?infected",
        "rides/{!rides & !lives}^-",
    ] {
        let e1 = parse_expr(text, lg.consts_mut()).unwrap();
        let e2 = parse_expr(text, pg.labeled_mut().consts_mut()).unwrap();
        let e3 = parse_expr(text, vg.consts_mut()).unwrap();
        let a = eval_pairs(&LabeledView::new(&lg), &e1);
        let b = eval_pairs(&PropertyView::new(&pg), &e2);
        let c = eval_pairs(&VectorView::new(&vg), &e3);
        assert_eq!(a, b, "{text}: labeled vs property");
        assert_eq!(a, c, "{text}: labeled vs vector (f1 fallback)");
    }
}

#[test]
fn property_and_feature_tests_agree_after_vectorization() {
    let mut pg = figure2_property();
    let e_prop = parse_expr(
        "?person/{contact & [date='3/4/21']}/?infected",
        pg.labeled_mut().consts_mut(),
    )
    .unwrap();
    let prop_answers = eval_pairs(&PropertyView::new(&pg), &e_prop);

    let mut vg = property_to_vector(&pg).unwrap();
    let date_col = vg.feature_names().iter().position(|n| n == "date").unwrap() + 1;
    let text = format!("?[#1=person]/{{[#1=contact] & [#{date_col}='3/4/21']}}/?[#1=infected]");
    let e_feat = parse_expr(&text, vg.consts_mut()).unwrap();
    let feat_answers = eval_pairs(&VectorView::new(&vg), &e_feat);
    assert_eq!(prop_answers, feat_answers);
    assert!(!prop_answers.is_empty(), "expression (3) has an answer");
}

#[test]
fn full_round_trip_text_vector_rdf() {
    let pg = contact_network(&ContactParams {
        people: 20,
        seed: 6,
        ..ContactParams::default()
    });
    // Text format round trip.
    let text = write_property(&pg);
    let back = read_property(&text).unwrap();
    assert_eq!(back.node_count(), pg.node_count());
    assert_eq!(back.edge_count(), pg.edge_count());

    // Vector round trip preserves σ.
    let vg = property_to_vector(&pg).unwrap();
    let back2 = vector_to_property(&vg).unwrap();
    for n in pg.labeled().base().nodes() {
        for prop in ["name", "age", "zip"] {
            assert_eq!(back2.node_prop_str(n, prop), pg.node_prop_str(n, prop));
        }
    }

    // RDF round trip preserves query answers on the labeled projection.
    let mut lg = pg.into_labeled();
    let st = labeled_to_rdf(&lg);
    let nt = write_ntriples(&st);
    let st2 = parse_ntriples(&nt).unwrap();
    let mut lg2 = rdf_to_labeled(&st2).unwrap();
    let e1 = parse_expr("?person/rides/?bus/rides^-/?infected", lg.consts_mut()).unwrap();
    let e2 = parse_expr("?person/rides/?bus/rides^-/?infected", lg2.consts_mut()).unwrap();
    let a1: Vec<String> = eval_pairs(&LabeledView::new(&lg), &e1)
        .into_iter()
        .map(|(s, t)| format!("{}->{}", lg.node_name(s), lg.node_name(t)))
        .collect();
    let mut a2: Vec<String> = eval_pairs(&LabeledView::new(&lg2), &e2)
        .into_iter()
        .map(|(s, t)| format!("{}->{}", lg2.node_name(s), lg2.node_name(t)))
        .collect();
    let mut a1 = a1;
    a1.sort();
    a2.sort();
    // RDF collapses parallel same-label edges, but pair-level answers to
    // this expression survive (deduplicated semantics).
    assert_eq!(a1, a2);
}
