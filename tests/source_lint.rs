//! In-repo source lints, run as tier-1 tests and in CI.
//!
//! Seven invariants over `crates/*/src`, enforced with std-only file
//! walking (no extra dependencies):
//!
//! 1. **unwrap/expect ratchet** — non-test library code must not grow
//!    new `.unwrap()` / `.expect("…")` sites. Pre-existing sites are
//!    grandfathered in a per-file baseline that may only shrink; files
//!    not listed are held at zero.
//! 2. **fault-site registry** — every fault-injection site name used by
//!    `fault_point!` / `fault::hit` / `fault::starved` / `io_fault!`
//!    appears exactly once in `docs/FAULT_SITES.md`, and the registry
//!    lists no phantom sites.
//! 3. **doc coverage** — every `pub fn` in `kgq-core`'s `analyze` and
//!    `govern` modules carries a doc comment.
//! 4. **durable-path strictness** — `kgq-store` shipping code may never
//!    unwrap or expect anything: every `std::io` result on the write
//!    path must be propagated, because a swallowed I/O error there is
//!    silent data loss. Unlike the general ratchet, no baseline entry
//!    can ever admit one.
//! 5. **unsafe audit ratchet** — `unsafe` is confined to the mmap'd
//!    segment reader, with a per-file exact count: new sites anywhere
//!    else fail, and removing one in `mmap.rs` requires ratcheting the
//!    baseline down so it cannot silently return.
//! 6. **lock-order monotonicity** — every lock acquisition in the
//!    server crate carries a rank, and a static walk of the acquisition
//!    sites proves ranks never decrease while earlier guards are live,
//!    so the documented order is deadlock-free by construction.
//! 7. **analyzer coverage** — every query entrypoint (CLI subcommands,
//!    engine evaluators, the server executor) routes through a static
//!    analyzer before executing; dropping the consult fails tier-1.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Per-file allowance of `.unwrap()` / `.expect("` sites in non-test
/// code. The ratchet only turns one way: counts here may go down (and
/// the entry must then be updated) but never up, and unlisted files are
/// allowed zero.
const UNWRAP_BASELINE: &[(&str, usize)] = &[
    ("crates/analytics/src/community.rs", 2),
    ("crates/analytics/src/components.rs", 1),
    ("crates/analytics/src/kcore.rs", 1),
    ("crates/analytics/src/weighted.rs", 1),
    ("crates/bench/src/bin/exp_bcr.rs", 8),
    ("crates/bench/src/bin/exp_bgp.rs", 2),
    ("crates/bench/src/bin/exp_count.rs", 2),
    ("crates/bench/src/bin/exp_embed.rs", 1),
    ("crates/bench/src/bin/exp_enum.rs", 2),
    ("crates/bench/src/bin/exp_fig2.rs", 4),
    ("crates/bench/src/bin/exp_fpras.rs", 2),
    ("crates/bench/src/bin/exp_gen.rs", 3),
    ("crates/bench/src/bin/exp_govern.rs", 11),
    ("crates/bench/src/bin/exp_joins.rs", 4),
    ("crates/bench/src/bin/exp_kernel.rs", 3),
    ("crates/bench/src/bin/exp_logic.rs", 3),
    ("crates/bench/src/bin/exp_parallel.rs", 1),
    ("crates/bench/src/bin/exp_rdf.rs", 2),
    ("crates/bench/src/bin/exp_wl_gnn.rs", 5),
    ("crates/bench/src/lib.rs", 1),
    ("crates/biblio/src/analysis.rs", 2),
    ("crates/core/src/approx.rs", 1),
    ("crates/core/src/enumerate.rs", 5),
    ("crates/core/src/gen.rs", 2),
    ("crates/core/src/govern.rs", 5),
    ("crates/core/src/path.rs", 1),
    ("crates/embed/src/model.rs", 2),
    ("crates/gnn/src/train.rs", 1),
    ("crates/graph/src/figures.rs", 17),
    ("crates/graph/src/generate.rs", 31),
    ("crates/graph/src/io.rs", 1),
    ("crates/graph/src/subgraph.rs", 8),
    ("crates/graph/src/sym.rs", 1),
    ("crates/logic/src/eval.rs", 2),
    ("crates/rdf/src/bgp.rs", 1),
    ("crates/rdf/src/ntriples.rs", 1),
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable directory") {
        let p = entry.expect("directory entry").path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every `.rs` file under `crates/*/src`, sorted for stable output.
fn crate_sources() -> Vec<PathBuf> {
    let mut out = Vec::new();
    for entry in fs::read_dir(repo_root().join("crates")).expect("crates/ directory") {
        let src = entry.expect("directory entry").path().join("src");
        if src.is_dir() {
            walk(&src, &mut out);
        }
    }
    out.sort();
    out
}

fn rel(path: &Path) -> String {
    path.strip_prefix(repo_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The file's lines with `#[cfg(test)] mod …` blocks removed (matched by
/// brace counting), so the lints apply to shipping code only.
fn non_test_lines(src: &str) -> Vec<&str> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            // The attribute may be followed by further attributes before
            // the `mod` line; only a mod block is skipped wholesale.
            let mut j = i + 1;
            while j < lines.len()
                && j <= i + 3
                && !lines[j].trim_start().starts_with("mod ")
                && !lines[j].trim_start().starts_with("pub mod ")
            {
                j += 1;
            }
            let is_mod = j < lines.len()
                && (lines[j].trim_start().starts_with("mod ")
                    || lines[j].trim_start().starts_with("pub mod "));
            if is_mod {
                let mut depth = 0i64;
                let mut started = false;
                let mut k = j;
                while k < lines.len() {
                    for ch in lines[k].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                started = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if started && depth == 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        out.push(lines[i]);
        i += 1;
    }
    out
}

/// `.unwrap()` / `.expect("` sites on a line, ignoring `//` comments.
/// Matching `.expect(` with the opening quote keeps parser methods named
/// `expect` (token expectation) out of the count.
fn unwrap_sites(line: &str) -> usize {
    let code = line.split("//").next().unwrap_or("");
    code.matches(".unwrap()").count() + code.matches(".expect(\"").count()
}

#[test]
fn unwrap_expect_ratchet_only_turns_down() {
    let baseline: BTreeMap<&str, usize> = UNWRAP_BASELINE.iter().copied().collect();
    let mut problems = Vec::new();
    let mut seen = BTreeSet::new();
    for path in crate_sources() {
        let file = rel(&path);
        let src = fs::read_to_string(&path).expect("readable source file");
        let count: usize = non_test_lines(&src).iter().map(|l| unwrap_sites(l)).sum();
        seen.insert(file.clone());
        let allowed = baseline.get(file.as_str()).copied().unwrap_or(0);
        if count > allowed {
            problems.push(format!(
                "{file}: {count} unwrap/expect sites in non-test code (baseline allows \
                 {allowed}); handle the error instead of panicking"
            ));
        } else if count < allowed {
            problems.push(format!(
                "{file}: only {count} unwrap/expect sites remain but the baseline allows \
                 {allowed}; ratchet UNWRAP_BASELINE down so they cannot come back"
            ));
        }
    }
    for file in baseline.keys() {
        if !seen.contains(*file) {
            problems.push(format!(
                "{file}: listed in UNWRAP_BASELINE but no such source file exists; \
                 remove the stale entry"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// The durable write path refuses the grandfather clause: a panic on an
/// I/O error in `kgq-store` would turn a recoverable torn write into
/// data loss, so its shipping code is held at zero unwrap/expect sites
/// unconditionally — adding a `crates/store/…` UNWRAP_BASELINE entry
/// does not help, this test ignores the baseline entirely.
#[test]
fn store_never_unwraps_io_results() {
    let mut problems = Vec::new();
    for path in crate_sources() {
        let file = rel(&path);
        if !file.starts_with("crates/store/src") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable source file");
        let count: usize = non_test_lines(&src).iter().map(|l| unwrap_sites(l)).sum();
        if count > 0 {
            problems.push(format!(
                "{file}: {count} unwrap/expect site(s) in durable-store shipping code; \
                 propagate the io::Result instead (a panic here loses committed data)"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// Fault-site names invoked in source: `fault_point!("…")`,
/// `fault::hit("…")`, `fault::starved("…")`, `io_fault!("…")`.
fn fault_names_in(src: &str) -> Vec<String> {
    let mut names = Vec::new();
    for pat in [
        "fault_point!(\"",
        "fault::hit(\"",
        "fault::starved(\"",
        "io_fault!(\"",
    ] {
        let mut rest = src;
        while let Some(i) = rest.find(pat) {
            let tail = &rest[i + pat.len()..];
            if let Some(j) = tail.find('"') {
                names.push(tail[..j].to_string());
            }
            rest = &rest[i + pat.len()..];
        }
    }
    names
}

#[test]
fn fault_site_registry_is_complete_and_exact() {
    // Collect the distinct site names used anywhere in library sources
    // (one name may mark several code sites, e.g. `eval::bfs`).
    let mut used = BTreeSet::new();
    for path in crate_sources() {
        let src = fs::read_to_string(&path).expect("readable source file");
        for name in fault_names_in(&src) {
            used.insert(name);
        }
    }
    assert!(
        !used.is_empty(),
        "no fault-injection sites found; the scan patterns are stale"
    );

    let registry_path = repo_root().join("docs/FAULT_SITES.md");
    let registry = fs::read_to_string(&registry_path).expect("docs/FAULT_SITES.md exists");
    // Registry names are the backticked `module::site` tokens.
    let mut listed: BTreeMap<String, usize> = BTreeMap::new();
    let mut rest = registry.as_str();
    while let Some(i) = rest.find('`') {
        let tail = &rest[i + 1..];
        let Some(j) = tail.find('`') else { break };
        let token = &tail[..j];
        if token.contains("::")
            && token
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ':' || c == '_')
        {
            *listed.entry(token.to_string()).or_insert(0) += 1;
        }
        rest = &tail[j + 1..];
    }

    let mut problems = Vec::new();
    for name in &used {
        match listed.get(name).copied().unwrap_or(0) {
            1 => {}
            0 => problems.push(format!(
                "fault site `{name}` is used in source but missing from docs/FAULT_SITES.md"
            )),
            n => problems.push(format!(
                "fault site `{name}` appears {n} times in docs/FAULT_SITES.md; exactly once required"
            )),
        }
    }
    for name in listed.keys() {
        if !used.contains(name) {
            problems.push(format!(
                "docs/FAULT_SITES.md lists `{name}` but no source site uses it"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// `pub fn`s of `lines` (as produced by [`non_test_lines`]) that carry
/// no `///` doc comment, looking back across attribute lines.
fn undocumented_pub_fns(lines: &[&str]) -> Vec<String> {
    let mut missing = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        let is_fn = t.starts_with("pub fn ")
            || t.starts_with("pub const fn ")
            || t.starts_with("pub unsafe fn ");
        if !is_fn {
            continue;
        }
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            let prev = lines[j - 1].trim_start();
            // Look through attributes (including multi-line tails).
            if prev.starts_with("#[") || prev.starts_with("#![") || prev.ends_with(")]") {
                j -= 1;
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("//!");
            break;
        }
        if !documented {
            let name = t
                .split("fn ")
                .nth(1)
                .and_then(|s| s.split(['(', '<']).next())
                .unwrap_or(t);
            missing.push(name.to_string());
        }
    }
    missing
}

#[test]
fn analyze_and_govern_pub_fns_are_documented() {
    let mut problems = Vec::new();
    for file in ["crates/core/src/analyze.rs", "crates/core/src/govern.rs"] {
        let src = fs::read_to_string(repo_root().join(file)).expect("readable source file");
        for name in undocumented_pub_fns(&non_test_lines(&src)) {
            problems.push(format!("{file}: pub fn `{name}` has no doc comment"));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// Per-file allowance of `unsafe` sites (`unsafe {`, `unsafe fn`,
/// `unsafe impl`, `unsafe extern`) in non-test code. `unsafe` lives
/// only in the mmap'd segment reader, each site carrying a safety
/// comment; the count is exact in both directions so a removed site
/// cannot silently come back, and unlisted files are held at zero.
const UNSAFE_BASELINE: &[(&str, usize)] = &[("crates/store/src/mmap.rs", 6)];

/// Keyword-form `unsafe` sites on a line, ignoring `//` comments. The
/// four forms cover every way the keyword enters shipping code; prose
/// uses of the word (diagnostic codes like `unsafe-rule`) don't match.
fn unsafe_sites(line: &str) -> usize {
    let code = line.split("//").next().unwrap_or("");
    ["unsafe {", "unsafe fn", "unsafe impl", "unsafe extern"]
        .iter()
        .map(|p| code.matches(p).count())
        .sum()
}

#[test]
fn unsafe_audit_ratchet_is_exact() {
    let baseline: BTreeMap<&str, usize> = UNSAFE_BASELINE.iter().copied().collect();
    let mut problems = Vec::new();
    let mut seen = BTreeSet::new();
    for path in crate_sources() {
        let file = rel(&path);
        let src = fs::read_to_string(&path).expect("readable source file");
        let count: usize = non_test_lines(&src).iter().map(|l| unsafe_sites(l)).sum();
        seen.insert(file.clone());
        let allowed = baseline.get(file.as_str()).copied().unwrap_or(0);
        if count > allowed {
            problems.push(format!(
                "{file}: {count} unsafe site(s) in non-test code (audit baseline allows \
                 {allowed}); keep unsafe confined to the audited mmap reader, or extend \
                 UNSAFE_BASELINE after review with a safety comment on every site"
            ));
        } else if count < allowed {
            problems.push(format!(
                "{file}: only {count} unsafe site(s) remain but the audit baseline expects \
                 {allowed}; ratchet UNSAFE_BASELINE down so removed sites cannot return"
            ));
        }
    }
    for file in baseline.keys() {
        if !seen.contains(*file) {
            problems.push(format!(
                "{file}: listed in UNSAFE_BASELINE but no such source file exists; \
                 remove the stale entry"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// The server crate's lock-rank table: `(normalized pattern, rank,
/// name)`. Patterns match against comment-stripped, whitespace-free
/// non-test source text, so multi-line acquisitions normalize to one
/// token. A thread may only acquire a lock whose rank is **≥** every
/// rank it already holds. Equal ranks almost never nest; the one
/// sanctioned case is the planner-sketch mutex, which shares the store
/// rank and is only ever taken while the store guard is already held
/// (the store lock is never acquired under it, so the pair stays
/// acyclic):
///
/// durable(0) < graph(1) < schema(2) < store(3) = sketches(3) <
/// sched(4) < conns(5) < reader_handles(6) < writer(7) <
/// shutdown_requested(8) < latencies(9)
const LOCK_RANKS: &[(&str, u32, &str)] = &[
    ("durable.lock()", 0, "durable"),
    ("|m|m.lock()", 0, "durable"),
    ("self.durable_lock()", 0, "durable"),
    ("self.graph.read()", 1, "graph"),
    ("self.graph.write()", 1, "graph"),
    ("self.graph_read()", 1, "graph"),
    ("self.graph_write()", 1, "graph"),
    ("self.schema.lock()", 2, "schema"),
    ("self.schema_summary(", 2, "schema"),
    ("self.store.read()", 3, "store"),
    ("self.store.write()", 3, "store"),
    ("self.store_read()", 3, "store"),
    ("self.store_write()", 3, "store"),
    ("self.sketches.lock()", 3, "sketches"),
    ("self.store_sketch(", 3, "sketches"),
    ("self.inner.lock()", 4, "sched"),
    ("self.lock()", 4, "sched"),
    (".conns.lock()", 5, "conns"),
    (".reader_handles.lock()", 6, "reader_handles"),
    (".writer.lock()", 7, "writer"),
    (".shutdown_requested.lock()", 8, "shutdown_requested"),
    (".latencies_us.lock()", 9, "latencies"),
];

/// Static lock-order violations in one file's source text.
///
/// The model: strip comments and all whitespace from non-test lines,
/// walk the result character by character tracking brace depth, and
/// keep a stack of live guards `(depth, rank, name)`. A guard is
/// considered live until the brace depth drops below its acquisition
/// depth (a conservative over-approximation of Rust guard lifetimes —
/// temporaries dropped at statement end stay "live" to the block's
/// close, which only makes the lint stricter). Acquiring a rank lower
/// than the top of the stack is a violation. Separately, every bare
/// zero-arg `.lock()` / `.read()` / `.write()` must fall inside some
/// ranked pattern match, so an unranked acquisition cannot dodge the
/// walk.
fn lock_order_violations(file: &str, src: &str) -> Vec<String> {
    let mut text = String::new();
    for line in non_test_lines(src) {
        let code = line.split("//").next().unwrap_or("");
        text.extend(code.chars().filter(|c| !c.is_whitespace()));
    }

    // All ranked-pattern match spans, sorted by start position.
    let mut matches: Vec<(usize, usize, u32, &str)> = Vec::new();
    for (pat, rank, name) in LOCK_RANKS {
        let mut from = 0;
        while let Some(i) = text[from..].find(pat) {
            let start = from + i;
            matches.push((start, start + pat.len(), *rank, name));
            from = start + 1;
        }
    }
    matches.sort();

    let mut problems = Vec::new();

    // Coverage: no bare acquisition outside a ranked span.
    for bare in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(i) = text[from..].find(bare) {
            let pos = from + i;
            if !matches.iter().any(|&(s, e, _, _)| s <= pos && pos < e) {
                let ctx = pos.saturating_sub(24);
                problems.push(format!(
                    "{file}: unranked lock acquisition `…{}`; add it to LOCK_RANKS",
                    &text[ctx..(pos + bare.len()).min(text.len())]
                ));
            }
            from = pos + 1;
        }
    }

    // Monotone walk with a live-guard stack.
    let mut stack: Vec<(i64, u32, &str)> = Vec::new();
    let mut depth = 0i64;
    let mut mi = 0;
    for (i, b) in text.bytes().enumerate() {
        while mi < matches.len() && matches[mi].0 == i {
            let (_, _, rank, name) = matches[mi];
            if let Some(&(_, top_rank, top_name)) = stack.last() {
                if rank < top_rank {
                    problems.push(format!(
                        "{file}: lock `{name}` (rank {rank}) acquired while `{top_name}` \
                         (rank {top_rank}) may be held; acquisitions must follow the \
                         LOCK_RANKS order to stay deadlock-free"
                    ));
                }
            }
            stack.push((depth, rank, name));
            mi += 1;
        }
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                while stack.last().is_some_and(|&(d, _, _)| d > depth) {
                    stack.pop();
                }
            }
            _ => {}
        }
    }
    problems
}

#[test]
fn lock_order_walker_detects_inversions() {
    // Inverted: writer (7) held across a conns (5) acquisition.
    let bad = "fn broken(&self) {\n    let w = self.writer.lock().unwrap();\n    \
               let c = self.conns.lock().unwrap();\n}\n";
    let found = lock_order_violations("synthetic.rs", bad);
    assert!(
        found
            .iter()
            .any(|p| p.contains("rank 5") && p.contains("rank 7")),
        "walker missed a rank inversion: {found:?}"
    );
    // The same pair in a sound order, in disjoint scopes.
    let good = "fn fine(&self) {\n    { let c = self.conns.lock().unwrap(); }\n    \
                { let w = self.writer.lock().unwrap(); }\n}\n";
    assert!(lock_order_violations("synthetic.rs", good).is_empty());
    // An acquisition no rank pattern covers is flagged, not ignored.
    let unranked = "fn sneaky(&self) { let g = self.mystery.lock().unwrap(); }\n";
    let found = lock_order_violations("synthetic.rs", unranked);
    assert!(
        found.iter().any(|p| p.contains("unranked")),
        "walker missed an unranked acquisition: {found:?}"
    );
}

#[test]
fn serve_lock_acquisitions_follow_the_rank_order() {
    let mut problems = Vec::new();
    let mut ranked_sites = 0usize;
    for path in crate_sources() {
        let file = rel(&path);
        if !file.starts_with("crates/serve/src") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable source file");
        let mut text = String::new();
        for line in non_test_lines(&src) {
            let code = line.split("//").next().unwrap_or("");
            text.extend(code.chars().filter(|c| !c.is_whitespace()));
        }
        ranked_sites += LOCK_RANKS
            .iter()
            .map(|(pat, _, _)| text.matches(pat).count())
            .sum::<usize>();
        problems.extend(lock_order_violations(&file, &src));
    }
    assert!(
        ranked_sites >= 10,
        "only {ranked_sites} ranked lock sites found in crates/serve/src; \
         the LOCK_RANKS patterns are stale"
    );
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// The analyzer-coverage registry: `(file, fn name, tokens)` — every
/// listed function body must contain **all** of its tokens. The list
/// pins each query entrypoint to the static-analysis consult it is
/// required to make before (or instead of) executing:
///
/// - CLI subcommands in `src/main.rs` either call an analyzer directly
///   or route through library evaluators that do;
/// - the engine evaluators (`kgq-rdf`, `kgq-cypher`, `kgq-logic`)
///   consult their analyzers on every governed and ungoverned path the
///   CLI and server reach;
/// - the LFTJ executor independently re-verifies planner output;
/// - the server executor analyzes every query verb it dispatches.
const ANALYZER_COVERAGE: &[(&str, &str, &[&str])] = &[
    ("src/main.rs", "cmd_query", &["analyze_expr("]),
    (
        "src/main.rs",
        "cmd_cypher",
        &["analyze_query(", "execute_cached(", "execute_governed("],
    ),
    (
        "src/main.rs",
        "cmd_sparql",
        &[
            "rdf::explain_select(",
            "rdf::select(",
            "rdf::select_governed(",
        ],
    ),
    (
        "src/main.rs",
        "cmd_rdf",
        &["rdf::rpq_pairs(", "rdf::select("],
    ),
    (
        "src/main.rs",
        "cmd_analyze",
        &[
            "analyze_expr(",
            "analyze_query(",
            "explain_parsed(",
            "analyze_program(",
        ],
    ),
    (
        "crates/cypher/src/exec.rs",
        "execute_cached",
        &["analyze_query("],
    ),
    (
        "crates/cypher/src/exec.rs",
        "execute_governed",
        &["analyze_query("],
    ),
    ("crates/rdf/src/sparql.rs", "select", &["analyze_bgp("]),
    (
        "crates/rdf/src/sparql.rs",
        "select_governed",
        &["select_governed_with("],
    ),
    (
        "crates/rdf/src/sparql.rs",
        "select_governed_with",
        &["analyze_bgp("],
    ),
    (
        "crates/rdf/src/sparql.rs",
        "explain_parsed",
        &["analyze_bgp("],
    ),
    ("crates/rdf/src/query.rs", "rpq_pairs", &["analyze_expr("]),
    ("crates/rdf/src/query.rs", "rpq_starts", &["analyze_expr("]),
    ("crates/rdf/src/lftj.rs", "run", &["verify_plan("]),
    (
        "crates/logic/src/rules.rs",
        "fixpoint",
        &["analyze_program("],
    ),
    (
        "crates/logic/src/rules.rs",
        "fixpoint_governed",
        &["analyze_program("],
    ),
    ("crates/serve/src/exec.rs", "run_rpq", &["analyze_expr("]),
    (
        "crates/serve/src/exec.rs",
        "run_cypher",
        &["analyze_query("],
    ),
    ("crates/serve/src/exec.rs", "run_sparql", &["analyze_bgp("]),
    (
        "crates/serve/src/exec.rs",
        "run_analyze",
        &[
            "analyze_expr(",
            "analyze_query(",
            "explain_parsed(",
            "analyze_program(",
        ],
    ),
];

/// The body of `fn NAME` in `lines` (first definition, matched by brace
/// counting from the signature line), or `None` if no such fn exists.
fn fn_body(lines: &[&str], name: &str) -> Option<String> {
    let sig_paren = format!("fn {name}(");
    let sig_generic = format!("fn {name}<");
    let start = lines
        .iter()
        .position(|l| l.contains(&sig_paren) || l.contains(&sig_generic))?;
    let mut depth = 0i64;
    let mut started = false;
    let mut body = String::new();
    for line in &lines[start..] {
        body.push_str(line);
        body.push('\n');
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            break;
        }
    }
    Some(body)
}

#[test]
fn every_query_entrypoint_consults_an_analyzer() {
    let mut problems = Vec::new();
    for (file, func, tokens) in ANALYZER_COVERAGE {
        let src = fs::read_to_string(repo_root().join(file)).expect("readable source file");
        let lines = non_test_lines(&src);
        let Some(body) = fn_body(&lines, func) else {
            problems.push(format!(
                "{file}: fn `{func}` not found; update ANALYZER_COVERAGE to track \
                 where this entrypoint moved"
            ));
            continue;
        };
        for token in *tokens {
            if !body.contains(token) {
                problems.push(format!(
                    "{file}: fn `{func}` no longer routes through `{token}`; every query \
                     entrypoint must consult its static analyzer before executing"
                ));
            }
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}
