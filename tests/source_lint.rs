//! In-repo source lints, run as tier-1 tests and in CI.
//!
//! Four invariants over `crates/*/src`, enforced with std-only file
//! walking (no extra dependencies):
//!
//! 1. **unwrap/expect ratchet** — non-test library code must not grow
//!    new `.unwrap()` / `.expect("…")` sites. Pre-existing sites are
//!    grandfathered in a per-file baseline that may only shrink; files
//!    not listed are held at zero.
//! 2. **fault-site registry** — every fault-injection site name used by
//!    `fault_point!` / `fault::hit` / `fault::starved` / `io_fault!`
//!    appears exactly once in `docs/FAULT_SITES.md`, and the registry
//!    lists no phantom sites.
//! 3. **doc coverage** — every `pub fn` in `kgq-core`'s `analyze` and
//!    `govern` modules carries a doc comment.
//! 4. **durable-path strictness** — `kgq-store` shipping code may never
//!    unwrap or expect anything: every `std::io` result on the write
//!    path must be propagated, because a swallowed I/O error there is
//!    silent data loss. Unlike the general ratchet, no baseline entry
//!    can ever admit one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Per-file allowance of `.unwrap()` / `.expect("` sites in non-test
/// code. The ratchet only turns one way: counts here may go down (and
/// the entry must then be updated) but never up, and unlisted files are
/// allowed zero.
const UNWRAP_BASELINE: &[(&str, usize)] = &[
    ("crates/analytics/src/community.rs", 2),
    ("crates/analytics/src/components.rs", 1),
    ("crates/analytics/src/kcore.rs", 1),
    ("crates/analytics/src/weighted.rs", 1),
    ("crates/bench/src/bin/exp_bcr.rs", 8),
    ("crates/bench/src/bin/exp_bgp.rs", 2),
    ("crates/bench/src/bin/exp_count.rs", 2),
    ("crates/bench/src/bin/exp_embed.rs", 1),
    ("crates/bench/src/bin/exp_enum.rs", 2),
    ("crates/bench/src/bin/exp_fig2.rs", 4),
    ("crates/bench/src/bin/exp_fpras.rs", 2),
    ("crates/bench/src/bin/exp_gen.rs", 3),
    ("crates/bench/src/bin/exp_govern.rs", 11),
    ("crates/bench/src/bin/exp_joins.rs", 4),
    ("crates/bench/src/bin/exp_kernel.rs", 3),
    ("crates/bench/src/bin/exp_logic.rs", 3),
    ("crates/bench/src/bin/exp_parallel.rs", 1),
    ("crates/bench/src/bin/exp_rdf.rs", 2),
    ("crates/bench/src/bin/exp_wl_gnn.rs", 5),
    ("crates/bench/src/lib.rs", 1),
    ("crates/biblio/src/analysis.rs", 2),
    ("crates/core/src/approx.rs", 1),
    ("crates/core/src/enumerate.rs", 5),
    ("crates/core/src/gen.rs", 2),
    ("crates/core/src/govern.rs", 5),
    ("crates/core/src/path.rs", 1),
    ("crates/embed/src/model.rs", 2),
    ("crates/gnn/src/train.rs", 1),
    ("crates/graph/src/figures.rs", 17),
    ("crates/graph/src/generate.rs", 31),
    ("crates/graph/src/io.rs", 1),
    ("crates/graph/src/subgraph.rs", 8),
    ("crates/graph/src/sym.rs", 1),
    ("crates/logic/src/eval.rs", 2),
    ("crates/rdf/src/bgp.rs", 1),
    ("crates/rdf/src/ntriples.rs", 1),
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable directory") {
        let p = entry.expect("directory entry").path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Every `.rs` file under `crates/*/src`, sorted for stable output.
fn crate_sources() -> Vec<PathBuf> {
    let mut out = Vec::new();
    for entry in fs::read_dir(repo_root().join("crates")).expect("crates/ directory") {
        let src = entry.expect("directory entry").path().join("src");
        if src.is_dir() {
            walk(&src, &mut out);
        }
    }
    out.sort();
    out
}

fn rel(path: &Path) -> String {
    path.strip_prefix(repo_root())
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The file's lines with `#[cfg(test)] mod …` blocks removed (matched by
/// brace counting), so the lints apply to shipping code only.
fn non_test_lines(src: &str) -> Vec<&str> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            // The attribute may be followed by further attributes before
            // the `mod` line; only a mod block is skipped wholesale.
            let mut j = i + 1;
            while j < lines.len()
                && j <= i + 3
                && !lines[j].trim_start().starts_with("mod ")
                && !lines[j].trim_start().starts_with("pub mod ")
            {
                j += 1;
            }
            let is_mod = j < lines.len()
                && (lines[j].trim_start().starts_with("mod ")
                    || lines[j].trim_start().starts_with("pub mod "));
            if is_mod {
                let mut depth = 0i64;
                let mut started = false;
                let mut k = j;
                while k < lines.len() {
                    for ch in lines[k].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                started = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if started && depth == 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        out.push(lines[i]);
        i += 1;
    }
    out
}

/// `.unwrap()` / `.expect("` sites on a line, ignoring `//` comments.
/// Matching `.expect(` with the opening quote keeps parser methods named
/// `expect` (token expectation) out of the count.
fn unwrap_sites(line: &str) -> usize {
    let code = line.split("//").next().unwrap_or("");
    code.matches(".unwrap()").count() + code.matches(".expect(\"").count()
}

#[test]
fn unwrap_expect_ratchet_only_turns_down() {
    let baseline: BTreeMap<&str, usize> = UNWRAP_BASELINE.iter().copied().collect();
    let mut problems = Vec::new();
    let mut seen = BTreeSet::new();
    for path in crate_sources() {
        let file = rel(&path);
        let src = fs::read_to_string(&path).expect("readable source file");
        let count: usize = non_test_lines(&src).iter().map(|l| unwrap_sites(l)).sum();
        seen.insert(file.clone());
        let allowed = baseline.get(file.as_str()).copied().unwrap_or(0);
        if count > allowed {
            problems.push(format!(
                "{file}: {count} unwrap/expect sites in non-test code (baseline allows \
                 {allowed}); handle the error instead of panicking"
            ));
        } else if count < allowed {
            problems.push(format!(
                "{file}: only {count} unwrap/expect sites remain but the baseline allows \
                 {allowed}; ratchet UNWRAP_BASELINE down so they cannot come back"
            ));
        }
    }
    for file in baseline.keys() {
        if !seen.contains(*file) {
            problems.push(format!(
                "{file}: listed in UNWRAP_BASELINE but no such source file exists; \
                 remove the stale entry"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// The durable write path refuses the grandfather clause: a panic on an
/// I/O error in `kgq-store` would turn a recoverable torn write into
/// data loss, so its shipping code is held at zero unwrap/expect sites
/// unconditionally — adding a `crates/store/…` UNWRAP_BASELINE entry
/// does not help, this test ignores the baseline entirely.
#[test]
fn store_never_unwraps_io_results() {
    let mut problems = Vec::new();
    for path in crate_sources() {
        let file = rel(&path);
        if !file.starts_with("crates/store/src") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable source file");
        let count: usize = non_test_lines(&src).iter().map(|l| unwrap_sites(l)).sum();
        if count > 0 {
            problems.push(format!(
                "{file}: {count} unwrap/expect site(s) in durable-store shipping code; \
                 propagate the io::Result instead (a panic here loses committed data)"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// Fault-site names invoked in source: `fault_point!("…")`,
/// `fault::hit("…")`, `fault::starved("…")`, `io_fault!("…")`.
fn fault_names_in(src: &str) -> Vec<String> {
    let mut names = Vec::new();
    for pat in [
        "fault_point!(\"",
        "fault::hit(\"",
        "fault::starved(\"",
        "io_fault!(\"",
    ] {
        let mut rest = src;
        while let Some(i) = rest.find(pat) {
            let tail = &rest[i + pat.len()..];
            if let Some(j) = tail.find('"') {
                names.push(tail[..j].to_string());
            }
            rest = &rest[i + pat.len()..];
        }
    }
    names
}

#[test]
fn fault_site_registry_is_complete_and_exact() {
    // Collect the distinct site names used anywhere in library sources
    // (one name may mark several code sites, e.g. `eval::bfs`).
    let mut used = BTreeSet::new();
    for path in crate_sources() {
        let src = fs::read_to_string(&path).expect("readable source file");
        for name in fault_names_in(&src) {
            used.insert(name);
        }
    }
    assert!(
        !used.is_empty(),
        "no fault-injection sites found; the scan patterns are stale"
    );

    let registry_path = repo_root().join("docs/FAULT_SITES.md");
    let registry = fs::read_to_string(&registry_path).expect("docs/FAULT_SITES.md exists");
    // Registry names are the backticked `module::site` tokens.
    let mut listed: BTreeMap<String, usize> = BTreeMap::new();
    let mut rest = registry.as_str();
    while let Some(i) = rest.find('`') {
        let tail = &rest[i + 1..];
        let Some(j) = tail.find('`') else { break };
        let token = &tail[..j];
        if token.contains("::")
            && token
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ':' || c == '_')
        {
            *listed.entry(token.to_string()).or_insert(0) += 1;
        }
        rest = &tail[j + 1..];
    }

    let mut problems = Vec::new();
    for name in &used {
        match listed.get(name).copied().unwrap_or(0) {
            1 => {}
            0 => problems.push(format!(
                "fault site `{name}` is used in source but missing from docs/FAULT_SITES.md"
            )),
            n => problems.push(format!(
                "fault site `{name}` appears {n} times in docs/FAULT_SITES.md; exactly once required"
            )),
        }
    }
    for name in listed.keys() {
        if !used.contains(name) {
            problems.push(format!(
                "docs/FAULT_SITES.md lists `{name}` but no source site uses it"
            ));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}

/// `pub fn`s of `lines` (as produced by [`non_test_lines`]) that carry
/// no `///` doc comment, looking back across attribute lines.
fn undocumented_pub_fns(lines: &[&str]) -> Vec<String> {
    let mut missing = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        let is_fn = t.starts_with("pub fn ")
            || t.starts_with("pub const fn ")
            || t.starts_with("pub unsafe fn ");
        if !is_fn {
            continue;
        }
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            let prev = lines[j - 1].trim_start();
            // Look through attributes (including multi-line tails).
            if prev.starts_with("#[") || prev.starts_with("#![") || prev.ends_with(")]") {
                j -= 1;
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("//!");
            break;
        }
        if !documented {
            let name = t
                .split("fn ")
                .nth(1)
                .and_then(|s| s.split(['(', '<']).next())
                .unwrap_or(t);
            missing.push(name.to_string());
        }
    }
    missing
}

#[test]
fn analyze_and_govern_pub_fns_are_documented() {
    let mut problems = Vec::new();
    for file in ["crates/core/src/analyze.rs", "crates/core/src/govern.rs"] {
        let src = fs::read_to_string(repo_root().join(file)).expect("readable source file");
        for name in undocumented_pub_fns(&non_test_lines(&src)) {
            problems.push(format!("{file}: pub fn `{name}` has no doc comment"));
        }
    }
    assert!(problems.is_empty(), "\n{}", problems.join("\n"));
}
