//! End-to-end tests of `kgq serve`: boot the real binary, drive it over
//! TCP, and hold the server to the satellite's byte-identity bar — N
//! concurrent clients each receive exactly what a solo batch-CLI run of
//! the same query prints.

use kgq_serve::{stat, Caps, Client};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn kgq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgq"))
}

fn run(args: &[&str]) -> Output {
    kgq().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kgq-serve-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const NT: &str = "<a> <knows> <b> .\n<b> <knows> <c> .\n<c> <knows> <a> .\n\
                  <a> <type> <P> .\n<b> <type> <P> .\n";

/// Boots `kgq serve` on an OS-assigned port; returns the child and the
/// address parsed from its `listening on ...` line.
fn boot(extra: &[&str]) -> (Child, String, PathBuf, PathBuf) {
    let graph = temp_file(
        &format!("graph-{:?}.kgq", std::thread::current().id()),
        &stdout(&run(&[
            "generate", "contact", "--people", "30", "--seed", "7",
        ])),
    );
    let nt = temp_file(&format!("data-{:?}.nt", std::thread::current().id()), NT);
    let mut child = kgq()
        .arg("serve")
        .arg(&graph)
        .args(["--nt", nt.to_str().unwrap(), "--port", "0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server boots");
    let mut line = String::new();
    std::io::BufReader::new(child.stdout.take().expect("piped"))
        .read_line(&mut line)
        .expect("banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr, graph, nt)
}

fn connect(addr: &str) -> Client {
    let c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

/// Sends SHUTDOWN and asserts the server process exits cleanly (status
/// 0) — the CLI-level clean-shutdown contract the CI smoke job relies
/// on.
fn stop(mut child: Child, addr: &str) {
    let mut c = connect(addr);
    assert!(c.shutdown().unwrap().ok);
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exited with {status:?}");
}

#[test]
fn concurrent_server_clients_match_solo_cli_runs_byte_for_byte() {
    let (child, addr, graph, nt) = boot(&[]);
    let g = graph.to_str().unwrap();
    let n = nt.to_str().unwrap();
    // Solo batch-CLI baselines: one process, one query, ungoverned.
    let rpq_expr = "?person/rides/?bus/rides^-/?infected";
    let cy = "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b";
    let sq = "SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <type> <P> . }";
    let cli_rpq = stdout(&run(&["query", g, rpq_expr, "pairs"]));
    let cli_starts = stdout(&run(&["query", g, rpq_expr, "starts"]));
    let cli_cy = stdout(&run(&["cypher", g, cy]));
    let cli_sq = stdout(&run(&["sparql", n, sq]));
    assert!(!cli_rpq.is_empty());

    std::thread::scope(|scope| {
        for t in 0..4 {
            let addr = addr.as_str();
            let (cli_rpq, cli_starts, cli_cy, cli_sq) = (&cli_rpq, &cli_starts, &cli_cy, &cli_sq);
            scope.spawn(move || {
                let mut c = connect(addr);
                for r in 0..5 {
                    match (t + r) % 4 {
                        0 => assert_eq!(
                            &c.rpq("pairs", rpq_expr, &Caps::none()).unwrap().body,
                            cli_rpq
                        ),
                        1 => assert_eq!(
                            &c.rpq("starts", rpq_expr, &Caps::none()).unwrap().body,
                            cli_starts
                        ),
                        2 => assert_eq!(&c.cypher(cy, &Caps::none()).unwrap().body, cli_cy),
                        _ => assert_eq!(&c.sparql(sq, &Caps::none()).unwrap().body, cli_sq),
                    }
                }
            });
        }
    });
    stop(child, &addr);
}

#[test]
fn governed_partials_match_the_cli_trailer_format() {
    let (child, addr, graph, _nt) = boot(&[]);
    let g = graph.to_str().unwrap();
    let expr = "(rides + contact + lives)*";
    // The same budget through the CLI flag and through the wire caps.
    let cli = stdout(&run(&["query", g, expr, "pairs", "--max-results", "7"]));
    assert!(cli.ends_with("# partial: result budget reached\n"));
    let mut c = connect(&addr);
    let srv = c
        .rpq(
            "pairs",
            expr,
            &Caps {
                max_results: Some(7),
                ..Caps::default()
            },
        )
        .unwrap();
    assert!(srv.ok);
    assert_eq!(srv.body, cli, "server partial must equal CLI partial");
    stop(child, &addr);
}

#[test]
fn server_side_caps_flag_applies_to_all_requests() {
    let (child, addr, _graph, _nt) = boot(&["--max-results", "3"]);
    let mut c = connect(&addr);
    let got = c
        .rpq("pairs", "(rides + contact + lives)*", &Caps::none())
        .unwrap();
    assert!(got.ok && got.is_partial(), "{}", got.body);
    assert_eq!(got.body.lines().count(), 4); // 3 rows + trailer
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "partials").unwrap() >= 1);
    stop(child, &addr);
}
