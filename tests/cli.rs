//! End-to-end tests of the `kgq` command-line interface: generate a
//! graph, pipe it through queries, Cypher, analytics, and RDF tooling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kgq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgq"))
}

fn run(args: &[&str]) -> Output {
    kgq().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_graph(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kgq-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn generated_contact() -> PathBuf {
    let out = run(&["generate", "contact", "--people", "30", "--seed", "7"]);
    temp_graph("contact.kgq", &stdout(&out))
}

#[test]
fn usage_on_no_args() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn generate_query_roundtrip() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    // Node extraction.
    let starts = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "starts",
    ]));
    assert!(!starts.is_empty());
    assert!(starts.lines().all(|l| l.starts_with('p')));
    // Counting agrees with enumeration.
    let count: usize = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "count",
        "2",
    ]))
    .trim()
    .parse()
    .unwrap();
    let enumerated = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "enumerate",
        "2",
    ]));
    assert_eq!(enumerated.lines().count(), count);
    // Sampling produces paths.
    let samples = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "sample",
        "2",
        "3",
    ]));
    assert_eq!(samples.lines().count(), 3);
}

#[test]
fn cypher_over_generated_graph() {
    let path = generated_contact();
    let rows = stdout(&run(&[
        "cypher",
        path.to_str().unwrap(),
        "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
    ]));
    assert!(!rows.is_empty());
    for line in rows.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 2);
        assert!(cols[1].starts_with('b'));
    }
}

#[test]
fn analytics_metrics() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let pr = stdout(&run(&["analytics", p, "pagerank"]));
    assert_eq!(pr.lines().count(), 20);
    let comp = stdout(&run(&["analytics", p, "components"]));
    assert!(comp.contains("components"));
    let densest = stdout(&run(&["analytics", p, "densest"]));
    assert!(densest.starts_with("density"));
}

#[test]
fn rdf_path_and_infer() {
    let nt = temp_graph(
        "family.nt",
        "<ana> <parentOf> <ben> .\n<ben> <parentOf> <cal> .\n\
         <parentOf> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <ancestorOf> .\n",
    );
    let p = nt.to_str().unwrap();
    let pairs = stdout(&run(&["rdf", p, "path", "parentOf/(parentOf)*"]));
    assert!(pairs.contains("ana\tcal"));
    let rows = stdout(&run(&[
        "rdf",
        p,
        "select",
        "SELECT ?x ?y WHERE { ?x <parentOf> ?y }",
    ]));
    assert!(rows.contains("ana\tben"));
    let inferred = stdout(&run(&["rdf", p, "infer"]));
    assert!(inferred.contains("<ana> <ancestorOf> <ben>"));
    assert!(inferred.contains("# inferred 2 triples"));
}

#[test]
fn unlimited_govern_flags_do_not_change_results() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let expr = "?person/rides/?bus/rides^-/?infected";
    let plain = stdout(&run(&["query", p, expr, "pairs"]));
    let governed = stdout(&run(&[
        "query",
        p,
        expr,
        "pairs",
        "--timeout",
        "60000",
        "--max-steps",
        "1000000000",
    ]));
    assert_eq!(plain, governed, "a generous budget must be invisible");
    assert!(!governed.contains("# partial"));
}

#[test]
fn deadline_on_a_large_graph_returns_a_typed_partial() {
    // The acceptance scenario: a 10k-node BA graph under a 50 ms
    // deadline answers promptly with a typed partial, not a hang.
    let out = run(&["generate", "ba", "--nodes", "10000", "--seed", "7"]);
    let path = temp_graph("ba10k.kgq", &stdout(&out));
    let started = std::time::Instant::now();
    let got = stdout(&run(&[
        "query",
        path.to_str().unwrap(),
        "link/link/(link)*",
        "pairs",
        "--timeout",
        "50",
    ]));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "deadline was not honored"
    );
    let last = got.lines().last().unwrap_or_default();
    assert_eq!(last, "# partial: deadline exceeded", "got: {last}");
}

#[test]
fn result_budget_truncates_with_a_replayable_cursor() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let expr = "?person/rides/?bus/rides^-/?infected";
    let full = stdout(&run(&["query", p, expr, "enumerate", "2"]));
    let full_lines: Vec<&str> = full.lines().collect();
    assert!(full_lines.len() > 2, "workload too small to truncate");
    // Page through two paths at a time, chaining cursors.
    let mut collected: Vec<String> = Vec::new();
    let mut cursor: Option<String> = None;
    for _ in 0..full_lines.len() {
        let mut args = vec!["query", p, expr, "enumerate", "2", "--max-results", "2"];
        if let Some(c) = &cursor {
            args.push("--resume");
            args.push(c);
        }
        let page = stdout(&run(&args));
        cursor = None;
        for line in page.lines() {
            if let Some(c) = line.strip_prefix("# cursor: ") {
                cursor = Some(c.to_owned());
            } else if !line.starts_with('#') {
                collected.push(line.to_owned());
            }
        }
        if cursor.is_none() {
            break;
        }
    }
    assert_eq!(
        collected, full_lines,
        "cursor replay lost or reordered answers"
    );
}

#[test]
fn cypher_respects_the_result_budget() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let q = "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b";
    let full = stdout(&run(&["cypher", p, q]));
    let governed = stdout(&run(&["cypher", p, q, "--max-results", "1"]));
    let lines: Vec<&str> = governed.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "one row plus the partial marker: {governed}"
    );
    assert_eq!(Some(lines[0]), full.lines().next(), "not a prefix");
    assert_eq!(lines[1], "# partial: result budget reached");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = run(&["query", "/nonexistent.kgq", "p", "pairs"]);
    assert!(!out.status.success());
    let path = generated_contact();
    let out = run(&["query", path.to_str().unwrap(), "p/", "pairs"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = run(&["analytics", path.to_str().unwrap(), "nonsense"]);
    assert!(!out.status.success());
}
