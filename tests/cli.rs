//! End-to-end tests of the `kgq` command-line interface: generate a
//! graph, pipe it through queries, Cypher, analytics, and RDF tooling.

use std::path::PathBuf;
use std::process::{Command, Output};

fn kgq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgq"))
}

fn run(args: &[&str]) -> Output {
    kgq().args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}, stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_graph(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kgq-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn generated_contact() -> PathBuf {
    let out = run(&["generate", "contact", "--people", "30", "--seed", "7"]);
    temp_graph("contact.kgq", &stdout(&out))
}

#[test]
fn usage_on_no_args() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn generate_query_roundtrip() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    // Node extraction.
    let starts = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "starts",
    ]));
    assert!(!starts.is_empty());
    assert!(starts.lines().all(|l| l.starts_with('p')));
    // Counting agrees with enumeration.
    let count: usize = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "count",
        "2",
    ]))
    .trim()
    .parse()
    .unwrap();
    let enumerated = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "enumerate",
        "2",
    ]));
    assert_eq!(enumerated.lines().count(), count);
    // Sampling produces paths.
    let samples = stdout(&run(&[
        "query",
        p,
        "?person/rides/?bus/rides^-/?infected",
        "sample",
        "2",
        "3",
    ]));
    assert_eq!(samples.lines().count(), 3);
}

#[test]
fn cypher_over_generated_graph() {
    let path = generated_contact();
    let rows = stdout(&run(&[
        "cypher",
        path.to_str().unwrap(),
        "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
    ]));
    assert!(!rows.is_empty());
    for line in rows.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 2);
        assert!(cols[1].starts_with('b'));
    }
}

#[test]
fn analytics_metrics() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let pr = stdout(&run(&["analytics", p, "pagerank"]));
    assert_eq!(pr.lines().count(), 20);
    let comp = stdout(&run(&["analytics", p, "components"]));
    assert!(comp.contains("components"));
    let densest = stdout(&run(&["analytics", p, "densest"]));
    assert!(densest.starts_with("density"));
}

#[test]
fn rdf_path_and_infer() {
    let nt = temp_graph(
        "family.nt",
        "<ana> <parentOf> <ben> .\n<ben> <parentOf> <cal> .\n\
         <parentOf> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <ancestorOf> .\n",
    );
    let p = nt.to_str().unwrap();
    let pairs = stdout(&run(&["rdf", p, "path", "parentOf/(parentOf)*"]));
    assert!(pairs.contains("ana\tcal"));
    let rows = stdout(&run(&[
        "rdf",
        p,
        "select",
        "SELECT ?x ?y WHERE { ?x <parentOf> ?y }",
    ]));
    assert!(rows.contains("ana\tben"));
    let inferred = stdout(&run(&["rdf", p, "infer"]));
    assert!(inferred.contains("<ana> <ancestorOf> <ben>"));
    assert!(inferred.contains("# inferred 2 triples"));
}

#[test]
fn unlimited_govern_flags_do_not_change_results() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let expr = "?person/rides/?bus/rides^-/?infected";
    let plain = stdout(&run(&["query", p, expr, "pairs"]));
    let governed = stdout(&run(&[
        "query",
        p,
        expr,
        "pairs",
        "--timeout",
        "60000",
        "--max-steps",
        "1000000000",
    ]));
    assert_eq!(plain, governed, "a generous budget must be invisible");
    assert!(!governed.contains("# partial"));
}

#[test]
fn deadline_on_a_large_graph_returns_a_typed_partial() {
    // The acceptance scenario: a 10k-node BA graph under a 50 ms
    // deadline answers promptly with a typed partial, not a hang.
    let out = run(&["generate", "ba", "--nodes", "10000", "--seed", "7"]);
    let path = temp_graph("ba10k.kgq", &stdout(&out));
    let started = std::time::Instant::now();
    let got = stdout(&run(&[
        "query",
        path.to_str().unwrap(),
        "link/link/(link)*",
        "pairs",
        "--timeout",
        "50",
    ]));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "deadline was not honored"
    );
    let last = got.lines().last().unwrap_or_default();
    assert_eq!(last, "# partial: deadline exceeded", "got: {last}");
}

#[test]
fn result_budget_truncates_with_a_replayable_cursor() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let expr = "?person/rides/?bus/rides^-/?infected";
    let full = stdout(&run(&["query", p, expr, "enumerate", "2"]));
    let full_lines: Vec<&str> = full.lines().collect();
    assert!(full_lines.len() > 2, "workload too small to truncate");
    // Page through two paths at a time, chaining cursors.
    let mut collected: Vec<String> = Vec::new();
    let mut cursor: Option<String> = None;
    for _ in 0..full_lines.len() {
        let mut args = vec!["query", p, expr, "enumerate", "2", "--max-results", "2"];
        if let Some(c) = &cursor {
            args.push("--resume");
            args.push(c);
        }
        let page = stdout(&run(&args));
        cursor = None;
        for line in page.lines() {
            if let Some(c) = line.strip_prefix("# cursor: ") {
                cursor = Some(c.to_owned());
            } else if !line.starts_with('#') {
                collected.push(line.to_owned());
            }
        }
        if cursor.is_none() {
            break;
        }
    }
    assert_eq!(
        collected, full_lines,
        "cursor replay lost or reordered answers"
    );
}

#[test]
fn cypher_respects_the_result_budget() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let q = "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b";
    let full = stdout(&run(&["cypher", p, q]));
    let governed = stdout(&run(&["cypher", p, q, "--max-results", "1"]));
    let lines: Vec<&str> = governed.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "one row plus the partial marker: {governed}"
    );
    assert_eq!(Some(lines[0]), full.lines().next(), "not a prefix");
    assert_eq!(lines[1], "# partial: result budget reached");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = run(&["query", "/nonexistent.kgq", "p", "pairs"]);
    assert!(!out.status.success());
    let path = generated_contact();
    let out = run(&["query", path.to_str().unwrap(), "p/", "pairs"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = run(&["analytics", path.to_str().unwrap(), "nonsense"]);
    assert!(!out.status.success());
}

#[test]
fn explain_prints_verdicts_for_rpq_queries() {
    let path = generated_contact();
    let p = path.to_str().unwrap();

    // 1. Provably-empty RPQ: deny + short-circuit plan, no execution.
    let empty = stdout(&run(&["query", p, "ghost", "--explain"]));
    assert!(empty.contains("deny[empty-language]"), "{empty}");
    assert!(empty.contains("warn[unsat-test]"), "{empty}");
    assert!(empty.contains('^'), "caret missing: {empty}");
    assert!(empty.contains("short-circuit (empty)"), "{empty}");
    assert!(empty.contains("language: empty"), "{empty}");

    // 2. Clean query: no diagnostics, full class/plan table.
    let clean = stdout(&run(&["query", p, "?person/rides/?bus", "--explain"]));
    assert!(clean.contains("(none)"), "{clean}");
    for needle in [
        "functionality",
        "check",
        "NL",
        "#P-hard (SpanL)",
        "FPRAS",
        "poly-delay",
        "bidirectional meet",
        "exact DP",
    ] {
        assert!(clean.contains(needle), "missing {needle}: {clean}");
    }

    // 3. Infinite language is a note, not a deny.
    let inf = stdout(&run(&["query", p, "(rides+contact)*", "--explain"]));
    assert!(inf.contains("note[infinite-language]"), "{inf}");
    assert!(inf.contains("language: infinite"), "{inf}");

    // 4. Contradictory conjunction: provably empty.
    let contra = stdout(&run(&["query", p, "{rides & !rides}", "--explain"]));
    assert!(contra.contains("deny[empty-language]"), "{contra}");

    // 5. A property pair never seen in the graph.
    let prop = stdout(&run(&["query", p, "[shoe='42']", "--explain"]));
    assert!(prop.contains("warn[unsat-test]"), "{prop}");
    assert!(prop.contains("deny[empty-language]"), "{prop}");
}

#[test]
fn explain_prints_verdicts_for_cypher_queries() {
    let path = generated_contact();
    let p = path.to_str().unwrap();

    // 6. Unknown node label in a pattern.
    let q = "MATCH (p:ghost) RETURN p";
    let empty = stdout(&run(&["cypher", p, q, "--explain"]));
    assert!(empty.contains("deny[unknown-label]"), "{empty}");
    assert!(empty.contains('^'), "caret missing: {empty}");
    assert!(empty.contains("short-circuit (empty)"), "{empty}");
    assert!(empty.contains("NP-hard"), "{empty}");

    // 7. Clean pattern: NP-hard verdict, prefilter plan, no diagnostics.
    let clean = stdout(&run(&[
        "cypher",
        p,
        "MATCH (a:person)-[:rides]->(b:bus) RETURN a, b",
        "--explain",
    ]));
    assert!(clean.contains("(none)"), "{clean}");
    assert!(clean.contains("match"), "{clean}");
    assert!(clean.contains("bit-parallel sweep"), "{clean}");
}

#[test]
fn analyzer_short_circuits_are_visible_and_results_unchanged() {
    let path = generated_contact();
    let p = path.to_str().unwrap();

    // A provably-empty query prints nothing and reports the skipped
    // compilation in the verbose cache stats.
    let out = run(&["query", p, "ghost", "pairs", "--verbose"]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "expected no pairs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("short_circuits=1"), "{err}");
    assert!(err.contains("misses=0"), "{err}");

    // Counting a provably-empty language is exactly zero (not degraded).
    let zero = stdout(&run(&["query", p, "ghost", "count", "3"]));
    assert_eq!(zero.trim(), "0");

    // The same short-circuit applies to Cypher execution.
    let out = run(&[
        "cypher",
        p,
        "MATCH (x:person) WHERE x.age = 'never' AND x.age <> 'never' RETURN x",
        "--verbose",
    ]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "contradictory WHERE must be empty");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("short_circuits=1"), "{err}");
}

#[test]
fn analyze_subcommand_reports_all_four_kinds() {
    let graph = generated_contact();
    let g = graph.to_str().unwrap();
    let nt = temp_graph("analyze.nt", "<a> <knows> <b> .\n<b> <knows> <c> .\n");
    let n = nt.to_str().unwrap();

    let q = stdout(&run(&["analyze", "query", g, "rides/rides^-"]));
    assert!(q.contains("== verdict =="), "{q}");
    let ghost = stdout(&run(&["analyze", "query", g, "ghost_label"]));
    assert!(ghost.contains("deny"), "{ghost}");

    let c = stdout(&run(&[
        "analyze",
        "cypher",
        g,
        "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
    ]));
    assert!(c.contains("== verdict =="), "{c}");

    let s = stdout(&run(&[
        "analyze",
        "sparql",
        n,
        "SELECT ?x ?y WHERE { ?x <knows> ?y . }",
    ]));
    assert!(s.contains("== plan =="), "{s}");
    assert!(s.contains("agm exponent"), "{s}");

    let r = stdout(&run(&[
        "analyze",
        "rules",
        n,
        "?x path ?y :- ?x knows ?y .\n?x path ?z :- ?x path ?y, ?y knows ?z .",
    ]));
    assert!(r.contains("recursive: yes"), "{r}");
    assert!(r.contains("derivation bound"), "{r}");

    // A rules program may also live in a file.
    let prog = temp_graph("closure.rules", "?x hop ?y :- ?x knows ?y .\n");
    let rf = stdout(&run(&["analyze", "rules", n, prog.to_str().unwrap()]));
    assert!(rf.contains("recursive: no"), "{rf}");

    let bad = run(&["analyze", "bogus", g, "x"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown analyze kind"));
}

#[test]
fn parse_errors_render_with_caret_and_expected_token() {
    let path = generated_contact();
    let p = path.to_str().unwrap();
    let out = run(&["cypher", p, "MATCH (a RETURN a"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("query parse error at byte"), "{err}");
    assert!(err.contains("^ expected `)`"), "{err}");
}
