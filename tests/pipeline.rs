//! End-to-end integration: every engine in the workspace answers the
//! same questions about the same graphs.

use kgq::analytics::{bc_r_exact, betweenness};
use kgq::core::{
    count_paths, count_paths_naive, enumerate_paths, matching_starts, parse_expr, Evaluator,
    LabeledView, Nfa, Product, UniformSampler,
};
use kgq::gnn::builder::{psi_network, PSI_VOCAB};
use kgq::gnn::AcGnn;
use kgq::graph::generate::{contact_network, gnm_labeled, ContactParams};
use kgq::logic::{compile_fo2, eval_bounded, eval_naive, Var};
use kgq::relbase::rpq_join_pairs;

#[test]
fn counting_stack_is_internally_consistent() {
    for seed in [3u64, 14] {
        let mut g = gnm_labeled(10, 24, &["a", "b"], &["p", "q"], seed);
        for text in ["(p+q)*", "?a/(p)*/?b", "p/q^-/p"] {
            let expr = parse_expr(text, g.consts_mut()).unwrap();
            let view = LabeledView::new(&g);
            for k in 0..=4usize {
                let exact = count_paths(&view, &expr, k).unwrap();
                assert_eq!(exact, count_paths_naive(&view, &expr, k), "{text} k={k}");
                let enumerated = enumerate_paths(&view, &expr, k);
                assert_eq!(enumerated.len() as u128, exact, "{text} k={k}");
                let sampler = UniformSampler::new(&view, &expr, k).unwrap();
                assert_eq!(sampler.total(), exact, "{text} k={k}");
                // Every enumerated path is accepted by the raw product.
                let nfa = Nfa::compile(&expr);
                let prod = Product::build(&view, &nfa);
                for p in &enumerated {
                    assert!(prod.accepts(p.start, &p.edges));
                    assert_eq!(p.len(), k);
                }
            }
        }
    }
}

#[test]
fn four_engines_agree_on_node_extraction() {
    for seed in [5u64, 9] {
        let pg = contact_network(&ContactParams {
            people: 35,
            buses: 4,
            infected_fraction: 0.15,
            seed,
            ..ContactParams::default()
        });
        let mut g = pg.into_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();

        // 1. RPQ product engine.
        let view = LabeledView::new(&g);
        let rpq = matching_starts(&view, &expr);

        // 2. FO² pipeline + naive evaluation.
        let psi = compile_fo2(&expr).unwrap();
        assert_eq!(eval_bounded(&g, &psi, Var(0)), rpq);
        assert_eq!(eval_naive(&g, &psi, Var(0)), rpq);

        // 3. Relational joins (starts of pairs).
        let mut join_starts: Vec<_> = rpq_join_pairs(&view, &expr)
            .unwrap()
            .into_iter()
            .map(|(a, _)| a)
            .collect();
        join_starts.sort_unstable();
        join_starts.dedup();
        assert_eq!(join_starts, rpq);

        // 4. Hand-built AC-GNN.
        let gnn = psi_network();
        let feats = AcGnn::one_hot_features(&g, &PSI_VOCAB);
        let cls = gnn.classify(&g, &feats);
        let gnn_starts: Vec<_> = g.base().nodes().filter(|n| cls[n.index()]).collect();
        assert_eq!(gnn_starts, rpq, "seed {seed}");
    }
}

#[test]
fn unconstrained_bcr_equals_brandes_on_simple_graphs() {
    // On a *simple* graph, shortest paths and shortest edge sequences
    // coincide, so bc_r with an unconstrained forward regex equals
    // Brandes betweenness. (On multigraphs they legitimately differ:
    // parallel edges are distinct paths under the paper's definition.)
    let raw = gnm_labeled(8, 18, &["v"], &["p"], 21);
    let mut g = kgq::graph::LabeledGraph::new();
    let mut seen = std::collections::HashSet::new();
    for n in raw.base().nodes() {
        g.add_node(raw.node_name(n), "v").unwrap();
    }
    for e in raw.base().edges() {
        let (s, d) = raw.base().endpoints(e);
        if s != d && seen.insert((s, d)) {
            g.add_edge(raw.edge_name(e), s, d, "p").unwrap();
        }
    }
    let expr = parse_expr("(p)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let bcr = bc_r_exact(&view, &expr);
    let bc = betweenness(&g);
    for (a, b) in bcr.iter().zip(bc.iter()) {
        assert!((a - b).abs() < 1e-9, "bc_r={a} bc={b}");
    }
}

#[test]
fn parallel_edges_multiply_paths_not_brandes() {
    // Documents the semantic difference: with two parallel a→x edges and
    // one x→b edge, the paper's S_{a,b} has two shortest paths, both
    // through x, so bc_r(x) = 1 (fraction 2/2) — same as Brandes here —
    // but Count sees 2 paths.
    let mut g = kgq::graph::LabeledGraph::new();
    let a = g.add_node("a", "v").unwrap();
    let x = g.add_node("x", "v").unwrap();
    let b = g.add_node("b", "v").unwrap();
    g.add_edge("e1", a, x, "p").unwrap();
    g.add_edge("e2", a, x, "p").unwrap();
    g.add_edge("e3", x, b, "p").unwrap();
    let expr = parse_expr("p/p", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    assert_eq!(count_paths(&view, &expr, 2).unwrap(), 2);
    let star = parse_expr("(p)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let bcr = bc_r_exact(&view, &star);
    assert!((bcr[x.index()] - 1.0).abs() < 1e-9);
}

#[test]
fn witnesses_are_shortest_and_valid() {
    let pg = contact_network(&ContactParams {
        people: 25,
        seed: 8,
        ..ContactParams::default()
    });
    let mut g = pg.into_labeled();
    let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);
    for (a, b) in ev.pairs() {
        let w = ev.shortest_witness(a, b).expect("pair implies witness");
        assert_eq!(w.start, a);
        assert_eq!(w.end(&view), Some(b));
        assert!(ev.product().accepts(w.start, &w.edges));
        // The expression is 2 edges long with no star: every witness has
        // length exactly 2.
        assert_eq!(w.len(), 2);
    }
}
