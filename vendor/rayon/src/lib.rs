//! Vendored, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the data-parallel surface the workspace uses: `into_par_iter()` /
//! `par_iter()` over ranges and slices with `map` / `collect` / `sum` /
//! `for_each`, plus [`ThreadPoolBuilder`] and [`current_num_threads`].
//!
//! Execution model: a parallel iterator here is an indexed producer
//! (`len` + `Fn(usize) -> T`). Consuming it splits the index space into
//! one contiguous chunk per thread, runs the chunks under
//! [`std::thread::scope`], and concatenates the per-chunk results **in
//! index order** — so `collect::<Vec<_>>()` is exactly the sequential
//! result regardless of thread count, which the workspace relies on for
//! deterministic query answers.
//!
//! Divergence from upstream: there is no persistent worker pool (threads
//! are scoped per call — fine for the coarse-grained, long-running tasks
//! benchmarked here), and [`ThreadPoolBuilder::build_global`] may be
//! called repeatedly (last call wins) instead of erroring after the
//! first, which the thread-scaling experiment binary relies on.

use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads parallel iterators will use.
///
/// Priority: last [`ThreadPoolBuilder::build_global`] call, then the
/// `RAYON_NUM_THREADS` environment variable, then the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced by
/// this shim; present for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global thread count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (auto) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests exactly `n` threads (0 = auto).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configured thread count globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

pub mod iter {
    //! Parallel iterator types.

    use super::current_num_threads;

    /// An indexed parallel producer: `len` items, item `i` computed by
    /// `produce(i)`.
    pub struct ParIter<'a, T> {
        len: usize,
        produce: Box<dyn Fn(usize) -> T + Sync + 'a>,
    }

    /// Runs an indexed producer across threads, preserving index order.
    fn run<'a, T: Send + 'a>(len: usize, produce: &(dyn Fn(usize) -> T + Sync + 'a)) -> Vec<T> {
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len < 2 {
            return (0..len).map(produce).collect();
        }
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * chunk;
                    if lo >= len {
                        return None;
                    }
                    let hi = ((t + 1) * chunk).min(len);
                    Some(scope.spawn(move || (lo..hi).map(produce).collect::<Vec<T>>()))
                })
                .collect();
            let mut out = Vec::with_capacity(len);
            for h in handles {
                out.extend(h.join().expect("parallel worker panicked"));
            }
            out
        })
    }

    impl<'a, T: Send + 'a> ParIter<'a, T> {
        /// Builds a producer-backed parallel iterator.
        pub fn from_fn(len: usize, produce: impl Fn(usize) -> T + Sync + 'a) -> Self {
            ParIter {
                len,
                produce: Box::new(produce),
            }
        }

        /// Number of items.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the iterator is empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Transforms each item with `f` (lazily, on the worker thread).
        pub fn map<U, F>(self, f: F) -> ParIter<'a, U>
        where
            U: Send + 'a,
            F: Fn(T) -> U + Sync + 'a,
        {
            let produce = self.produce;
            ParIter {
                len: self.len,
                produce: Box::new(move |i| f(produce(i))),
            }
        }

        /// Hint accepted for upstream compatibility (chunking here is
        /// always one contiguous block per thread).
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Materializes the items in index order.
        pub fn collect<C: FromParIter<T>>(self) -> C {
            C::from_par_iter_ordered(run(self.len, self.produce.as_ref()))
        }

        /// Sums the items (order-insensitive reduction).
        pub fn sum<S: std::iter::Sum<T>>(self) -> S {
            run(self.len, self.produce.as_ref()).into_iter().sum()
        }

        /// Runs `f` on every item for its side effects.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F)
        where
            T: Send,
        {
            let produce = self.produce;
            let consume = move |i| f(produce(i));
            run::<()>(self.len, &consume);
        }
    }

    /// Collection types a parallel iterator can materialize into.
    pub trait FromParIter<T> {
        /// Builds the collection from items already in index order.
        fn from_par_iter_ordered(items: Vec<T>) -> Self;
    }

    impl<T> FromParIter<T> for Vec<T> {
        fn from_par_iter_ordered(items: Vec<T>) -> Self {
            items
        }
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// Item type produced.
        type Item;
        /// The parallel iterator type.
        type Iter;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<'static, usize>;
        fn into_par_iter(self) -> Self::Iter {
            let start = self.start;
            ParIter::from_fn(self.end.saturating_sub(self.start), move |i| start + i)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        type Iter = ParIter<'static, u32>;
        fn into_par_iter(self) -> Self::Iter {
            let start = self.start;
            ParIter::from_fn((self.end.saturating_sub(self.start)) as usize, move |i| {
                start + i as u32
            })
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = ParIter<'a, &'a T>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter::from_fn(self.len(), move |i| &self[i])
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<'a, &'a T>;
        fn into_par_iter(self) -> Self::Iter {
            self.as_slice().into_par_iter()
        }
    }

    /// `par_iter()` sugar over `&self` collections.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type produced (a reference).
        type Item;
        /// The parallel iterator type.
        type Iter;
        /// Parallel iterator over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoParallelIterator<Item = &'a T>,
    {
        type Item = &'a T;
        type Iter = <&'a C as IntoParallelIterator>::Iter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_par_iter()
        }
    }
}

pub mod prelude {
    //! One-stop imports: `use rayon::prelude::*;`
    pub use crate::iter::{FromParIter, IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let expected: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8] {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let got: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn slices_and_sums() {
        let v: Vec<u64> = (1..=100).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
        let doubled: Vec<u64> = v.as_slice().into_par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 200);
    }

    #[test]
    fn empty_and_single() {
        let got: Vec<usize> = (5..5usize).into_par_iter().collect();
        assert!(got.is_empty());
        let got: Vec<usize> = (7..8usize).into_par_iter().collect();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn for_each_runs_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }
}
