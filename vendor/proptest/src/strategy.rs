//! The [`Strategy`] trait and its combinators.
//!
//! Unlike upstream proptest there is no `ValueTree`/shrinking layer: a
//! strategy is simply a deterministic function from an RNG state to a
//! value. Combinators compose those functions.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a deeper one. `depth`
    /// bounds the nesting; `_desired_size` and `_expected_branch_size`
    /// are accepted for upstream compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, mix leaves back in so expected size stays
            // bounded (upstream uses a similar geometric decay).
            strat =
                Union::new_weighted(vec![(1, leaf.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Shuffles each generated collection uniformly.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle(self)
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen_fn: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy that always yields one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S>(S);

/// Collections that can be shuffled in place.
pub trait Shuffleable {
    /// Uniformly permutes the collection.
    fn shuffle_in_place(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle_in_place(&mut self, rng: &mut StdRng) {
        use rand::seq::SliceRandom;
        self.as_mut_slice().shuffle(rng);
    }
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.0.generate(rng);
        v.shuffle_in_place(rng);
        v
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: Clone + std::fmt::Debug> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice among `arms` proportional to their weights.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| w).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut r = rng();
        let s = (0..5usize, 10..20i64).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn flat_map_respects_dependency() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0..n, n));
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.generate(&mut r);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never taken");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = rng();
        let s = Just((0..20).collect::<Vec<i32>>()).prop_shuffle();
        let v = s.generate(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![(0..1usize).boxed(), (10..11usize).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}
