//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! property-testing surface the workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `prop_shuffle`, [`collection::vec`], [`option::of`], `Just`, `any`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from upstream: there is **no shrinking** — a failing case
//! panics with the full generated inputs instead of a minimized one — and
//! case generation is seeded deterministically from the test's module path
//! and name, so failures always reproduce.

pub mod strategy;

pub mod test_runner {
    //! Configuration and failure plumbing used by the [`proptest!`] macro.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a hash of a string — stable seed derivation for test names.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            h ^= bytes[i] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        h
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for canonical strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug + 'static {
        /// Draws one value covering the full domain of `Self`.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Canonical strategy for `T` (`any::<bool>()`, `any::<u32>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Strategies for collections (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — a vector whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option` (`proptest::option::of`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `None` sometimes and `Some(inner)` otherwise.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `of(inner)` — `None` with probability ¼, otherwise `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports: `use proptest::prelude::*;`
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property against `cases` generated inputs.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0..10usize, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        <$crate::test_runner::StdRng as $crate::test_runner::SeedableRng>::
                            seed_from_u64(
                                __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            );
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __value =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!("{:?}", &__value));
                        let $pat = __value;
                    )+
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n  {}",
                            __case + 1,
                            __cfg.cases,
                            __err,
                            __inputs.join("\n  "),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform (or weighted, `w => strat`) choice between strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the surrounding property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the surrounding property unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            __l,
            format!($($fmt)+)
        );
    }};
}
