//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the benchmarking surface the workspace uses: [`Criterion`],
//! [`BenchmarkGroup`] with `warm_up_time` / `measurement_time` /
//! `sample_size` / `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is plain
//! wall clock via `std::time::Instant`; each benchmark reports the mean
//! and median nanoseconds per iteration over the collected samples. No
//! HTML reports, no statistical regression analysis.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; flags that upstream criterion accepts (e.g. `--bench`)
        // are skipped.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark (group-of-one shorthand).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, group: &str, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => group.contains(f.as_str()) || id.contains(f.as_str()),
        }
    }
}

/// A set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    group: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Number of timing samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` and prints mean/median nanoseconds per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self._criterion.matches(&self.group, id) {
            return self;
        }
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up,
            },
        };
        f(&mut bencher);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let per_sample = self.measurement.div_f64(self.sample_size as f64);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                mode: Mode::Measure {
                    budget: per_sample,
                    ns_per_iter: f64::NAN,
                },
            };
            f(&mut bencher);
            if let Mode::Measure { ns_per_iter, .. } = bencher.mode {
                if ns_per_iter.is_finite() {
                    samples_ns.push(ns_per_iter);
                }
            }
        }
        report(&self.group, id, &mut samples_ns);
        self
    }

    /// Ends the group (upstream compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples_ns: &mut [f64]) {
    if samples_ns.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let median = samples_ns[samples_ns.len() / 2];
    println!(
        "{group}/{id}: mean {} , median {} ({} samples)",
        fmt_ns(mean),
        fmt_ns(median),
        samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

enum Mode {
    WarmUp { until: Instant },
    Measure { budget: Duration, ns_per_iter: f64 },
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::WarmUp { until } => {
                let until = *until;
                loop {
                    black_box(routine());
                    if Instant::now() >= until {
                        break;
                    }
                }
            }
            Mode::Measure {
                budget,
                ns_per_iter,
            } => {
                let start = Instant::now();
                let deadline = start + *budget;
                let mut iters: u64 = 0;
                loop {
                    black_box(routine());
                    iters += 1;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                let elapsed = start.elapsed();
                *ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            }
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut runs = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0, "routine never executed");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 0, "filtered benchmark still ran");
    }
}
