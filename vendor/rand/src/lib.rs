//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact surface the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges (including `u128`, needed by uniform path generation),
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]. Value streams are
//! deterministic per seed but do not match the upstream crate bit-for-bit.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** with SplitMix64
//! seed expansion — small, fast, and statistically solid for simulation
//! and testing workloads (it is `rand`'s own `SmallRng` algorithm).

// The macro-generated range impls cast each integer type through its
// unsigned counterpart; for some instantiations the cast is an identity.
#![allow(clippy::unnecessary_cast)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`; integers or `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` using rejection with a bit mask.
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let bits = 128 - (span - 1).leading_zeros();
    let mask = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    loop {
        let raw = if bits <= 64 {
            rng.next_u64() as u128
        } else {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        };
        let v = raw & mask;
        if v < span {
            return v;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                let v = uniform_u128(rng, span) as $u;
                (self.start as $u).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                if span == u128::MAX {
                    // Full-width inclusive range: every draw is valid.
                    return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $u as $t;
                }
                let v = uniform_u128(rng, span + 1) as $u;
                (lo as $u).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small fast generator; identical to [`StdRng`] in this shim.
    pub type SmallRng = StdRng;

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from four consecutive outputs, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random selection and shuffling over slices.

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports: `use rand::prelude::*;`
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u128 = rng.gen_range(0..1_000_000_000_000_000_000_000u128);
            assert!(w < 1_000_000_000_000_000_000_000u128);
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left input in order");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }
}
