//! # kgq — querying in the age of graph databases and knowledge graphs
//!
//! Facade crate re-exporting the whole workspace. A reproduction of the
//! SIGMOD 2021 tutorial by Arenas, Gutierrez & Sequeda as a working
//! library:
//!
//! * [`graph`] — the three graph data models (labeled, property,
//!   vector-labeled), generators, conversions and I/O;
//! * [`core`] — path regular expressions and the §4.1 algorithm suite:
//!   evaluation, exact and FPRAS-approximate counting, uniform and
//!   approximate generation, polynomial-delay enumeration;
//! * [`analytics`] — classical graph analytics and the knowledge-aware
//!   centrality `bc_r` of §4.2;
//! * [`logic`] — bounded-variable first-order logic over graphs and the
//!   regex→FO² compilation of §4.3;
//! * [`gnn`] — Weisfeiler–Lehman refinement and aggregate-combine graph
//!   neural networks as node classifiers (§4.3);
//! * [`rdf`] — an RDF triple store with basic graph pattern matching
//!   and RDFS inference (§3, §2.3);
//! * [`embed`] — TransE knowledge-graph embeddings for link prediction
//!   and completion (§2.3);
//! * [`cypher`] — a Cypher-style `MATCH`/`WHERE`/`RETURN` pattern
//!   language over property graphs (§3 cites Cypher \[28\] and PGQL
//!   \[67\] as the practical face of the model);
//! * [`relbase`] — a miniature relational engine used as the
//!   "graphs in a relational database" baseline of §2.2;
//! * [`biblio`] — the DBLP-style bibliometric simulation behind the
//!   paper's Figure 1.
//!
//! ```
//! use kgq::graph::figures::figure2_labeled;
//! use kgq::core::{parse_expr, LabeledView, Evaluator};
//!
//! let mut g = figure2_labeled();
//! let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
//! let view = LabeledView::new(&g);
//! let possibly_exposed = Evaluator::new(&view, &expr).matching_starts();
//! assert_eq!(possibly_exposed.len(), 2);
//! ```

pub use kgq_analytics as analytics;
pub use kgq_biblio as biblio;
pub use kgq_core as core;
pub use kgq_cypher as cypher;
pub use kgq_embed as embed;
pub use kgq_gnn as gnn;
pub use kgq_graph as graph;
pub use kgq_logic as logic;
pub use kgq_rdf as rdf;
pub use kgq_relbase as relbase;
pub use kgq_store as store;
