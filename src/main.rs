//! `kgq` — command-line interface to the library.
//!
//! ```text
//! kgq generate contact --people 50 --seed 7        # emit a graph (text format)
//! kgq query GRAPH 'EXPR' [pairs|starts|count K|enumerate K|sample K N]
//! kgq cypher GRAPH 'MATCH ... RETURN ...'
//! kgq analytics GRAPH [pagerank|betweenness|components|diameter|densest]
//! kgq rdf FILE.nt path 'EXPR' | infer
//! kgq sparql FILE.nt 'SELECT ... WHERE { ... }' [--explain|--count]
//! kgq analyze (query|cypher|sparql|rules) FILE 'TEXT'
//! ```
//!
//! Graphs use the text format of `kgq::graph::io` (`node`/`edge`/`nprop`/
//! `eprop` lines); RDF files are N-Triples.

use kgq::analytics;
use kgq::core::{
    analyze_expr, count_paths_analyzed, count_paths_governed, enumerate_paths,
    enumerate_paths_governed, enumerate_paths_resumed, parse_expr, Budget, CancelToken, Completion,
    Cursor, EvalError, Governed, Governor, PropertyView, QueryCache, UniformSampler,
};
use kgq::cypher;
use kgq::graph::generate::{barabasi_albert, contact_network, gnm_labeled, ContactParams};
use kgq::graph::io::{read_property, write_labeled, write_property};
use kgq::rdf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  kgq generate (contact|er|ba) [--people N] [--nodes N] [--edges M] [--seed S]\n  \
         kgq query GRAPH EXPR [pairs|starts|count K|enumerate K|sample K N] [GOVERN]\n  \
         kgq cypher GRAPH QUERY [GOVERN]\n  \
         kgq analytics GRAPH (pagerank|betweenness|components|diameter|densest)\n  \
         kgq rdf FILE (path EXPR|select QUERY|infer)\n  \
         kgq sparql FILE QUERY [--explain|--count] [GOVERN]\n  \
         kgq analyze (query|cypher|sparql|rules) FILE TEXT\n  \
         kgq serve GRAPH [--nt FILE] [--store DIR] [--port P] [--workers W] [GOVERN]\n  \
         kgq store (init DIR [--nt FILE]|append DIR FILE [--delete]|compact DIR|verify DIR|dump DIR)\n  \
         kgq scale gen FILE.seg [--nodes N] [--m M] [--labels L] [--seed S] [--edge-ids]\n  \
         kgq scale stats FILE.seg\n  \
         kgq scale query FILE.seg EXPR [pairs|starts] [--from V] [--span K] [--chunks C] [GOVERN]\n  \
         kgq scale triangles FILE.seg LAB LBC LAC [--from V] [--span K] [--chunks C] [GOVERN]\n\n  \
         GOVERN: --timeout MS | --max-steps N | --max-results N | --max-memory-mb N\n  \
         query/cypher also take --explain (print the static-analysis\n  \
         verdict instead of executing), --verbose (cache stats on\n  \
         stderr) and honor KGQ_CACHE_CAP (compiled-query cache capacity)\n  \
         (partial results end with `# partial: REASON`; enumerate adds\n  \
         `# cursor: C`, replayable via `enumerate K --resume C`)"
    );
    ExitCode::from(2)
}

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn num_flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs a number")),
    }
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses the resource-governance flags. `None` when no flag is present:
/// the command then takes the ungoverned (zero-overhead) paths.
fn budget_from(args: &[String]) -> Result<Option<Budget>, String> {
    let mut budget = Budget::default();
    let mut any = false;
    if let Some(ms) = num_flag(args, "--timeout")? {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
        any = true;
    }
    if let Some(n) = num_flag(args, "--max-steps")? {
        budget = budget.with_max_steps(n);
        any = true;
    }
    if let Some(n) = num_flag(args, "--max-results")? {
        budget = budget.with_max_results(n);
        any = true;
    }
    if let Some(n) = num_flag(args, "--max-memory-mb")? {
        budget = budget.with_max_memory(n.saturating_mul(1 << 20));
        any = true;
    }
    Ok(any.then_some(budget))
}

/// Appends the `# partial:` / `# degraded:` trailer lines that mark a
/// governed result as incomplete or downgraded.
fn completion_marker<T>(out: &mut String, res: &Governed<T>) {
    if let Completion::Partial(why) = &res.completion {
        out.push_str(&format!("# partial: {why}\n"));
    }
    if res.degraded {
        out.push_str("# degraded: exact budget exhausted, approximate estimate\n");
    }
}

fn load_graph(path: &str) -> Result<kgq::graph::PropertyGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    read_property(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<String, String> {
    let kind = args.first().ok_or("generate needs a kind")?;
    let seed = flag(args, "--seed", 42) as u64;
    match kind.as_str() {
        "contact" => {
            let g = contact_network(&ContactParams {
                people: flag(args, "--people", 50),
                buses: flag(args, "--buses", 5),
                addresses: flag(args, "--addresses", 20),
                seed,
                ..ContactParams::default()
            });
            Ok(write_property(&g))
        }
        "er" => {
            let g = gnm_labeled(
                flag(args, "--nodes", 100),
                flag(args, "--edges", 400),
                &["v"],
                &["p", "q"],
                seed,
            );
            Ok(write_labeled(&g))
        }
        "ba" => {
            let g = barabasi_albert(flag(args, "--nodes", 100), 3, "v", "link", seed);
            Ok(write_labeled(&g))
        }
        other => Err(format!("unknown generator `{other}`")),
    }
}

fn cmd_query(args: &[String]) -> Result<String, String> {
    let [path, expr_text, rest @ ..] = args else {
        return Err("query needs GRAPH and EXPR".into());
    };
    let mut g = load_graph(path)?;
    let expr =
        parse_expr(expr_text, g.labeled_mut().consts_mut()).map_err(|e| e.render(expr_text))?;
    // Static analysis before compiling any product: emptiness,
    // satisfiability, blowup and plan advice (DESIGN.md §10). With
    // `--explain` the verdict IS the output — nothing is executed.
    let schema = kgq::graph::SchemaSummary::from_property(&g);
    let report = analyze_expr(&expr, &schema, Some((expr_text, g.labeled().consts())));
    if rest.iter().any(|a| a == "--explain") {
        return Ok(report.render(expr_text));
    }
    let view = PropertyView::new(&g);
    let op = rest
        .first()
        .map(String::as_str)
        .filter(|s| !s.starts_with("--"))
        .unwrap_or("pairs");
    let budget = budget_from(rest)?;
    // Reachability-style ops share one compiled product via the query
    // cache (keyed by the graph's generation stamp and the query's
    // minimal-DFA signature). Capacity honors KGQ_CACHE_CAP.
    let cache = QueryCache::from_env();
    let verbose = rest.iter().any(|a| a == "--verbose");
    let mut out = String::new();
    match op {
        "pairs" => {
            if let Some(b) = &budget {
                let gov = Governor::new(b);
                let compiled =
                    match cache.get_or_compile_governed(&view, g.generation(), &expr, &gov) {
                        Ok(c) => c,
                        // Budget exhausted before the automaton even built:
                        // the answer is the empty prefix, reported as a
                        // typed partial rather than a hard error.
                        Err(EvalError::Interrupted(why)) => {
                            out.push_str(&format!("# partial: {why}\n"));
                            return Ok(out);
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                let res = compiled
                    .evaluator()
                    .pairs_governed(&gov)
                    .map_err(|e| e.to_string())?;
                for (a, b) in &res.value {
                    out.push_str(&format!(
                        "{}\t{}\n",
                        g.labeled().node_name(*a),
                        g.labeled().node_name(*b)
                    ));
                }
                completion_marker(&mut out, &res);
            } else if let Some(compiled) =
                cache.get_or_compile_checked(&view, g.generation(), &expr, &report)
            {
                for (a, b) in compiled.evaluator().pairs_planned(report.plan) {
                    out.push_str(&format!(
                        "{}\t{}\n",
                        g.labeled().node_name(a),
                        g.labeled().node_name(b)
                    ));
                }
            }
        }
        "starts" => {
            if let Some(b) = &budget {
                let gov = Governor::new(b);
                let compiled =
                    match cache.get_or_compile_governed(&view, g.generation(), &expr, &gov) {
                        Ok(c) => c,
                        Err(EvalError::Interrupted(why)) => {
                            out.push_str(&format!("# partial: {why}\n"));
                            return Ok(out);
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                let res = compiled
                    .evaluator()
                    .matching_starts_governed(&gov)
                    .map_err(|e| e.to_string())?;
                for n in &res.value {
                    out.push_str(g.labeled().node_name(*n));
                    out.push('\n');
                }
                completion_marker(&mut out, &res);
            } else if let Some(compiled) =
                cache.get_or_compile_checked(&view, g.generation(), &expr, &report)
            {
                for n in compiled.evaluator().matching_starts_planned(report.plan) {
                    out.push_str(g.labeled().node_name(n));
                    out.push('\n');
                }
            }
        }
        "count" => {
            let k: usize = rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .ok_or("count needs K")?;
            if let Some(b) = &budget {
                let res = count_paths_governed(&view, &expr, k, b, CancelToken::new())
                    .map_err(|e| e.to_string())?;
                out.push_str(&format!("{}\n", res.value));
                completion_marker(&mut out, &res);
            } else {
                // The analyzer's verdict routes the count: provably-empty
                // short-circuits to 0, a dfa-blowup `Deny` re-routes to
                // the FPRAS estimator with a degraded annotation.
                let res =
                    count_paths_analyzed(&view, &expr, k, &report).map_err(|e| e.to_string())?;
                out.push_str(&format!("{}\n", res.value));
                if res.degraded {
                    out.push_str(
                        "# degraded: exact counting denied (determinization blowup), \
                         approximate estimate\n",
                    );
                }
            }
        }
        "enumerate" => {
            let k: usize = rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .ok_or("enumerate needs K")?;
            let resume: Option<Cursor> = match str_flag(rest, "--resume") {
                Some(text) => Some(text.parse().map_err(|e| format!("--resume: {e}"))?),
                None => None,
            };
            if budget.is_some() || resume.is_some() {
                let gov = Governor::new(&budget.unwrap_or_default());
                let res = match match &resume {
                    Some(cursor) => enumerate_paths_resumed(&view, &expr, cursor, &gov),
                    None => enumerate_paths_governed(&view, &expr, k, &gov),
                } {
                    Ok(res) => res,
                    // Exhausted before the enumerator was built: empty
                    // partial (no cursor — there is nothing to resume).
                    Err(EvalError::Interrupted(why)) => {
                        out.push_str(&format!("# partial: {why}\n"));
                        return Ok(out);
                    }
                    Err(e) => return Err(e.to_string()),
                };
                for p in &res.value.paths {
                    out.push_str(&p.render(g.labeled()));
                    out.push('\n');
                }
                if let Some(cursor) = &res.value.cursor {
                    out.push_str(&format!("# cursor: {cursor}\n"));
                }
                completion_marker(&mut out, &res);
            } else {
                for p in enumerate_paths(&view, &expr, k) {
                    out.push_str(&p.render(g.labeled()));
                    out.push('\n');
                }
            }
        }
        "sample" => {
            let k: usize = rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .ok_or("sample needs K")?;
            let n: usize = rest.get(2).and_then(|v| v.parse().ok()).unwrap_or(5);
            let sampler = UniformSampler::new(&view, &expr, k).map_err(|e| e.to_string())?;
            let mut rng = StdRng::seed_from_u64(flag(rest, "--seed", 1) as u64);
            for _ in 0..n {
                match sampler.sample(&mut rng) {
                    Some(p) => {
                        out.push_str(&p.render(g.labeled()));
                        out.push('\n');
                    }
                    None => return Err("no answers to sample".into()),
                }
            }
        }
        other => return Err(format!("unknown query op `{other}`")),
    }
    if verbose {
        eprintln!("cache: {}", cache.stats());
    }
    Ok(out)
}

fn cmd_cypher(args: &[String]) -> Result<String, String> {
    let [path, query_text, rest @ ..] = args else {
        return Err("cypher needs GRAPH and QUERY".into());
    };
    let g = load_graph(path)?;
    let q = cypher::parse_query(query_text).map_err(|e| e.render(query_text))?;
    if rest.iter().any(|a| a == "--explain") {
        let report = cypher::analyze_query(&g, &q, Some(query_text));
        return Ok(report.render(query_text));
    }
    let cache = QueryCache::from_env();
    let verbose = rest.iter().any(|a| a == "--verbose");
    let mut out = String::new();
    if let Some(b) = budget_from(rest)? {
        let gov = Governor::new(&b);
        let res = cypher::execute_governed(&g, &q, &cache, &gov).map_err(|e| e.to_string())?;
        for row in &res.value {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        completion_marker(&mut out, &res);
    } else {
        for row in cypher::execute_cached(&g, &q, &cache) {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
    }
    if verbose {
        eprintln!("cache: {}", cache.stats());
    }
    Ok(out)
}

fn cmd_analytics(args: &[String]) -> Result<String, String> {
    let [path, metric] = args else {
        return Err("analytics needs GRAPH and METRIC".into());
    };
    let g = load_graph(path)?.into_labeled();
    let mut out = String::new();
    match metric.as_str() {
        "pagerank" => {
            let pr = analytics::pagerank(&g, &analytics::PageRankParams::default());
            let mut scored: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
            for (i, score) in scored.into_iter().take(20) {
                out.push_str(&format!(
                    "{}\t{score:.5}\n",
                    g.node_name(kgq::graph::NodeId(i as u32))
                ));
            }
        }
        "betweenness" => {
            let bc = analytics::betweenness_undirected(&g);
            let mut scored: Vec<(usize, f64)> = bc.iter().copied().enumerate().collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
            for (i, score) in scored.into_iter().take(20) {
                out.push_str(&format!(
                    "{}\t{score:.2}\n",
                    g.node_name(kgq::graph::NodeId(i as u32))
                ));
            }
        }
        "components" => {
            let comp = analytics::weakly_connected_components(&g);
            let count = comp.iter().max().map_or(0, |m| m + 1);
            out.push_str(&format!("{count} weakly connected components\n"));
        }
        "diameter" => match analytics::diameter(&g, false) {
            Some(d) => out.push_str(&format!("diameter {d}\n")),
            None => out.push_str("no finite distances\n"),
        },
        "densest" => {
            let (nodes, density) = analytics::densest_subgraph_exact(&g);
            out.push_str(&format!("density {density:.3} on {} nodes:\n", nodes.len()));
            for n in nodes {
                out.push_str(g.node_name(n));
                out.push('\n');
            }
        }
        other => return Err(format!("unknown metric `{other}`")),
    }
    Ok(out)
}

fn cmd_rdf(args: &[String]) -> Result<String, String> {
    let [path, rest @ ..] = args else {
        return Err("rdf needs FILE".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut st = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
    match rest.first().map(String::as_str) {
        Some("path") => {
            let expr = rest.get(1).ok_or("path needs EXPR")?;
            let mut out = String::new();
            for (a, b) in rdf::rpq_pairs(&st, expr).map_err(|e| e.to_string())? {
                out.push_str(&format!("{a}\t{b}\n"));
            }
            Ok(out)
        }
        Some("select") => {
            let q = rest.get(1).ok_or("select needs a query")?;
            let mut out = String::new();
            for row in rdf::select(&mut st, q).map_err(|e| e.to_string())? {
                out.push_str(&row.join("\t"));
                out.push('\n');
            }
            Ok(out)
        }
        Some("infer") => {
            let stats = rdf::materialize_rdfs(&mut st);
            let mut out = rdf::write_ntriples(&st);
            out.push_str(&format!(
                "# inferred {} triples in {} rounds\n",
                stats.inferred, stats.rounds
            ));
            Ok(out)
        }
        _ => Err("rdf needs `path EXPR`, `select QUERY` or `infer`".into()),
    }
}

/// `kgq sparql FILE QUERY [--explain|--count] [GOVERN]` — SELECT evaluation by
/// the leapfrog triejoin, with the analyzer + plan report behind
/// `--explain` and the standard governance flags.
fn cmd_sparql(args: &[String]) -> Result<String, String> {
    let [path, query, rest @ ..] = args else {
        return Err("sparql needs FILE and QUERY".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut st = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
    if rest.iter().any(|a| a == "--explain") {
        return rdf::explain_select(&mut st, query).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    if rest.iter().any(|a| a == "--count") {
        // Count surface: exact under budget, XOR-hash estimate past it
        // (the `# degraded` marker flags the estimate).
        let mut q = rdf::parse_select(query, &mut st).map_err(|e| e.to_string())?;
        if q.count.is_none() {
            q.count = Some("count".to_owned());
            q.vars.clear();
        }
        let budget = budget_from(rest)?.unwrap_or_default();
        let gov = Governor::new(&budget);
        let sk = rdf::StoreSketch::build(&st);
        let res = rdf::select_governed_with(&st, &q, Some(&sk), &gov).map_err(|e| e.to_string())?;
        for row in &res.rows.value {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        completion_marker(&mut out, &res.rows);
        return Ok(out);
    }
    match budget_from(rest)? {
        Some(budget) => {
            let q = rdf::parse_select(query, &mut st).map_err(|e| e.to_string())?;
            let gov = Governor::new(&budget);
            let res = rdf::select_governed(&st, &q, &gov).map_err(|e| e.to_string())?;
            for row in &res.value {
                out.push_str(&row.join("\t"));
                out.push('\n');
            }
            completion_marker(&mut out, &res);
        }
        None => {
            for row in rdf::select(&mut st, query).map_err(|e| e.to_string())? {
                out.push_str(&row.join("\t"));
                out.push('\n');
            }
        }
    }
    Ok(out)
}

/// `kgq analyze (query|cypher|sparql|rules) FILE TEXT` — run the
/// matching static analyzer and print its report without executing
/// anything. `query`/`cypher` load a property graph, `sparql`/`rules`
/// an N-Triples file; for `rules`, TEXT may also name a file holding
/// the program (one `head :- body .` rule per line).
fn cmd_analyze(args: &[String]) -> Result<String, String> {
    let [kind, path, text_arg, ..] = args else {
        return Err(
            "analyze needs (query|cypher|sparql|rules), a data FILE and the query text".into(),
        );
    };
    match kind.as_str() {
        "query" => {
            let mut g = load_graph(path)?;
            let expr = parse_expr(text_arg, g.labeled_mut().consts_mut())
                .map_err(|e| e.render(text_arg))?;
            let schema = kgq::graph::SchemaSummary::from_property(&g);
            let report = analyze_expr(&expr, &schema, Some((text_arg, g.labeled().consts())));
            Ok(report.render(text_arg))
        }
        "cypher" => {
            let g = load_graph(path)?;
            let q = cypher::parse_query(text_arg).map_err(|e| e.render(text_arg))?;
            Ok(cypher::analyze_query(&g, &q, Some(text_arg)).render(text_arg))
        }
        "sparql" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let mut st = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
            let q = rdf::parse_select(text_arg, &mut st).map_err(|e| e.to_string())?;
            let (_report, rendered) = rdf::explain_parsed(&st, &q);
            Ok(rendered)
        }
        "rules" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let mut st = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
            let program = match std::fs::read_to_string(text_arg) {
                Ok(file_text) => file_text,
                Err(_) => text_arg.clone(),
            };
            let rules = kgq::logic::parse_program(&mut st, &program).map_err(|e| e.to_string())?;
            Ok(kgq::logic::analyze_program(&st, &rules).render())
        }
        other => Err(format!(
            "unknown analyze kind `{other}` (expected query|cypher|sparql|rules)"
        )),
    }
}

/// `kgq store (init|append|compact|verify|dump)` — manage a durable
/// store directory (checksummed WAL + immutable segment; see
/// DESIGN.md §13). `verify` is read-only: it reports segment shape, WAL
/// health and what recovery would truncate, without mutating anything.
fn cmd_store(args: &[String]) -> Result<String, String> {
    let [sub, dir, rest @ ..] = args else {
        return Err("store needs (init|append|compact|verify|dump) and DIR".into());
    };
    let path = std::path::Path::new(dir);
    let io_err = |e: std::io::Error| format!("{dir}: {e}");
    match sub.as_str() {
        "init" => {
            let (mut store, _) = kgq_store::DurableStore::open(path).map_err(io_err)?;
            if let Some(nt_path) = str_flag(rest, "--nt") {
                let text =
                    std::fs::read_to_string(nt_path).map_err(|e| format!("{nt_path}: {e}"))?;
                let parsed = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
                for t in parsed.iter() {
                    store.stage_insert(
                        parsed.term_str(t.s),
                        parsed.term_str(t.p),
                        parsed.term_str(t.o),
                    );
                }
                store.commit().map_err(io_err)?;
                // Bulk loads go straight to a compact segment.
                store.compact().map_err(io_err)?;
            }
            Ok(format!(
                "initialized {dir} at generation {} ({} triples)\n",
                store.generation(),
                store.len()
            ))
        }
        "append" => {
            let [file, ..] = rest else {
                return Err("store append needs DIR and FILE.nt".into());
            };
            let delete = rest.iter().any(|a| a == "--delete");
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let parsed = rdf::parse_ntriples(&text).map_err(|e| e.to_string())?;
            let (mut store, _) = kgq_store::DurableStore::open(path).map_err(io_err)?;
            for t in parsed.iter() {
                let (s, p, o) = (
                    parsed.term_str(t.s),
                    parsed.term_str(t.p),
                    parsed.term_str(t.o),
                );
                if delete {
                    store.stage_delete(s, p, o);
                } else {
                    store.stage_insert(s, p, o);
                }
            }
            let ops = store.pending_len();
            let generation = store.commit().map_err(io_err)?;
            Ok(format!(
                "committed generation {generation} ({ops} op(s)); {} triples, wal {} bytes\n",
                store.len(),
                store.wal_len()
            ))
        }
        "compact" => {
            let (mut store, _) = kgq_store::DurableStore::open(path).map_err(io_err)?;
            store.compact().map_err(io_err)?;
            Ok(format!(
                "compacted {dir} at generation {} ({} triples, {} edges); wal {} bytes\n",
                store.generation(),
                store.len(),
                store.all_edges().count(),
                store.wal_len()
            ))
        }
        "verify" => {
            let report = kgq_store::DurableStore::verify(path).map_err(io_err)?;
            Ok(format!("{}\n", report.render()))
        }
        "dump" => {
            let (store, _) = kgq_store::DurableStore::open(path).map_err(io_err)?;
            let mut out = String::new();
            for (s, p, o) in store.scan_all() {
                out.push_str(&format!("<{s}> <{p}> <{o}> .\n"));
            }
            Ok(out)
        }
        other => Err(format!(
            "unknown store subcommand `{other}` (expected init|append|compact|verify|dump)"
        )),
    }
}

/// `kgq serve GRAPH [--nt FILE] [--port P] [--workers W] [GOVERN]` —
/// long-lived multi-client query server over the loaded snapshot.
/// GOVERN flags become the *server-side* caps every request is admitted
/// under (componentwise min with the client's own caps). Prints
/// `listening on ADDR` once bound, then blocks until a client sends
/// `SHUTDOWN`; shuts down cleanly (all threads joined) and reports
/// final stats on stderr.
fn cmd_serve(args: &[String]) -> Result<String, String> {
    let [path, rest @ ..] = args else {
        return Err("serve needs GRAPH".into());
    };
    let mut g = load_graph(path)?;
    let mut st = match str_flag(rest, "--nt") {
        Some(nt_path) => {
            let text = std::fs::read_to_string(nt_path).map_err(|e| format!("{nt_path}: {e}"))?;
            rdf::parse_ntriples(&text).map_err(|e| e.to_string())?
        }
        None => rdf::TripleStore::new(),
    };
    // `--store DIR`: recover the durable store and fold its committed
    // state into the snapshot; INSERT/DELETE batches are then
    // WAL-committed (fsynced) before acknowledgement, and FLUSH
    // compacts. Without it mutations stay in-memory only.
    let durable = match str_flag(rest, "--store") {
        Some(dir) => {
            let (durable, replay) = kgq_store::DurableStore::open(std::path::Path::new(dir))
                .map_err(|e| format!("{dir}: {e}"))?;
            if replay.total_len > replay.committed_len {
                eprintln!(
                    "kgq serve: {dir}: WAL tail was {}; truncated to the committed prefix \
                     ({} uncommitted op(s) discarded)",
                    replay.tail.describe(),
                    replay.uncommitted_ops
                );
            }
            for (s, p, o) in durable.scan_all() {
                st.insert_strs(&s, &p, &o);
            }
            kgq_serve::apply_edges(&mut g, durable.all_edges());
            eprintln!(
                "kgq serve: {dir}: recovered generation {} ({} triples, {} edges)",
                durable.generation(),
                durable.len(),
                durable.all_edges().count()
            );
            Some(durable)
        }
        None => None,
    };
    let cfg = kgq_serve::ServerConfig {
        addr: format!("127.0.0.1:{}", flag(rest, "--port", 0)),
        workers: flag(rest, "--workers", 4),
        caps: budget_from(rest)?.unwrap_or_default(),
    };
    let handle = kgq_serve::serve_with_store(g, st, durable, cfg).map_err(|e| e.to_string())?;
    println!("listening on {}", handle.addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    handle.wait();
    let stats = handle.snapshot().stats.render(
        &handle.snapshot().cache().stats(),
        flag(rest, "--workers", 4),
    );
    handle.shutdown();
    eprintln!("kgq serve: shut down cleanly; final stats:\n{stats}");
    Ok(String::new())
}

/// `kgq scale (gen|stats|query|triangles)` — the compressed out-of-core
/// data plane (DESIGN.md §14). `gen` builds a bit-packed BA graph and
/// writes it as the packed section of an immutable segment; `stats`,
/// `query` and `triangles` open the segment through the mmap reader and
/// evaluate label-only RPQs / the wedge triangle pattern straight off
/// the mapping, sharded by source range, under the standard governance
/// flags plus `--max-memory-mb`.
fn cmd_scale(args: &[String]) -> Result<String, String> {
    use kgq::core::scale::{triangle_count, LabelDfa, PackedAdjacency, ScaleEvaluator};
    use kgq::graph::packed::{PackOptions, PackedLabelIndex, PackedView};

    let [sub, file, rest @ ..] = args else {
        return Err("scale needs (gen|stats|query|triangles) and FILE.seg".into());
    };
    let path = std::path::Path::new(file);
    let io_err = |e: std::io::Error| format!("{file}: {e}");

    // Everything except `gen` starts from a validated mapping.
    let open_packed = || -> Result<kgq_store::SegmentMap, String> {
        kgq_store::SegmentMap::open(path).map_err(io_err)
    };
    fn packed_view<'m>(
        file: &str,
        map: &'m kgq_store::SegmentMap,
    ) -> Result<PackedView<'m>, String> {
        let bytes = map.packed_bytes().ok_or_else(|| {
            format!("{file}: segment has no packed section (run `kgq scale gen`)")
        })?;
        PackedView::parse(bytes).map_err(|e| e.to_string())
    }

    match sub.as_str() {
        "gen" => {
            let n = flag(rest, "--nodes", 100_000) as u32;
            let m = flag(rest, "--m", 10) as u32;
            let n_labels = flag(rest, "--labels", 4) as u32;
            let seed = flag(rest, "--seed", 42) as u64;
            let edge_ids = rest.iter().any(|a| a == "--edge-ids");
            let stream = kgq::graph::generate::ba_edge_stream(n, m, n_labels, seed);
            let n_edges = stream.len();
            let quads = stream
                .into_iter()
                .enumerate()
                .map(|(i, (s, l, d))| (s, l, d, i as u32))
                .collect();
            let labels: Vec<String> = (0..n_labels).map(|i| format!("l{i}")).collect();
            let packed = PackedLabelIndex::from_quads(
                n,
                &labels,
                quads,
                PackOptions {
                    edge_ids,
                    inverse: true,
                },
            )
            .map_err(|e| e.to_string())?;
            let bytes = packed.into_bytes();
            let packed_len = bytes.len();
            let seg = kgq_store::segment::Segment {
                generation: 1,
                triples: Vec::new(),
                edges: Vec::new(),
                packed: Some(bytes),
            };
            kgq_store::segment::write_atomic(path, &seg).map_err(io_err)?;
            Ok(format!(
                "packed {n} nodes, {n_edges} edges, {n_labels} labels into {file}: \
                 {packed_len} packed bytes ({:.2} bytes/edge)\n",
                packed_len as f64 / n_edges as f64
            ))
        }
        "stats" => {
            let map = open_packed()?;
            let view = packed_view(file, &map)?;
            Ok(format!(
                "{file}: generation {} | {} nodes, {} edges, {} labels | packed {} bytes \
                 ({:.2} bytes/edge) | file {} bytes | {} | edge ids: {} | inverse: {}\n",
                map.generation(),
                view.node_count(),
                view.edge_count(),
                view.label_count(),
                view.byte_len(),
                view.byte_len() as f64 / view.edge_count().max(1) as f64,
                map.file_len(),
                if map.is_mapped() { "mmap" } else { "heap" },
                view.has_edge_ids(),
                view.has_inverse(),
            ))
        }
        "query" => {
            let [expr_text, more @ ..] = rest else {
                return Err("scale query needs FILE.seg and EXPR".into());
            };
            let map = open_packed()?;
            let view = packed_view(file, &map)?;
            let mut consts = kgq::graph::Interner::new();
            let expr =
                kgq::core::parse_expr(expr_text, &mut consts).map_err(|e| e.render(expr_text))?;
            let dfa = LabelDfa::compile(&expr, |s| view.label_by_name(consts.resolve(s)))
                .map_err(|e| e.to_string())?;
            let n = view.node_count() as u32;
            let from = flag(more, "--from", 0) as u32;
            let span = flag(more, "--span", n as usize) as u32;
            let sources = from..from.saturating_add(span).min(n);
            let chunks = flag(more, "--chunks", kgq::core::parallel::effective_threads());
            let op = more
                .first()
                .map(String::as_str)
                .filter(|s| !s.starts_with("--"))
                .unwrap_or("pairs");
            let adj = PackedAdjacency(view);
            let ev = ScaleEvaluator::new(&adj, dfa);
            let budget = budget_from(more)?;
            let mut out = String::new();
            match op {
                "pairs" => {
                    let res = ev
                        .pairs_governed(
                            sources,
                            chunks,
                            &Governor::new(&budget.unwrap_or_default()),
                        )
                        .map_err(|e| e.to_string())?;
                    for (s, t) in &res.value {
                        out.push_str(&format!("{s}\t{t}\n"));
                    }
                    completion_marker(&mut out, &res);
                }
                "starts" => {
                    let res = ev
                        .matching_starts_governed(
                            sources,
                            chunks,
                            &Governor::new(&budget.unwrap_or_default()),
                        )
                        .map_err(|e| e.to_string())?;
                    for s in &res.value {
                        out.push_str(&format!("{s}\n"));
                    }
                    completion_marker(&mut out, &res);
                }
                other => return Err(format!("unknown scale query op `{other}`")),
            }
            Ok(out)
        }
        "triangles" => {
            let [la, lb, lc, more @ ..] = rest else {
                return Err("scale triangles needs FILE.seg and three labels".into());
            };
            let map = open_packed()?;
            let view = packed_view(file, &map)?;
            let dense = |name: &str| -> Result<u32, String> {
                view.label_by_name(name)
                    .ok_or_else(|| format!("label `{name}` not in segment"))
            };
            let labels = (dense(la)?, dense(lb)?, dense(lc)?);
            let n = view.node_count() as u32;
            let from = flag(more, "--from", 0) as u32;
            let span = flag(more, "--span", n as usize) as u32;
            let arange = from..from.saturating_add(span).min(n);
            let chunks = flag(more, "--chunks", kgq::core::parallel::effective_threads());
            let budget = budget_from(more)?;
            let adj = PackedAdjacency(view);
            let res = triangle_count(
                &adj,
                labels,
                arange,
                chunks,
                &Governor::new(&budget.unwrap_or_default()),
                10,
            )
            .map_err(|e| e.to_string())?;
            let mut out = format!("{} triangles\n", res.value.count);
            for (a, b, c) in &res.value.sample {
                out.push_str(&format!("{a}\t{b}\t{c}\n"));
            }
            completion_marker(&mut out, &res);
            Ok(out)
        }
        other => Err(format!(
            "unknown scale subcommand `{other}` (expected gen|stats|query|triangles)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "cypher" => cmd_cypher(&args[1..]),
        "analytics" => cmd_analytics(&args[1..]),
        "rdf" => cmd_rdf(&args[1..]),
        "sparql" => cmd_sparql(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "store" => cmd_store(&args[1..]),
        "scale" => cmd_scale(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
